#!/usr/bin/env sh
# Local CI: formatting, lints, tests. Run from the workspace root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "CI OK"
