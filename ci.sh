#!/usr/bin/env sh
# Local CI: formatting, lints, tests. Run from the workspace root.
#
# Offline fallback: when the crates.io registry mirror is unreachable
# (cargo dies resolving dependencies before compiling anything), run
#
#     sh scripts/offline/build.sh
#
# instead. It builds the workspace with bare rustc against the stub
# dependencies in scripts/offline/stubs/ and runs each crate's unit
# tests (minus the few that depend on real rand streams or real
# serde_json — see the skip lists in that script).
set -eu

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy, per-crate (hot-path crates) =="
for crate in vqi-graph vqi-core catapult tattoo midas vqi-modular bench; do
    cargo clippy -p "$crate" --all-targets -- -D warnings
done

echo "== clippy unwrap/expect audit (pipeline crates; advisory warnings) =="
# the robustness layer routes stage failures through VqiError instead of
# unwinding, so new unwrap()/expect() in pipeline code deserves a look —
# advisory (-W) because the kernels legitimately expect() on invariants
for crate in catapult tattoo midas vqi-modular; do
    cargo clippy -p "$crate" -- -W clippy::unwrap_used -W clippy::expect_used
done

echo "== cargo test =="
cargo test --workspace -q

echo "== consistency tests (cache + incremental greedy vs reference) =="
cargo test -q -p vqi-graph cache
cargo test -q -p vqi-core bitset
cargo test -q -p catapult incremental_greedy_matches_reference
cargo test -q -p tattoo incremental_greedy_matches_reference
cargo test -q -p midas swap_outcome_is_identical_with_and_without_the_kernel_cache

echo "== kernel consistency tests (indexed/bounded kernels vs naive) =="
cargo test -q -p vqi-graph indexed_matching_is_answer_identical_to_naive
cargo test -q -p vqi-graph bounded_fold_is_bit_identical_to_exact_fold
cargo test -q -p vqi-graph bounded_cached_folds_identically_and_keeps_entries_exact
cargo test -q -p catapult bound_and_skip_changes_no_selection
cargo test -q -p tattoo bound_and_skip_changes_no_selection
cargo test -q -p vqi-modular bound_and_skip_changes_no_selection
cargo test -q -p midas similarity_guard_matches_exact_path

echo "== thread-count invariance (parallel kernels vs sequential references) =="
# the whole suite must produce bit-identical selections at any worker
# count, so run the consistency tests twice with pinned defaults
for threads in 1 4; do
    echo "-- RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-graph parallel_counts_match_reference_across_thread_counts
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-graph parallel_supports_and_trussness_match_reference_across_thread_counts
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-graph seeded_sampling_is_thread_count_invariant
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-graph batch_canonicalization_matches_sequential_across_thread_counts
    RAYON_NUM_THREADS=$threads cargo test -q -p catapult selection_is_identical_across_thread_counts
    RAYON_NUM_THREADS=$threads cargo test -q -p tattoo selection_is_identical_across_thread_counts
    RAYON_NUM_THREADS=$threads cargo test -q -p midas maintenance_is_identical_across_thread_counts
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-modular selection_is_identical_across_thread_counts
done

echo "== incremental consistency suite (delta kernels vs from-scratch) =="
# the incremental maintainers must be bit-identical to a fresh peel /
# census after every batch, at any worker count: property tests sweep
# 12 seeds x insert/delete/mixed batches internally and pin caps 1/2/4,
# and the consumers (tattoo network maintainer, MIDAS cached census)
# re-verify against their own from-scratch paths
for threads in 1 4; do
    echo "-- RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-graph maintainer_matches_fresh_peel_across_batches
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-graph census_maintainer_matches_fresh_count_across_batches
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-graph deletion_edge_cases_match_fresh_peel
    RAYON_NUM_THREADS=$threads cargo test -q -p tattoo incremental_kernels_and_caches_track_mutations
    RAYON_NUM_THREADS=$threads cargo test -q -p midas cached_census_matches_full_recompute
    RAYON_NUM_THREADS=$threads cargo test -q -p midas windowed_drift_escalates_sub_threshold_batches
done

echo "== storage-equivalence suite (heap vs CSR backends, bit-identical) =="
# every large-network kernel must produce the same bits on the heap
# Graph and the packed CsrGraph: the vqi-graph property tests sweep 12
# seeds at caps 1/2/4 (trussness + census), the tattoo test does the
# same for the sharded selection, and the image round trip must
# preserve the digest — run the suite at one and four workers
for threads in 1 4; do
    echo "-- RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-graph storage_
    RAYON_NUM_THREADS=$threads cargo test -q -p tattoo sharded_selection_matches_heap_backend
done

echo "== fault-injection suite (each test sweeps seeds 1 and 2 internally) =="
# every pipeline must end Complete or Degraded — never panic — with
# identical outcomes at any worker count, so run the suite pinned to
# one worker and to four
for threads in 1 4; do
    echo "-- RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q -p catapult -p tattoo -p midas -p vqi-modular injected_
    RAYON_NUM_THREADS=$threads cargo test -q -p catapult -p tattoo -p midas -p vqi-modular fail_fast
    RAYON_NUM_THREADS=$threads cargo test -q -p tattoo crashed_shards_are_retried_to_a_complete_result
    RAYON_NUM_THREADS=$threads cargo test -q -p tattoo exhausted_retries_drop_shards_deterministically
    RAYON_NUM_THREADS=$threads cargo test -q -p midas failed_census_keeps_previous_gfd_and_skips_maintenance
done

echo "== trace validation (journal exporters + runtime-event integration) =="
# the checker tests run one pipeline with --trace-out and validate the
# emitted Chrome trace (balanced begin/end per thread, monotone
# timestamps, every parent_id resolving) plus the fault/degradation
# instants and per-run metric deltas
cargo test -q -p vqi-observe journal
cargo test -q -p vqi-cli trace_out
# end-to-end: a real CLI run must emit a parseable trace and a metrics
# snapshot carrying the kernel.* and fault.* counter families
cargo build -q -p vqi-cli
trace_dir=$(mktemp -d)
target/debug/vqi dataset --kind dblp --out "$trace_dir/net.json" --size 120 --seed 7 >/dev/null
target/debug/vqi construct --input "$trace_dir/net.json" --selector tattoo \
    --trace-out "$trace_dir/trace.json" --metrics=json >/dev/null 2>"$trace_dir/metrics.json"
grep -q '"ph":"B"' "$trace_dir/trace.json"
grep -q '"ph":"E"' "$trace_dir/trace.json"
grep -q '"kernel\.' "$trace_dir/metrics.json"
rm -rf "$trace_dir"

echo "== serve smoke (loopback session mix, snapshot-isolation verified) =="
# boot the multi-tenant service core and drive a mixed burst at one and
# four kernel workers: zero panics, every completed selection verified
# bit-identical on its pinned snapshot, and the recorded trace journal
# balanced (the serve command exits nonzero on imbalance)
cargo test -q -p vqi-serve
serve_dir=$(mktemp -d)
for threads in 1 4; do
    echo "-- RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads target/debug/vqi serve --graphs 14 --sessions 4 \
        --requests 6 --count 3 --min-size 3 --max-size 5 \
        --trace-out "$serve_dir/serve_trace_$threads.json" >"$serve_dir/out_$threads.txt"
    grep -q 'balanced: yes' "$serve_dir/out_$threads.txt"
    grep -q 'isolation:' "$serve_dir/out_$threads.txt"
done
rm -rf "$serve_dir"

echo "== crash-recovery suite (WAL + checkpoints, bit-identical restarts) =="
# the durable log property tests (torn tails, corrupt checkpoints,
# rotation/pruning) plus the crash matrix: a sacrificial child process
# is killed at every injection site in the update path and recovery
# must restore a collection whose digest and select/query outputs are
# bit-identical to an uncrashed run — at one and four kernel workers
for threads in 1 4; do
    echo "-- RAYON_NUM_THREADS=$threads"
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-serve durable_
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-serve crash_matrix_recovers_bit_identical_state
    RAYON_NUM_THREADS=$threads cargo test -q -p vqi-serve concurrent_updates_publish_contiguous_epochs_in_lock_order
done

echo "== corrupt-input suite (WAL segments + VQICSR01 images) =="
# every byte-truncation and bit-flip of a WAL segment or a CSR image
# must yield a clean truncation/Parse error — never a panic or an
# OOM-sized allocation
cargo test -q -p vqi-graph wal
cargo test -q -p vqi-graph storage_image_truncation_and_bitflip_sweeps_yield_parse_errors
cargo test -q -p vqi-serve durable_corrupt_checkpoints_are_rejected

echo "== durable serve smoke (bootstrap, restart, recover report) =="
# boot a durable service, drive load, then restart from the WAL dir:
# the second run must recover (not re-bootstrap), and the recover
# subcommand must report the directory as intact
wal_dir=$(mktemp -d)/wal
target/debug/vqi serve --graphs 10 --sessions 2 --requests 4 --update-every 2 \
    --count 3 --min-size 3 --max-size 5 --checkpoint-every 2 \
    --wal-dir "$wal_dir" >"$wal_dir.out1.txt"
grep -q 'bootstrapped durable log' "$wal_dir.out1.txt"
target/debug/vqi recover --wal-dir "$wal_dir" >"$wal_dir.report.txt"
grep -q 'recovered' "$wal_dir.report.txt"
grep -q 'digest' "$wal_dir.report.txt"
target/debug/vqi serve --graphs 10 --sessions 2 --requests 4 --update-every 2 \
    --count 3 --min-size 3 --max-size 5 --checkpoint-every 2 \
    --wal-dir "$wal_dir" >"$wal_dir.out2.txt"
grep -q 'recovered' "$wal_dir.out2.txt"
rm -rf "$(dirname "$wal_dir")"

echo "CI OK"
