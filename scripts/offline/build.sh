#!/usr/bin/env sh
# Offline rustc-only build + unit-test harness.
#
# When the crates.io registry mirror is unreachable (this container
# cannot resolve the artifactory host, so `cargo build` dies before
# compiling a single line), this script builds the workspace with bare
# `rustc` against the stub dependencies in scripts/offline/stubs/
# (rand / rayon / serde / serde_derive / serde_json) and runs each
# crate's unit tests.
#
# What the stubs change:
#   * rayon runs sequentially (same results, no parallelism);
#   * rand generates from SplitMix64, so random *streams* differ from
#     the real crate — seeded determinism still holds, but tests that
#     depend on a specific stream are listed in skip lists below;
#   * serde derives become marker impls and serde_json emits "{}" /
#     refuses to parse, so JSON round-trip tests are skipped.
#
# This is a fallback verification layer, not CI: when the registry is
# reachable, use ./ci.sh (fmt + clippy + full cargo test) instead.
#
# Usage: sh scripts/offline/build.sh [--no-test]

set -eu
cd "$(dirname "$0")/../.."

OUT=target/offline
mkdir -p "$OUT"
EDITION=2021
RUSTC="rustc --edition $EDITION -O --out-dir $OUT -L $OUT"
RUN_TESTS=1
[ "${1:-}" = "--no-test" ] && RUN_TESTS=0

say() { printf '== %s\n' "$*"; }

# ---- stub dependencies --------------------------------------------------
say "stubs"
rustc --edition $EDITION --crate-type proc-macro --crate-name serde_derive \
    --out-dir "$OUT" scripts/offline/stubs/serde_derive.rs
$RUSTC --crate-type lib --crate-name serde scripts/offline/stubs/serde.rs \
    --extern serde_derive="$OUT/libserde_derive.so"
$RUSTC --crate-type lib --crate-name serde_json scripts/offline/stubs/serde_json.rs
$RUSTC --crate-type lib --crate-name rand scripts/offline/stubs/rand.rs
$RUSTC --crate-type lib --crate-name rayon scripts/offline/stubs/rayon.rs

# Every workspace crate gets the same extern universe; unused externs
# are harmless.
EXTERNS="--extern serde=$OUT/libserde.rlib
         --extern serde_derive=$OUT/libserde_derive.so
         --extern serde_json=$OUT/libserde_json.rlib
         --extern rand=$OUT/librand.rlib
         --extern rayon=$OUT/librayon.rlib"

# build <crate-dir-name>: compiles crates/<dir>/src/lib.rs as a lib and
# (unless --no-test) as a #[cfg(test)] test binary, then runs it with
# the crate's skip list.
build() {
    dir="$1"
    name=$(printf '%s' "$dir" | tr '-' '_')
    skips="${2:-}"
    say "$dir"
    # shellcheck disable=SC2086
    CARGO_MANIFEST_DIR="$PWD/crates/$dir" \
        $RUSTC --crate-type lib --crate-name "$name" "crates/$dir/src/lib.rs" $EXTERNS
    EXTERNS="$EXTERNS --extern $name=$OUT/lib$name.rlib"
    if [ "$RUN_TESTS" = 1 ]; then
        # shellcheck disable=SC2086
        CARGO_MANIFEST_DIR="$PWD/crates/$dir" \
            rustc --edition $EDITION -O --test --crate-name "$name" \
            "crates/$dir/src/lib.rs" -o "$OUT/unit_$name" -L "$OUT" $EXTERNS
        skip_args=""
        for s in $skips; do skip_args="$skip_args --skip $s"; done
        # shellcheck disable=SC2086
        "$OUT/unit_$name" --test-threads=4 -q $skip_args
    fi
}

# binaries <crate-dir> <bin>...: compile-checks binary targets.
binaries() {
    dir="$1"
    shift
    for b in "$@"; do
        say "$dir/bin/$b (check)"
        # shellcheck disable=SC2086
        CARGO_MANIFEST_DIR="$PWD/crates/$dir" \
            rustc --edition $EDITION --emit=metadata --crate-name "$(printf '%s' "$b" | tr '-' '_')" \
            "crates/$dir/src/bin/$b.rs" --out-dir "$OUT" -L "$OUT" $EXTERNS
    done
}

# ---- workspace crates, dependency order ---------------------------------
# Skip lists name unit tests that require real rand streams or real
# serde_json and therefore cannot run against the stubs.
build vqi-observe
build vqi-runtime
build vqi-graph
build vqi-mining
build vqi-core "persist_roundtrip persist:: annealing_reduces_crossings_of_bad_layout"
build vqi-datasets
build vqi-timeseries
build vqi-index
build aurora
build vqi-sim
build catapult
build tattoo "beats_random_on_quality"
build midas
build vqi-modular
build vqi-serve
build bench "json timed_ms_records_a_span"

binaries bench exp_e3_pattern_quality exp_e5_approximation exp_e6_scalability exp_e14_partitioned exp_kernels exp_pipelines exp_faults exp_serve exp_incremental exp_scale exp_recovery

say "vqi-cli (check)"
# shellcheck disable=SC2086
CARGO_MANIFEST_DIR="$PWD/crates/vqi-cli" \
    rustc --edition $EDITION --emit=metadata --crate-name vqi_cli \
    crates/vqi-cli/src/main.rs --out-dir "$OUT" -L "$OUT" $EXTERNS

say "offline build OK"
