//! Offline stand-in for `rayon`: the parallel-iterator entry points the
//! workspace uses, executed sequentially. `par_iter`/`into_par_iter`
//! return the corresponding *standard* iterators, so every std
//! `Iterator` combinator behaves identically (minus the parallelism).
//! Used only by `scripts/offline/build.sh` when the crates.io mirror is
//! unreachable.

/// Sequential re-exports of the parallel-iterator traits.
pub mod prelude {
    /// `into_par_iter()` for every `IntoIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in: plain `into_iter`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter()` for every collection iterable by reference.
    pub trait IntoParallelRefIterator<'data> {
        /// The (sequential) iterator type.
        type Iter: Iterator;
        /// Sequential stand-in: plain `iter`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` for every collection iterable by mut reference.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The (sequential) iterator type.
        type Iter: Iterator;
        /// Sequential stand-in: plain `iter_mut`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_chunks()` for slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in: plain `chunks`.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }
}

/// Sequential `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}
