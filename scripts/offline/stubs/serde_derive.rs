//! Offline stand-in for `serde_derive`: emits marker-trait impls for
//! the stub `serde` crate (whose `Serialize`/`Deserialize` traits have
//! no items). No actual serialization code is generated. Used only by
//! `scripts/offline/build.sh` when the crates.io mirror is unreachable.
//!
//! Supports non-generic structs and enums, which is all this workspace
//! derives.

extern crate proc_macro;

use proc_macro::{TokenStream, TokenTree};

/// Name of the item a `struct`/`enum` definition declares.
fn item_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    panic!("offline serde_derive: no struct/enum name found");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
