//! Offline stand-in for `serde_json`. Serialization returns a fixed
//! placeholder document and deserialization always errors, which keeps
//! callers compiling; tests that assert real JSON round-trips are
//! skipped by `scripts/offline/build.sh` (see SKIP lists there). Used
//! only when the crates.io mirror is unreachable.

use std::fmt;

/// Stand-in error type.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offline serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Stand-in for `serde_json::Value`; only exists so type annotations
/// compile. No parsing is performed.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The only inhabitant the stub ever produces.
    Null,
}

impl Value {
    /// Always `None` (no data model behind the stub).
    pub fn as_u64(&self) -> Option<u64> {
        None
    }

    /// Always `None`.
    pub fn as_str(&self) -> Option<&str> {
        None
    }

    /// Always `None`.
    pub fn get(&self, _key: &str) -> Option<&Value> {
        None
    }
}

impl<I> std::ops::Index<I> for Value {
    type Output = Value;

    fn index(&self, _index: I) -> &Value {
        self
    }
}

/// Returns a fixed placeholder document.
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

/// Returns a fixed placeholder document.
pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

/// Always fails: the stub cannot materialize values.
pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    Err(Error("from_str unavailable offline".to_string()))
}
