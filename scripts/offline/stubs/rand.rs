//! Offline stand-in for the `rand` crate, used only by
//! `scripts/offline/build.sh` when the crates.io mirror is unreachable.
//!
//! It implements exactly the API surface this workspace touches
//! (`SmallRng`, `StepRng`, `SeedableRng`, `Rng::{gen, gen_range,
//! gen_bool}`, `seq::SliceRandom::{choose, shuffle}`) over a
//! SplitMix64 generator. Streams differ from the real `rand` crate, so
//! tests asserting exact random sequences are skipped by the harness;
//! properties and seeds-for-determinism behave the same.

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range type.
pub trait SampleRange<T> {
    /// Samples one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard {
    /// Generates one value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// A value of a `Standard`-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    /// Small fast PRNG (SplitMix64 here; PCG in the real crate).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        /// Deterministic arithmetic-progression generator.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Starts at `initial`, increasing by `step` per call.
            pub fn new(initial: u64, step: u64) -> Self {
                StepRng { v: initial, step }
            }
        }

        impl crate::RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    /// Random element choice and shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: crate::RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: crate::RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: crate::RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }

        fn shuffle<R: crate::RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_u64() as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}
