//! Offline stand-in for `serde`: marker traits plus re-exported no-op
//! derive macros. Only the trait *names* exist — there is no data
//! model — which satisfies every `T: Serialize` bound in the workspace
//! while the stub `serde_json` ignores its input. Used only by
//! `scripts/offline/build.sh` when the crates.io mirror is unreachable.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization helpers.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized {}

    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String, &str, ()
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
