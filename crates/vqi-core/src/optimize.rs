//! Aesthetics-aware layout optimization (§2.5, "Towards aesthetics-aware
//! data-driven VQIs").
//!
//! The tutorial poses data-driven visual layout design as an open
//! optimization problem: find a layout minimizing the visual complexity /
//! cognitive load of the interface as measured by aesthetic metrics.
//! This module implements that direction twice over:
//!
//! * [`anneal_layout`] — simulated-annealing refinement of a drawing
//!   under a weighted aesthetic objective (edge crossings, node
//!   crowding, and edge-length dispersion), seeded from any initial
//!   layout (typically force-directed);
//! * [`arrange_panel`] — ordering of the Pattern Panel thumbnails by
//!   ascending visual complexity ("progressive disclosure": simple,
//!   frequently-used shapes first), which minimizes the expected scan
//!   cost under the KLM browsing model when simple patterns are the
//!   likelier picks.

use crate::aesthetics::{edge_crossings, node_crowding};
use crate::layout::{Layout, Point};
use crate::pattern::PatternSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vqi_graph::Graph;

/// Weights of the layout objective.
#[derive(Debug, Clone, Copy)]
pub struct LayoutObjective {
    /// Weight per edge crossing.
    pub crossing: f64,
    /// Weight of the crowding fraction.
    pub crowding: f64,
    /// Weight of the edge-length coefficient of variation.
    pub length_dispersion: f64,
}

impl Default for LayoutObjective {
    fn default() -> Self {
        LayoutObjective {
            crossing: 1.0,
            crowding: 2.0,
            length_dispersion: 0.5,
        }
    }
}

/// The objective value of a drawing (lower is better).
pub fn layout_cost(g: &Graph, layout: &Layout, obj: &LayoutObjective) -> f64 {
    let crossings = edge_crossings(g, layout) as f64;
    let min_dist = layout.width.min(layout.height) / 12.0;
    let crowding = node_crowding(layout, min_dist);
    let lengths: Vec<f64> = g
        .edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            layout.positions[u.index()].distance(&layout.positions[v.index()])
        })
        .collect();
    let dispersion = if lengths.len() < 2 {
        0.0
    } else {
        let mean = lengths.iter().sum::<f64>() / lengths.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            let var =
                lengths.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / lengths.len() as f64;
            var.sqrt() / mean
        }
    };
    obj.crossing * crossings + obj.crowding * crowding + obj.length_dispersion * dispersion
}

/// Annealing parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealParams {
    /// Number of proposal steps.
    pub steps: usize,
    /// Initial temperature (accept-worse tolerance).
    pub initial_temperature: f64,
    /// Initial move radius as a fraction of the canvas.
    pub move_radius: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            steps: 2_000,
            initial_temperature: 1.0,
            move_radius: 0.25,
            seed: 0xA37,
        }
    }
}

/// Simulated-annealing refinement of `initial` under `obj`. Returns the
/// best layout found and its cost. Deterministic given the seed; never
/// returns a layout worse than the initial one.
pub fn anneal_layout(
    g: &Graph,
    initial: &Layout,
    obj: &LayoutObjective,
    params: AnnealParams,
) -> (Layout, f64) {
    let n = g.node_count();
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut current = initial.clone();
    let mut current_cost = layout_cost(g, &current, obj);
    let mut best = current.clone();
    let mut best_cost = current_cost;
    if n == 0 {
        return (best, best_cost);
    }
    for step in 0..params.steps {
        let progress = step as f64 / params.steps as f64;
        let temperature = params.initial_temperature * (1.0 - progress);
        let radius = params.move_radius * current.width * (1.0 - 0.8 * progress);
        // propose: jitter one node
        let v = rng.gen_range(0..n);
        let old = current.positions[v];
        let proposal = Point {
            x: (old.x + rng.gen_range(-radius..radius)).clamp(0.0, current.width),
            y: (old.y + rng.gen_range(-radius..radius)).clamp(0.0, current.height),
        };
        current.positions[v] = proposal;
        let cost = layout_cost(g, &current, obj);
        let accept = cost <= current_cost
            || (temperature > 0.0
                && rng.gen_bool(((current_cost - cost) / temperature).exp().clamp(0.0, 1.0)));
        if accept {
            current_cost = cost;
            if cost < best_cost {
                best_cost = cost;
                best = current.clone();
            }
        } else {
            current.positions[v] = old;
        }
    }
    (best, best_cost)
}

/// Reorders the indices of a pattern set by ascending visual complexity
/// (ties broken by size), the panel arrangement that front-loads
/// low-cognitive-load patterns. Returns the permutation (positions into
/// `set.patterns()`).
pub fn arrange_panel(set: &PatternSet) -> Vec<usize> {
    let complexity: Vec<f64> = set
        .patterns()
        .iter()
        .map(|p| {
            let layout =
                crate::layout::force_directed(&p.graph, crate::layout::LayoutParams::default());
            crate::aesthetics::visual_complexity(&p.graph, &layout).complexity
        })
        .collect();
    let sizes: Vec<usize> = set.patterns().iter().map(|p| p.size()).collect();
    order_by_complexity(&complexity, &sizes)
}

/// The arrangement order underlying [`arrange_panel`]: indices sorted by
/// ascending complexity (ties by size). Uses `total_cmp`, so a NaN
/// complexity (a degenerate layout) sorts after every finite value
/// instead of panicking the arrangement like the old
/// `partial_cmp().unwrap()` did.
pub fn order_by_complexity(complexity: &[f64], sizes: &[usize]) -> Vec<usize> {
    assert_eq!(complexity.len(), sizes.len());
    let mut order: Vec<usize> = (0..complexity.len()).collect();
    order.sort_by(|&a, &b| {
        complexity[a]
            .total_cmp(&complexity[b])
            .then(sizes[a].cmp(&sizes[b]))
    });
    order
}

/// Expected scan cost (in pattern slots) to reach each pattern under an
/// arrangement, weighted by a usage distribution. Lower is better.
pub fn expected_scan_cost(order: &[usize], usage: &[f64]) -> f64 {
    assert_eq!(order.len(), usage.len());
    let total: f64 = usage.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    order
        .iter()
        .enumerate()
        .map(|(slot, &p)| (slot + 1) as f64 * usage[p] / total)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{circular, force_directed, LayoutParams};
    use crate::pattern::{PatternKind, PatternSet};
    use vqi_graph::generate::{chain, clique, cycle};

    #[test]
    fn non_finite_complexity_never_panics_arrangement() {
        // a NaN complexity (degenerate layout) used to panic the
        // partial_cmp().unwrap() sort; total_cmp ranks it last
        let complexity = [1.5, f64::NAN, 0.5, f64::INFINITY, 0.5];
        let sizes = [3, 4, 9, 5, 2];
        let order = order_by_complexity(&complexity, &sizes);
        // finite ascending first (ties by size), then +inf, then NaN
        assert_eq!(order, vec![4, 2, 0, 3, 1]);
        // deterministic on repeat
        assert_eq!(order, order_by_complexity(&complexity, &sizes));
    }

    #[test]
    fn annealing_never_worsens() {
        let g = clique(6, 0, 0);
        let initial = circular(&g, 200.0, 200.0);
        let obj = LayoutObjective::default();
        let before = layout_cost(&g, &initial, &obj);
        let (after_layout, after) = anneal_layout(&g, &initial, &obj, AnnealParams::default());
        assert!(after <= before, "annealed {after} > initial {before}");
        assert_eq!(after_layout.positions.len(), 6);
    }

    #[test]
    fn annealing_reduces_crossings_of_bad_layout() {
        // K5 on a circle has 5 crossings; annealing should shed some
        let g = clique(5, 0, 0);
        let initial = circular(&g, 200.0, 200.0);
        let obj = LayoutObjective {
            crossing: 10.0,
            crowding: 0.5,
            length_dispersion: 0.0,
        };
        let (optimized, _) = anneal_layout(
            &g,
            &initial,
            &obj,
            AnnealParams {
                steps: 4_000,
                ..Default::default()
            },
        );
        let before = edge_crossings(&g, &initial);
        let after = edge_crossings(&g, &optimized);
        assert!(after < before, "crossings {after} !< {before}");
        // K5 is non-planar: at least one crossing must remain
        assert!(after >= 1);
    }

    #[test]
    fn annealing_is_deterministic() {
        let g = cycle(7, 0, 0);
        let initial = force_directed(&g, LayoutParams::default());
        let obj = LayoutObjective::default();
        let (a, ca) = anneal_layout(&g, &initial, &obj, AnnealParams::default());
        let (b, cb) = anneal_layout(&g, &initial, &obj, AnnealParams::default());
        assert_eq!(ca, cb);
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn empty_graph_anneals_trivially() {
        let g = vqi_graph::Graph::new();
        let initial = Layout {
            positions: vec![],
            width: 100.0,
            height: 100.0,
        };
        let (l, c) = anneal_layout(&g, &initial, &Default::default(), Default::default());
        assert!(l.positions.is_empty());
        assert_eq!(c, 0.0);
    }

    #[test]
    fn arrangement_puts_simple_patterns_first() {
        let mut set = PatternSet::new();
        set.insert(clique(7, 0, 0), PatternKind::Canned, "big")
            .unwrap();
        set.insert(chain(2, 0, 0), PatternKind::Canned, "small")
            .unwrap();
        set.insert(cycle(4, 0, 0), PatternKind::Canned, "mid")
            .unwrap();
        let order = arrange_panel(&set);
        assert_eq!(order.len(), 3);
        // the 2-chain (index 1) first, the clique (index 0) last
        assert_eq!(order[0], 1);
        assert_eq!(order[2], 0);
    }

    #[test]
    fn scan_cost_prefers_frequent_first() {
        // usage: pattern 0 dominant
        let usage = vec![0.9, 0.05, 0.05];
        let front = expected_scan_cost(&[0, 1, 2], &usage);
        let back = expected_scan_cost(&[2, 1, 0], &usage);
        assert!(front < back);
        assert_eq!(expected_scan_cost(&[], &[]), 0.0);
    }
}
