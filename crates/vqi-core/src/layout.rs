//! Deterministic force-directed layout.
//!
//! The aesthetics work the tutorial points to (§2.5) needs node positions
//! to quantify visual complexity, so the headless VQI carries a real
//! layout engine: Fruchterman–Reingold with a fixed iteration schedule
//! and a seeded initial placement, making layouts — and every metric
//! computed from them — reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vqi_graph::Graph;

/// A 2-D position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A computed layout: one position per node, inside `[0, width] ×
/// [0, height]`.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Node positions indexed by node id.
    pub positions: Vec<Point>,
    /// Canvas width.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
}

/// Layout parameters.
#[derive(Debug, Clone, Copy)]
pub struct LayoutParams {
    /// Canvas width.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
    /// Simulation iterations.
    pub iterations: usize,
    /// RNG seed for the initial placement.
    pub seed: u64,
}

impl Default for LayoutParams {
    fn default() -> Self {
        LayoutParams {
            width: 200.0,
            height: 200.0,
            iterations: 120,
            seed: 7,
        }
    }
}

/// Computes a Fruchterman–Reingold layout of `g`.
pub fn force_directed(g: &Graph, params: LayoutParams) -> Layout {
    let n = g.node_count();
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut pos: Vec<Point> = (0..n)
        .map(|_| Point {
            x: rng.gen_range(0.0..params.width),
            y: rng.gen_range(0.0..params.height),
        })
        .collect();
    if n <= 1 {
        if n == 1 {
            pos[0] = Point {
                x: params.width / 2.0,
                y: params.height / 2.0,
            };
        }
        return Layout {
            positions: pos,
            width: params.width,
            height: params.height,
        };
    }
    let area = params.width * params.height;
    let k = (area / n as f64).sqrt();
    let mut temperature = params.width / 8.0;
    let cool = temperature / params.iterations as f64;
    let mut disp = vec![(0.0f64, 0.0f64); n];
    for _ in 0..params.iterations {
        for d in disp.iter_mut() {
            *d = (0.0, 0.0);
        }
        // repulsive forces between all pairs
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = pos[i].x - pos[j].x;
                let dy = pos[i].y - pos[j].y;
                let dist = (dx * dx + dy * dy).sqrt().max(0.01);
                let force = k * k / dist;
                let (fx, fy) = (dx / dist * force, dy / dist * force);
                disp[i].0 += fx;
                disp[i].1 += fy;
                disp[j].0 -= fx;
                disp[j].1 -= fy;
            }
        }
        // attractive forces along edges
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            let (i, j) = (u.index(), v.index());
            let dx = pos[i].x - pos[j].x;
            let dy = pos[i].y - pos[j].y;
            let dist = (dx * dx + dy * dy).sqrt().max(0.01);
            let force = dist * dist / k;
            let (fx, fy) = (dx / dist * force, dy / dist * force);
            disp[i].0 -= fx;
            disp[i].1 -= fy;
            disp[j].0 += fx;
            disp[j].1 += fy;
        }
        // apply displacement limited by temperature, clamp to canvas
        for i in 0..n {
            let (dx, dy) = disp[i];
            let len = (dx * dx + dy * dy).sqrt().max(0.01);
            let step = len.min(temperature);
            pos[i].x = (pos[i].x + dx / len * step).clamp(0.0, params.width);
            pos[i].y = (pos[i].y + dy / len * step).clamp(0.0, params.height);
        }
        temperature = (temperature - cool).max(0.01);
    }
    Layout {
        positions: pos,
        width: params.width,
        height: params.height,
    }
}

/// A simple deterministic circular layout (reference/baseline for the
/// aesthetics ablation: usually more crossings than force-directed).
pub fn circular(g: &Graph, width: f64, height: f64) -> Layout {
    let n = g.node_count();
    let cx = width / 2.0;
    let cy = height / 2.0;
    let r = width.min(height) * 0.4;
    let positions = (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
            Point {
                x: cx + r * theta.cos(),
                y: cy + r * theta.sin(),
            }
        })
        .collect();
    Layout {
        positions,
        width,
        height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};

    #[test]
    fn layout_covers_all_nodes_in_bounds() {
        let g = cycle(8, 0, 0);
        let l = force_directed(&g, LayoutParams::default());
        assert_eq!(l.positions.len(), 8);
        for p in &l.positions {
            assert!(p.x >= 0.0 && p.x <= l.width);
            assert!(p.y >= 0.0 && p.y <= l.height);
        }
    }

    #[test]
    fn layout_is_deterministic() {
        let g = star(5, 0, 0);
        let a = force_directed(&g, LayoutParams::default());
        let b = force_directed(&g, LayoutParams::default());
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn layout_separates_nodes() {
        let g = chain(5, 0, 0);
        let l = force_directed(&g, LayoutParams::default());
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(
                    l.positions[i].distance(&l.positions[j]) > 1.0,
                    "nodes {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton_layouts() {
        let l = force_directed(&Graph::new(), LayoutParams::default());
        assert!(l.positions.is_empty());
        let mut g = Graph::new();
        g.add_node(0);
        let l1 = force_directed(&g, LayoutParams::default());
        assert_eq!(l1.positions.len(), 1);
    }

    #[test]
    fn circular_layout_on_circle() {
        let g = cycle(4, 0, 0);
        let l = circular(&g, 100.0, 100.0);
        let c = Point { x: 50.0, y: 50.0 };
        for p in &l.positions {
            assert!((p.distance(&c) - 40.0).abs() < 1e-9);
        }
    }
}
