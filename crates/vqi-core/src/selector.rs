//! The pattern-selector interface and reference baselines.
//!
//! CATAPULT, TATTOO, MIDAS, and the modular pipeline all plug into a VQI
//! through [`PatternSelector`]: given a repository and a budget, produce
//! the canned patterns for the Pattern Panel. The baselines here —
//! random connected subgraphs and most-frequent-subtree top-k — are the
//! comparison points the quality experiments (E3) report against.

use crate::budget::PatternBudget;
use crate::ctrl::{run_stage, Budget, Degradation, PipelineOutcome};
use crate::pattern::{PatternKind, PatternSet};
use crate::repo::GraphRepository;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vqi_graph::traversal::sample_connected_subgraph;
use vqi_graph::Graph;
use vqi_runtime::VqiError;

/// A strategy for populating the Pattern Panel from a repository.
pub trait PatternSelector {
    /// Short name for reports and provenance strings.
    fn name(&self) -> &'static str;

    /// Selects at most `budget.count` canned patterns, each within the
    /// budget's size range, from `repo`.
    fn select(&self, repo: &GraphRepository, budget: &PatternBudget) -> PatternSet;

    /// Budget-aware selection: an anytime [`PipelineOutcome`] instead
    /// of a bare set. The default implementation runs [`Self::select`]
    /// as one panic-isolated stage under `ctrl`, so every selector is
    /// at least crash-safe and deadline-checked at entry; pipelines
    /// with native per-stage budgets override this. `Err` is returned
    /// only under [`Budget::with_fail_fast`].
    fn select_ctrl(
        &self,
        repo: &GraphRepository,
        budget: &PatternBudget,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<PatternSet>, VqiError> {
        match run_stage(ctrl, self.name(), || self.select(repo, budget)) {
            Ok(set) => Ok(PipelineOutcome::complete(set)),
            Err(e) => {
                let mut deg = Degradation::new();
                deg.absorb(ctrl, e)?;
                Ok(deg.finish(PatternSet::new()))
            }
        }
    }
}

/// Baseline: uniformly random connected subgraphs sampled from the
/// repository, deduplicated by isomorphism. Ignores coverage, diversity,
/// and cognitive load entirely — the floor any data-driven selector must
/// beat.
#[derive(Debug, Clone, Copy)]
pub struct RandomSelector {
    /// RNG seed (selection is deterministic given the seed).
    pub seed: u64,
}

impl RandomSelector {
    /// A selector with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomSelector { seed }
    }
}

impl PatternSelector for RandomSelector {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&self, repo: &GraphRepository, budget: &PatternBudget) -> PatternSet {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut set = PatternSet::new();
        let sources: Vec<&Graph> = match repo {
            GraphRepository::Collection(c) => c.iter().map(|(_, g)| g).collect(),
            GraphRepository::Network(g) => vec![g],
        };
        if sources.is_empty() {
            return set;
        }
        let attempts = budget.count * 50;
        for _ in 0..attempts {
            if set.len() >= budget.count {
                break;
            }
            let &src = sources.choose(&mut rng).expect("nonempty");
            let size = rand::Rng::gen_range(&mut rng, budget.min_size..=budget.max_size);
            if let Some((sub, _)) = sample_connected_subgraph(src, size, 5, &mut rng) {
                // ignore duplicates and keep sampling
                let _ = set.insert(sub, PatternKind::Canned, "random");
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{barabasi_albert, chain, cycle, star};
    use vqi_graph::traversal::is_connected;

    #[test]
    fn random_selector_respects_budget() {
        let mut rng = SmallRng::seed_from_u64(7);
        let net = barabasi_albert(200, 3, 1, &mut rng);
        let repo = GraphRepository::network(net);
        let budget = PatternBudget::new(6, 4, 6);
        let set = RandomSelector::new(1).select(&repo, &budget);
        assert!(set.len() <= 6);
        assert!(!set.is_empty());
        for p in set.patterns() {
            assert!(budget.admits(&p.graph), "size {} out of range", p.size());
            assert!(is_connected(&p.graph));
            assert_eq!(p.kind, PatternKind::Canned);
        }
    }

    #[test]
    fn random_selector_on_collection() {
        let repo = GraphRepository::collection(vec![chain(8, 1, 0), cycle(6, 1, 0), star(7, 1, 0)]);
        let set = RandomSelector::new(2).select(&repo, &PatternBudget::new(4, 4, 5));
        assert!(!set.is_empty());
        for p in set.patterns() {
            assert!(p.size() >= 4 && p.size() <= 5);
        }
    }

    #[test]
    fn random_selector_is_deterministic() {
        let repo = GraphRepository::collection(vec![chain(10, 1, 0), cycle(8, 1, 0)]);
        let budget = PatternBudget::new(3, 4, 5);
        let a = RandomSelector::new(42).select(&repo, &budget);
        let b = RandomSelector::new(42).select(&repo, &budget);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(pa.code, pb.code);
        }
    }

    #[test]
    fn empty_repo_yields_empty_set() {
        let repo = GraphRepository::collection(vec![]);
        let set = RandomSelector::new(0).select(&repo, &PatternBudget::default());
        assert!(set.is_empty());
    }
}
