//! Pattern-based graph summarization (§2.5, "Beyond VQIs").
//!
//! The tutorial's closing observation: canned patterns have high
//! coverage, high diversity, and low cognitive load, so they make good
//! building blocks for *visualization-friendly graph summaries* — unlike
//! classical topological summaries, every supernode is a shape an end
//! user already recognizes from the Pattern Panel.
//!
//! [`summarize`] greedily packs node-disjoint embeddings of the patterns
//! (largest pattern first) and contracts each instance into a supernode;
//! leftover nodes become singletons. The summary graph keeps one edge
//! between supernodes whenever any member edge crossed them.

use crate::pattern::PatternSet;
use crate::score::coverage_match_options;
use serde::Serialize;
use vqi_graph::graph::WILDCARD_LABEL;
use vqi_graph::iso::{enumerate_embeddings, MatchOptions};
use vqi_graph::{Graph, NodeId};

/// One supernode of a summary.
#[derive(Debug, Clone, Serialize)]
pub struct SuperNode {
    /// Index of the pattern this supernode instantiates (into the
    /// pattern set used for summarization), or `None` for singletons.
    pub pattern: Option<usize>,
    /// Original node ids contracted into this supernode.
    pub members: Vec<u32>,
}

/// A pattern-based summary of a graph.
#[derive(Debug, Clone)]
pub struct Summary {
    /// The summary graph: one node per supernode. Pattern supernodes are
    /// labeled [`WILDCARD_LABEL`]; singleton supernodes keep their
    /// original node label. Structural identity lives in `supernodes`.
    pub graph: Graph,
    /// Supernode metadata, aligned with the summary graph's node ids.
    pub supernodes: Vec<SuperNode>,
    /// Fraction of original nodes absorbed into pattern supernodes.
    pub node_coverage: f64,
    /// `summary nodes / original nodes` (lower = more compression).
    pub compression_ratio: f64,
}

/// Summarization options.
#[derive(Debug, Clone, Copy)]
pub struct SummaryOptions {
    /// Embedding enumeration cap per pattern.
    pub max_embeddings_per_pattern: usize,
}

impl Default for SummaryOptions {
    fn default() -> Self {
        SummaryOptions {
            max_embeddings_per_pattern: 5_000,
        }
    }
}

/// Summarizes `g` with the canned patterns of `set`.
pub fn summarize(g: &Graph, set: &PatternSet, opts: SummaryOptions) -> Summary {
    let mut patterns: Vec<(usize, &Graph)> = set
        .patterns()
        .iter()
        .enumerate()
        .map(|(i, p)| (i, &p.graph))
        .collect();
    // big patterns first: they absorb the most nodes per supernode
    patterns.sort_by_key(|(_, p)| std::cmp::Reverse((p.node_count(), p.edge_count())));

    let mut used = vec![false; g.node_count()];
    let mut assignments: Vec<(usize, Vec<NodeId>)> = Vec::new(); // (pattern idx, members)
    for (pi, pattern) in &patterns {
        if pattern.node_count() == 0 {
            continue;
        }
        let match_opts = MatchOptions {
            max_embeddings: opts.max_embeddings_per_pattern,
            ..coverage_match_options()
        };
        let mut accepted: Vec<Vec<NodeId>> = Vec::new();
        enumerate_embeddings(pattern, g, match_opts, |mapping| {
            if mapping.iter().all(|t| !used[t.index()]) {
                for t in mapping {
                    used[t.index()] = true;
                }
                accepted.push(mapping.to_vec());
            }
            true
        });
        for members in accepted {
            assignments.push((*pi, members));
        }
    }

    // build the summary graph
    let mut summary = Graph::new();
    let mut supernodes = Vec::new();
    let mut node_to_super = vec![u32::MAX; g.node_count()];
    let mut absorbed = 0usize;
    for (pi, members) in &assignments {
        let sid = summary.add_node(WILDCARD_LABEL);
        for m in members {
            node_to_super[m.index()] = sid.0;
        }
        absorbed += members.len();
        supernodes.push(SuperNode {
            pattern: Some(*pi),
            members: members.iter().map(|n| n.0).collect(),
        });
    }
    for v in g.nodes() {
        if node_to_super[v.index()] == u32::MAX {
            let sid = summary.add_node(g.node_label(v));
            node_to_super[v.index()] = sid.0;
            supernodes.push(SuperNode {
                pattern: None,
                members: vec![v.0],
            });
        }
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let (su, sv) = (
            NodeId(node_to_super[u.index()]),
            NodeId(node_to_super[v.index()]),
        );
        if su != sv {
            // duplicate edges are rejected by add_edge; keep the first label
            let _ = summary.add_edge(su, sv, g.edge_label(e));
        }
    }

    let n = g.node_count().max(1) as f64;
    Summary {
        compression_ratio: summary.node_count() as f64 / n,
        node_coverage: absorbed as f64 / n,
        graph: summary,
        supernodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PatternKind, PatternSet};
    use vqi_graph::generate::{chain, clique, cycle};
    use vqi_graph::iso::is_subgraph_isomorphic;

    fn set_of(graphs: Vec<Graph>) -> PatternSet {
        let mut set = PatternSet::new();
        for g in graphs {
            set.insert(g, PatternKind::Canned, "t").unwrap();
        }
        set
    }

    /// two disjoint triangles joined by a bridge edge
    fn bowtie_bridge() -> Graph {
        let mut g = cycle(3, 1, 0);
        let base = g.node_count() as u32;
        for _ in 0..3 {
            g.add_node(1);
        }
        g.add_edge(NodeId(base), NodeId(base + 1), 0);
        g.add_edge(NodeId(base + 1), NodeId(base + 2), 0);
        g.add_edge(NodeId(base), NodeId(base + 2), 0);
        g.add_edge(NodeId(0), NodeId(base), 0);
        g
    }

    #[test]
    fn triangles_contract_to_two_supernodes() {
        let g = bowtie_bridge();
        let set = set_of(vec![cycle(3, 1, 0)]);
        let s = summarize(&g, &set, SummaryOptions::default());
        assert_eq!(s.graph.node_count(), 2);
        assert_eq!(s.graph.edge_count(), 1, "the bridge survives");
        assert!((s.node_coverage - 1.0).abs() < 1e-12);
        assert!((s.compression_ratio - 2.0 / 6.0).abs() < 1e-12);
        assert!(s.supernodes.iter().all(|sn| sn.pattern == Some(0)));
    }

    #[test]
    fn members_partition_the_graph() {
        let g = bowtie_bridge();
        let set = set_of(vec![cycle(3, 1, 0), chain(2, 1, 0)]);
        let s = summarize(&g, &set, SummaryOptions::default());
        let mut all: Vec<u32> = s
            .supernodes
            .iter()
            .flat_map(|sn| sn.members.iter().copied())
            .collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..g.node_count() as u32).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn pattern_supernodes_really_contain_their_pattern() {
        let g = bowtie_bridge();
        let set = set_of(vec![cycle(3, 1, 0)]);
        let s = summarize(&g, &set, SummaryOptions::default());
        for sn in &s.supernodes {
            if let Some(pi) = sn.pattern {
                let members: Vec<NodeId> = sn.members.iter().map(|&m| NodeId(m)).collect();
                let (sub, _) = g.induced_subgraph(&members);
                assert!(is_subgraph_isomorphic(
                    &set.patterns()[pi].graph,
                    &sub,
                    coverage_match_options()
                ));
            }
        }
    }

    #[test]
    fn no_patterns_gives_identity_summary() {
        let g = chain(4, 1, 0);
        let s = summarize(&g, &PatternSet::new(), SummaryOptions::default());
        assert_eq!(s.graph.node_count(), 4);
        assert_eq!(s.graph.edge_count(), 3);
        assert_eq!(s.node_coverage, 0.0);
        assert_eq!(s.compression_ratio, 1.0);
    }

    #[test]
    fn bigger_patterns_are_preferred() {
        // K4: both the triangle and the K4 pattern fit; K4 should win
        let g = clique(4, 1, 0);
        let set = set_of(vec![cycle(3, 1, 0), clique(4, 1, 0)]);
        let s = summarize(&g, &set, SummaryOptions::default());
        assert_eq!(s.graph.node_count(), 1);
        let k4_idx = set.patterns().iter().position(|p| p.size() == 4).unwrap();
        assert_eq!(s.supernodes[0].pattern, Some(k4_idx));
    }

    #[test]
    fn empty_graph_summary() {
        let s = summarize(&Graph::new(), &PatternSet::new(), SummaryOptions::default());
        assert_eq!(s.graph.node_count(), 0);
        assert!(s.supernodes.is_empty());
    }
}
