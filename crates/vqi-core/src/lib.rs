//! Core model of a data-driven visual query interface (VQI).
//!
//! A VQI is built from four panels (§2.1 of the tutorial):
//!
//! * the **Attribute Panel** lists the node/edge labels of the underlying
//!   repository — trivially data-driven;
//! * the **Pattern Panel** holds *basic* patterns (edge, 2-path,
//!   triangle) plus *canned* patterns mined from the data — the hard,
//!   NP-hard-to-populate part that CATAPULT/TATTOO/MIDAS exist for;
//! * the **Query Panel** is where users compose queries (edge-at-a-time
//!   or pattern-at-a-time);
//! * the **Results Panel** shows matches of the query in the repository.
//!
//! This crate owns the vocabulary shared by every selection system:
//! patterns and deduplicated pattern sets ([`pattern`]), selection
//! budgets ([`budget`]), the repository abstraction ([`repo`]), packed
//! coverage bitsets ([`bitset`]), the coverage / diversity /
//! cognitive-load quality measures ([`score`]),
//! the selector interface ([`selector`]), the panel and interface model
//! ([`panel`], [`vqi`]), query composition ([`query`]), query evaluation
//! ([`results`]), and the presentation layer ([`layout`], [`aesthetics`],
//! [`render`]) that makes the headless "GUI" observable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aesthetics;
pub mod bitset;
pub mod budget;
pub mod ctrl;
pub mod explore;
pub mod layout;
pub mod optimize;
pub mod panel;
pub mod pattern;
pub mod persist;
pub mod query;
pub mod render;
pub mod repo;
pub mod results;
pub mod score;
pub mod selector;
pub mod summary;
pub mod vqi;

pub use bitset::BitSet;
pub use budget::PatternBudget;
pub use ctrl::{Budget, CancelToken, Completeness, Degradation, PipelineOutcome};
pub use pattern::{Pattern, PatternId, PatternKind, PatternSet};
pub use repo::{BatchUpdate, GraphRepository};
pub use selector::PatternSelector;
pub use vqi::VisualQueryInterface;
