//! Visual query composition.
//!
//! Users build a query graph in the Query Panel through atomic actions:
//! adding a node, adding an edge, dropping a whole pattern from the
//! Pattern Panel (pattern-at-a-time mode), merging a pattern node with an
//! existing query node, or relabeling. The number of actions is the
//! *formulation step count*, the primary performance measure of the
//! usability studies summarized in §2.3–2.4; the HCI literature the
//! tutorial cites (Shneiderman & Plaisant) predicts user frustration when
//! many small atomic actions are needed for one higher-level task, which
//! is exactly what canned patterns amortize.

use std::collections::BTreeMap;
use vqi_graph::{Graph, Label, NodeId};

/// Handle to a node in a [`QueryBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QNode(pub usize);

/// One atomic user action in the Query Panel.
#[derive(Debug, Clone)]
pub enum EditOp {
    /// Place a new node with a label (drag from Attribute Panel).
    AddNode {
        /// The node label.
        label: Label,
    },
    /// Connect two existing nodes.
    AddEdge {
        /// First endpoint.
        a: QNode,
        /// Second endpoint.
        b: QNode,
        /// The edge label.
        label: Label,
    },
    /// Drop a pattern from the Pattern Panel into the canvas as a
    /// disjoint component (pattern-at-a-time mode).
    AddPattern {
        /// The pattern graph to instantiate.
        pattern: Graph,
    },
    /// Fuse node `merge` into node `keep` (connecting a dropped pattern
    /// to the existing query).
    MergeNodes {
        /// Node that survives.
        keep: QNode,
        /// Node that is absorbed.
        merge: QNode,
    },
    /// Change a node's label.
    SetNodeLabel {
        /// Target node.
        node: QNode,
        /// New label.
        label: Label,
    },
    /// Change an edge's label.
    SetEdgeLabel {
        /// First endpoint.
        a: QNode,
        /// Second endpoint.
        b: QNode,
        /// New label.
        label: Label,
    },
}

/// Errors from applying an edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Referenced node does not exist (or was merged away).
    UnknownNode,
    /// Edge endpoints are equal or the edge already exists.
    InvalidEdge,
    /// Referenced edge does not exist.
    UnknownEdge,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownNode => write!(f, "unknown query node"),
            QueryError::InvalidEdge => write!(f, "invalid or duplicate edge"),
            QueryError::UnknownEdge => write!(f, "unknown query edge"),
        }
    }
}

impl std::error::Error for QueryError {}

/// An editable query graph. Unlike [`Graph`] (append-only), the builder
/// supports node merging, which pattern-at-a-time composition needs.
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    /// `labels[i]` = label of node `i`; `None` once merged away.
    labels: Vec<Option<Label>>,
    /// Edges keyed by normalized endpoint pair.
    edges: BTreeMap<(usize, usize), Label>,
    /// Number of edits applied.
    steps: usize,
}

fn key(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

impl QueryBuilder {
    /// An empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of atomic edits applied so far (the step count).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if `n` refers to a live node.
    pub fn is_live(&self, n: QNode) -> bool {
        self.labels.get(n.0).is_some_and(|l| l.is_some())
    }

    /// Applies one edit. On success returns the nodes created (empty for
    /// most ops; one for `AddNode`; all pattern nodes for `AddPattern`).
    pub fn apply(&mut self, op: &EditOp) -> Result<Vec<QNode>, QueryError> {
        let created = match op {
            EditOp::AddNode { label } => {
                self.labels.push(Some(*label));
                vec![QNode(self.labels.len() - 1)]
            }
            EditOp::AddEdge { a, b, label } => {
                if !self.is_live(*a) || !self.is_live(*b) {
                    return Err(QueryError::UnknownNode);
                }
                if a == b || self.edges.contains_key(&key(a.0, b.0)) {
                    return Err(QueryError::InvalidEdge);
                }
                self.edges.insert(key(a.0, b.0), *label);
                vec![]
            }
            EditOp::AddPattern { pattern } => {
                let base = self.labels.len();
                let mut created = Vec::with_capacity(pattern.node_count());
                for v in pattern.nodes() {
                    self.labels.push(Some(pattern.node_label(v)));
                    created.push(QNode(base + v.index()));
                }
                for e in pattern.edges() {
                    let (u, v) = pattern.endpoints(e);
                    self.edges.insert(
                        key(base + u.index(), base + v.index()),
                        pattern.edge_label(e),
                    );
                }
                created
            }
            EditOp::MergeNodes { keep, merge } => {
                if !self.is_live(*keep) || !self.is_live(*merge) || keep == merge {
                    return Err(QueryError::UnknownNode);
                }
                // move merge's edges onto keep (existing edges win)
                let moved: Vec<((usize, usize), Label)> = self
                    .edges
                    .iter()
                    .filter(|((a, b), _)| *a == merge.0 || *b == merge.0)
                    .map(|(k, v)| (*k, *v))
                    .collect();
                for (k_old, label) in moved {
                    self.edges.remove(&k_old);
                    let other = if k_old.0 == merge.0 { k_old.1 } else { k_old.0 };
                    if other != keep.0 {
                        self.edges.entry(key(keep.0, other)).or_insert(label);
                    }
                }
                self.labels[merge.0] = None;
                vec![]
            }
            EditOp::SetNodeLabel { node, label } => {
                if !self.is_live(*node) {
                    return Err(QueryError::UnknownNode);
                }
                self.labels[node.0] = Some(*label);
                vec![]
            }
            EditOp::SetEdgeLabel { a, b, label } => {
                match self.edges.get_mut(&key(a.0, b.0)) {
                    Some(l) => *l = *label,
                    None => return Err(QueryError::UnknownEdge),
                }
                vec![]
            }
        };
        self.steps += 1;
        Ok(created)
    }

    /// Materializes the query as a compact [`Graph`] (live nodes densely
    /// renumbered in id order). Also returns the mapping from builder
    /// node index to graph node.
    pub fn to_graph(&self) -> (Graph, BTreeMap<usize, NodeId>) {
        let mut g = Graph::new();
        let mut map = BTreeMap::new();
        for (i, l) in self.labels.iter().enumerate() {
            if let Some(label) = l {
                map.insert(i, g.add_node(*label));
            }
        }
        for (&(a, b), &label) in &self.edges {
            g.add_edge(map[&a], map[&b], label);
        }
        (g, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{cycle, star};
    use vqi_graph::iso::are_isomorphic;

    #[test]
    fn edge_at_a_time_builds_triangle() {
        let mut q = QueryBuilder::new();
        let a = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        let b = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        let c = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        q.apply(&EditOp::AddEdge { a, b, label: 0 }).unwrap();
        q.apply(&EditOp::AddEdge {
            a: b,
            b: c,
            label: 0,
        })
        .unwrap();
        q.apply(&EditOp::AddEdge { a, b: c, label: 0 }).unwrap();
        assert_eq!(q.steps(), 6);
        let (g, _) = q.to_graph();
        assert!(are_isomorphic(&g, &cycle(3, 1, 0)));
    }

    #[test]
    fn pattern_at_a_time_is_one_step() {
        let mut q = QueryBuilder::new();
        q.apply(&EditOp::AddPattern {
            pattern: cycle(3, 1, 0),
        })
        .unwrap();
        assert_eq!(q.steps(), 1);
        let (g, _) = q.to_graph();
        assert!(are_isomorphic(&g, &cycle(3, 1, 0)));
    }

    #[test]
    fn merge_connects_pattern_to_query() {
        // build a star, then merge a triangle's corner onto a leaf
        let mut q = QueryBuilder::new();
        let nodes = q
            .apply(&EditOp::AddPattern {
                pattern: star(2, 1, 0),
            })
            .unwrap();
        let leaf = nodes[1];
        let tri = q
            .apply(&EditOp::AddPattern {
                pattern: cycle(3, 1, 0),
            })
            .unwrap();
        q.apply(&EditOp::MergeNodes {
            keep: leaf,
            merge: tri[0],
        })
        .unwrap();
        let (g, _) = q.to_graph();
        // star(2) has 3 nodes; triangle has 3; merged -> 5 nodes, 5 edges
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert!(vqi_graph::traversal::is_connected(&g));
        assert_eq!(q.steps(), 3);
    }

    #[test]
    fn merge_drops_duplicate_edges() {
        let mut q = QueryBuilder::new();
        let a = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        let b = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        let c = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        q.apply(&EditOp::AddEdge { a, b, label: 0 }).unwrap();
        q.apply(&EditOp::AddEdge { a, b: c, label: 0 }).unwrap();
        // merging b into c: edge a-b becomes a-c, which already exists
        q.apply(&EditOp::MergeNodes { keep: c, merge: b }).unwrap();
        let (g, _) = q.to_graph();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn errors_are_reported() {
        let mut q = QueryBuilder::new();
        let a = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        assert_eq!(
            q.apply(&EditOp::AddEdge {
                a,
                b: QNode(9),
                label: 0
            }),
            Err(QueryError::UnknownNode)
        );
        assert_eq!(
            q.apply(&EditOp::AddEdge { a, b: a, label: 0 }),
            Err(QueryError::InvalidEdge)
        );
        assert_eq!(
            q.apply(&EditOp::SetEdgeLabel {
                a,
                b: QNode(9),
                label: 0
            }),
            Err(QueryError::UnknownEdge)
        );
        // failed edits do not count as steps
        assert_eq!(q.steps(), 1);
    }

    #[test]
    fn relabeling_works() {
        let mut q = QueryBuilder::new();
        let a = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        let b = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        q.apply(&EditOp::AddEdge { a, b, label: 0 }).unwrap();
        q.apply(&EditOp::SetNodeLabel { node: a, label: 9 })
            .unwrap();
        q.apply(&EditOp::SetEdgeLabel { a, b, label: 5 }).unwrap();
        let (g, map) = q.to_graph();
        assert_eq!(g.node_label(map[&a.0]), 9);
        assert_eq!(g.edge_label(vqi_graph::EdgeId(0)), 5);
    }

    #[test]
    fn merged_nodes_are_dead() {
        let mut q = QueryBuilder::new();
        let a = q.apply(&EditOp::AddNode { label: 1 }).unwrap()[0];
        let b = q.apply(&EditOp::AddNode { label: 2 }).unwrap()[0];
        q.apply(&EditOp::MergeNodes { keep: a, merge: b }).unwrap();
        assert!(!q.is_live(b));
        assert_eq!(q.node_count(), 1);
        assert_eq!(
            q.apply(&EditOp::SetNodeLabel { node: b, label: 3 }),
            Err(QueryError::UnknownNode)
        );
    }
}
