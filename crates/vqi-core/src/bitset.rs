//! A packed fixed-length bitset for coverage bookkeeping.
//!
//! Every selection and maintenance loop tracks "which repository units
//! (data graphs or network edges) does this pattern cover" as a bitset.
//! `Vec<bool>` spends a byte per bit and forces element-at-a-time loops;
//! [`BitSet`] packs 64 units per word so the hot operations of the greedy
//! and swap loops — marginal gain (`|c \ covered|`), union, and the
//! sole-coverage computations of MIDAS's pruning — run word-parallel.
//!
//! Invariant: bits at positions `>= len` are always zero, so popcounts
//! never need tail masking. All binary operations require equal lengths.

/// A fixed-length set of bits packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zeros bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a bitset from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut s = BitSet::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.set(i);
            }
        }
        s
    }

    /// Number of bits (set or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at position `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets the bit at position `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// True if any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `self |= a & b` — used to accumulate multiply-covered bits.
    pub fn or_and(&mut self, a: &BitSet, b: &BitSet) {
        assert_eq!(self.len, a.len, "bitset length mismatch");
        assert_eq!(self.len, b.len, "bitset length mismatch");
        for ((w, &x), &y) in self.words.iter_mut().zip(&a.words).zip(&b.words) {
            *w |= x & y;
        }
    }

    /// `self & other` as a new bitset.
    pub fn and(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        BitSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// `self & !other` as a new bitset.
    pub fn and_not(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        BitSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| a & !b)
                .collect(),
            len: self.len,
        }
    }

    /// `|self & other|`.
    pub fn count_and(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self & !other|` — the marginal gain of `self` over `other`.
    pub fn count_and_not(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// True if `self & !other` has any set bit.
    pub fn any_and_not(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & !b != 0)
    }

    /// Iterates the positions of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random boolean vectors for model testing.
    fn model(len: usize, seed: u64) -> Vec<bool> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect()
    }

    #[test]
    fn roundtrip_and_counts_match_bool_model() {
        for len in [0usize, 1, 63, 64, 65, 130, 200] {
            let a = model(len, len as u64 + 1);
            let s = BitSet::from_bools(&a);
            assert_eq!(s.len(), len);
            for (i, &b) in a.iter().enumerate() {
                assert_eq!(s.get(i), b, "bit {i} of len {len}");
            }
            assert_eq!(s.count_ones(), a.iter().filter(|&&b| b).count());
            assert_eq!(s.any(), a.iter().any(|&b| b));
            let ones: Vec<usize> = s.ones().collect();
            let expect: Vec<usize> = (0..len).filter(|&i| a[i]).collect();
            assert_eq!(ones, expect);
        }
    }

    #[test]
    fn binary_ops_match_bool_model() {
        for len in [1usize, 64, 100, 129] {
            let a = model(len, 7);
            let b = model(len, 13);
            let sa = BitSet::from_bools(&a);
            let sb = BitSet::from_bools(&b);

            let and_expect: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x && y).collect();
            assert_eq!(sa.and(&sb), BitSet::from_bools(&and_expect));
            let and_not_expect: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x && !y).collect();
            assert_eq!(sa.and_not(&sb), BitSet::from_bools(&and_not_expect));
            assert_eq!(sa.count_and(&sb), and_expect.iter().filter(|&&x| x).count());
            assert_eq!(
                sa.count_and_not(&sb),
                and_not_expect.iter().filter(|&&x| x).count()
            );
            assert_eq!(sa.any_and_not(&sb), and_not_expect.iter().any(|&x| x));

            let mut u = sa.clone();
            u.union_with(&sb);
            let or_expect: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x || y).collect();
            assert_eq!(u, BitSet::from_bools(&or_expect));

            let c = model(len, 29);
            let mut acc = BitSet::from_bools(&c);
            acc.or_and(&sa, &sb);
            let or_and_expect: Vec<bool> = c
                .iter()
                .zip(and_expect.iter())
                .map(|(&x, &y)| x || y)
                .collect();
            assert_eq!(acc, BitSet::from_bools(&or_and_expect));
        }
    }

    #[test]
    fn set_updates_bits() {
        let mut s = BitSet::new(70);
        assert!(!s.any());
        s.set(0);
        s.set(69);
        assert!(s.get(0) && s.get(69) && !s.get(35));
        assert_eq!(s.count_ones(), 2);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 69]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitSet::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = BitSet::new(10).count_and_not(&BitSet::new(11));
    }
}
