//! Pipeline robustness vocabulary: budgets, anytime outcomes, and the
//! degradation ledger.
//!
//! Every pipeline exposes a budget-aware entry point that returns a
//! [`PipelineOutcome`]: the payload (pattern set, snapshot, …) plus a
//! [`Completeness`] verdict. When no stage fails the outcome is
//! [`Completeness::Complete`] and the payload is **bit-identical** to
//! the plain entry point's result — the budget-aware path adds checks,
//! never different arithmetic. When a stage trips its budget, panics,
//! or produces a non-finite score, the pipeline keeps whatever it has
//! already selected (anytime semantics) and the outcome records which
//! stages were cut and why.
//!
//! The split between this module and [`vqi_runtime`] is deliberate:
//! `vqi-runtime` owns the mechanism (budgets, meters, errors, fault
//! injection) and depends on nothing but observability; this module
//! owns the pipeline-facing policy (how failures aggregate into an
//! outcome) and needs the core vocabulary crate's visibility.

use vqi_runtime::VqiError;

pub use vqi_runtime::{run_stage, Budget, CancelToken, Meter};

/// Whether a pipeline run produced its full result or an anytime
/// subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completeness {
    /// Every stage ran to completion; the payload equals the plain
    /// (budget-free) pipeline's output bit for bit.
    Complete,
    /// At least one stage was cut short; the payload is the best
    /// result assembled from the stages that did finish.
    Degraded {
        /// Sorted, deduplicated names of the stages that were cut.
        stages_cut: Vec<String>,
        /// Sorted, rendered descriptions of every absorbed fault.
        faults: Vec<String>,
    },
}

impl Completeness {
    /// `true` when no stage was cut.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }
}

/// A pipeline payload paired with its [`Completeness`] verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome<T> {
    /// The (possibly partial) pipeline result — selected patterns, an
    /// updated snapshot, whatever the pipeline produces.
    pub value: T,
    /// Whether `value` is the full result or an anytime subset.
    pub completeness: Completeness,
}

impl<T> PipelineOutcome<T> {
    /// Wraps a payload produced with no absorbed faults.
    pub fn complete(value: T) -> Self {
        PipelineOutcome {
            value,
            completeness: Completeness::Complete,
        }
    }
}

/// The per-run ledger of absorbed stage failures.
///
/// Pipelines thread one `Degradation` through their stages; each stage
/// error is either **absorbed** (recorded, run continues with whatever
/// the stage produced so far — the anytime path) or **propagated**
/// when the budget demands fail-fast. Absorption order does not affect
/// the final [`Completeness`]: stage names and fault descriptions are
/// sorted and deduplicated, so two runs that absorb the same faults in
/// a different order report the same outcome.
#[derive(Debug, Default)]
pub struct Degradation {
    stages_cut: Vec<String>,
    faults: Vec<String>,
}

impl Degradation {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no fault has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stages_cut.is_empty() && self.faults.is_empty()
    }

    /// Records a stage failure. Under a fail-fast budget the error is
    /// handed back for propagation; otherwise it is absorbed and the
    /// run continues. Every call counts toward `fault.degraded`.
    pub fn absorb(&mut self, budget: &Budget, err: VqiError) -> Result<(), VqiError> {
        vqi_observe::incr("fault.degraded", 1);
        if vqi_observe::journal_recording() {
            vqi_observe::instant(&format!("run.degraded:{}", err.stage().unwrap_or("parse")));
        }
        if budget.fail_fast() {
            return Err(err);
        }
        self.record(&err);
        Ok(())
    }

    /// Records a failure unconditionally (used where fail-fast has
    /// already been honored by an outer layer).
    pub fn record(&mut self, err: &VqiError) {
        let stage = err.stage().unwrap_or("parse").to_string();
        if !self.stages_cut.contains(&stage) {
            self.stages_cut.push(stage);
        }
        let rendered = err.to_string();
        if !self.faults.contains(&rendered) {
            self.faults.push(rendered);
        }
    }

    /// Records a non-error anomaly (e.g. a non-finite score that was
    /// sanitized) against a stage.
    pub fn note(&mut self, stage: &str, detail: impl Into<String>) {
        vqi_observe::incr("fault.degraded", 1);
        if vqi_observe::journal_recording() {
            vqi_observe::instant(&format!("run.degraded:{stage}"));
        }
        if !self.stages_cut.contains(&stage.to_string()) {
            self.stages_cut.push(stage.to_string());
        }
        let detail = detail.into();
        if !self.faults.contains(&detail) {
            self.faults.push(detail);
        }
    }

    /// Folds the ledger into a [`Completeness`] verdict, sorting for
    /// order independence.
    pub fn into_completeness(self) -> Completeness {
        if self.is_empty() {
            return Completeness::Complete;
        }
        let mut stages_cut = self.stages_cut;
        stages_cut.sort();
        stages_cut.dedup();
        let mut faults = self.faults;
        faults.sort();
        faults.dedup();
        Completeness::Degraded { stages_cut, faults }
    }

    /// Convenience: pairs a payload with this ledger's verdict.
    pub fn finish<T>(self, value: T) -> PipelineOutcome<T> {
        PipelineOutcome {
            value,
            completeness: self.into_completeness(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_complete() {
        let d = Degradation::new();
        assert!(d.is_empty());
        let out = d.finish(7u32);
        assert_eq!(out.value, 7);
        assert!(out.completeness.is_complete());
        assert_eq!(out, PipelineOutcome::complete(7u32));
    }

    #[test]
    fn absorb_respects_fail_fast() {
        let relaxed = Budget::unlimited();
        let strict = Budget::unlimited().with_fail_fast(true);
        let err = VqiError::QuotaExceeded {
            stage: "catapult.greedy".into(),
        };
        let mut d = Degradation::new();
        assert!(d.absorb(&relaxed, err.clone()).is_ok());
        assert!(!d.is_empty());
        let mut d2 = Degradation::new();
        assert_eq!(d2.absorb(&strict, err.clone()), Err(err));
        assert!(d2.is_empty(), "fail-fast must not record");
    }

    #[test]
    fn completeness_is_order_independent() {
        let a = VqiError::DeadlineExceeded {
            stage: "tattoo.map".into(),
        };
        let b = VqiError::Panic {
            stage: "tattoo.reduce".into(),
            reason: "boom".into(),
        };
        let mut fwd = Degradation::new();
        fwd.record(&a);
        fwd.record(&b);
        let mut rev = Degradation::new();
        rev.record(&b);
        rev.record(&a);
        rev.record(&a); // duplicates collapse
        assert_eq!(fwd.into_completeness(), rev.into_completeness());
    }

    #[test]
    fn notes_mark_the_stage_degraded() {
        let mut d = Degradation::new();
        d.note("catapult.greedy", "non-finite gain for candidate 3");
        match d.into_completeness() {
            Completeness::Degraded { stages_cut, faults } => {
                assert_eq!(stages_cut, vec!["catapult.greedy".to_string()]);
                assert_eq!(faults.len(), 1);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
    }
}
