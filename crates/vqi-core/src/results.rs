//! Query evaluation: what fills the Results Panel.

use crate::repo::GraphRepository;
use crate::score::coverage_match_options;
use serde::Serialize;
use vqi_graph::iso::{count_embeddings, find_embeddings, MatchOptions};
use vqi_graph::{Graph, NodeId};

/// One match of the query in a collection graph.
#[derive(Debug, Clone, Serialize)]
pub struct CollectionMatch {
    /// Id of the data graph containing the query.
    pub graph_id: usize,
    /// Number of embeddings found (capped).
    pub embeddings: usize,
}

/// Results of running a query against a repository.
#[derive(Debug, Clone, Serialize)]
pub enum QueryResults {
    /// Per-graph matches for a collection.
    Collection {
        /// Graphs containing at least one embedding.
        matches: Vec<CollectionMatch>,
        /// Number of live graphs examined.
        examined: usize,
    },
    /// Embeddings into a single network.
    Network {
        /// Node mappings (query node index → network node), capped.
        embeddings: Vec<Vec<NodeId>>,
        /// Whether the enumeration hit its cap.
        truncated: bool,
    },
}

impl QueryResults {
    /// Number of result entries (matching graphs or embeddings).
    pub fn len(&self) -> usize {
        match self {
            QueryResults::Collection { matches, .. } => matches.len(),
            QueryResults::Network { embeddings, .. } => embeddings.len(),
        }
    }

    /// True if the query matched nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Options for result enumeration.
#[derive(Debug, Clone, Copy)]
pub struct ResultOptions {
    /// Maximum embeddings per graph (collection) or in total (network).
    pub max_embeddings: usize,
}

impl Default for ResultOptions {
    fn default() -> Self {
        ResultOptions {
            max_embeddings: 100,
        }
    }
}

/// Runs `query` against `repo`.
pub fn run_query(query: &Graph, repo: &GraphRepository, opts: ResultOptions) -> QueryResults {
    let match_opts = MatchOptions {
        max_embeddings: opts.max_embeddings,
        ..coverage_match_options()
    };
    match repo {
        GraphRepository::Collection(c) => {
            let mut matches = Vec::new();
            let mut examined = 0usize;
            for (id, g) in c.iter() {
                examined += 1;
                let n = count_embeddings(query, g, match_opts);
                if n > 0 {
                    matches.push(CollectionMatch {
                        graph_id: id,
                        embeddings: n,
                    });
                }
            }
            QueryResults::Collection { matches, examined }
        }
        GraphRepository::Network(g) => {
            let embeddings = find_embeddings(query, g, match_opts);
            let truncated = embeddings.len() >= opts.max_embeddings;
            QueryResults::Network {
                embeddings,
                truncated,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, clique, cycle, star};

    #[test]
    fn collection_results_list_matching_graphs() {
        let repo = GraphRepository::collection(vec![chain(4, 1, 0), cycle(4, 1, 0), star(3, 2, 0)]);
        let q = chain(3, 1, 0);
        let r = run_query(&q, &repo, ResultOptions::default());
        match r {
            QueryResults::Collection { matches, examined } => {
                assert_eq!(examined, 3);
                let ids: Vec<usize> = matches.iter().map(|m| m.graph_id).collect();
                assert_eq!(ids, vec![0, 1]);
                assert!(matches.iter().all(|m| m.embeddings > 0));
            }
            _ => panic!("expected collection results"),
        }
    }

    #[test]
    fn network_results_enumerate_embeddings() {
        let repo = GraphRepository::network(clique(4, 1, 0));
        let q = cycle(3, 1, 0);
        let r = run_query(&q, &repo, ResultOptions::default());
        match r {
            QueryResults::Network {
                embeddings,
                truncated,
            } => {
                // 4 triangles * 6 automorphisms
                assert_eq!(embeddings.len(), 24);
                assert!(!truncated);
            }
            _ => panic!("expected network results"),
        }
    }

    #[test]
    fn truncation_is_flagged() {
        let repo = GraphRepository::network(clique(8, 1, 0));
        let q = cycle(3, 1, 0);
        let r = run_query(&q, &repo, ResultOptions { max_embeddings: 5 });
        match r {
            QueryResults::Network {
                embeddings,
                truncated,
            } => {
                assert_eq!(embeddings.len(), 5);
                assert!(truncated);
            }
            _ => panic!("expected network results"),
        }
    }

    #[test]
    fn no_match_is_empty() {
        let repo = GraphRepository::collection(vec![chain(3, 1, 0)]);
        let q = cycle(3, 9, 0);
        let r = run_query(&q, &repo, ResultOptions::default());
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
