//! Coverage, diversity, and cognitive-load measures for pattern sets.
//!
//! The tutorial (§2.3) names three desiderata for canned patterns and all
//! three are quantified here:
//!
//! * **coverage** — a pattern `p` covers a graph `G` if `G` contains a
//!   subgraph isomorphic to `p`; a set should cover as much of the
//!   repository as possible. For collections we measure the fraction of
//!   data graphs covered by at least one pattern; for networks the
//!   fraction of edges touched by some embedding of some pattern.
//! * **diversity** — patterns should be structurally diverse:
//!   `div(P) = 1 − mean pairwise MCS similarity`.
//! * **cognitive load** — a per-pattern effort estimate that grows with
//!   size and connectedness: `cl(p) = ½·min(1, n/12) + ½·min(1, d̄/6)`
//!   where `n` is the node count and `d̄` the average degree. Basic
//!   patterns score low; hairballs score near 1.
//!
//! The combined *pattern set score* is
//! `coverage + w_div · diversity − w_cog · mean cognitive load`, the form
//! maximized greedily by CATAPULT and TATTOO and preserved by MIDAS.

use crate::bitset::BitSet;
use crate::pattern::PatternSet;
use crate::repo::{GraphCollection, GraphRepository};
use serde::Serialize;
use vqi_graph::cache;
use vqi_graph::canon::{canonical_code, CanonicalCode};
use vqi_graph::index::GraphIndex;
use vqi_graph::iso::{covered_edges_indexed, is_subgraph_isomorphic, MatchOptions};
use vqi_graph::par;
use vqi_graph::{mcs, Graph};

/// Matching options used for coverage: non-induced, wildcard-aware (basic
/// patterns and CSG-derived patterns carry wildcards), bounded.
pub fn coverage_match_options() -> MatchOptions {
    MatchOptions {
        induced: false,
        wildcard: true,
        max_embeddings: 10_000,
        max_states: 2_000_000,
    }
}

/// Weights for the combined score.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QualityWeights {
    /// Weight of the diversity term.
    pub diversity: f64,
    /// Weight of the cognitive-load penalty.
    pub cognitive: f64,
}

impl Default for QualityWeights {
    fn default() -> Self {
        QualityWeights {
            diversity: 0.5,
            cognitive: 0.5,
        }
    }
}

/// The combined pattern-set score shared by every selector and
/// maintainer: `coverage + w_div · diversity − w_cog · cognitive load`.
/// This is the single definition of the formula; CATAPULT, TATTOO,
/// MIDAS, and the modular pipeline all route through it.
pub fn combined_score(
    coverage: f64,
    diversity: f64,
    cognitive_load: f64,
    w: QualityWeights,
) -> f64 {
    coverage + w.diversity * diversity - w.cognitive * cognitive_load
}

/// Full set score from pattern graphs and their coverage bitsets over
/// `total` repository units (data graphs of a collection, or edges of a
/// network). An empty repository or an empty pattern set scores 0 — the
/// unified empty-repository convention (previously TATTOO divided by
/// `total.max(1)` while its greedy loop returned early, giving empty
/// repositories two different scores).
pub fn set_score_bitsets(
    patterns: &[&Graph],
    bitsets: &[&BitSet],
    total: usize,
    w: QualityWeights,
) -> f64 {
    if total == 0 || patterns.is_empty() {
        return 0.0;
    }
    let mut union = BitSet::new(total);
    for b in bitsets {
        union.union_with(b);
    }
    let coverage = union.count_ones() as f64 / total as f64;
    let div = diversity(patterns);
    let cl = patterns.iter().map(|g| cognitive_load(g)).sum::<f64>() / patterns.len() as f64;
    combined_score(coverage, div, cl, w)
}

/// Cognitive load of a single pattern, in `[0, 1]`.
pub fn cognitive_load(p: &Graph) -> f64 {
    let n = p.node_count() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let avg_deg = 2.0 * p.edge_count() as f64 / n;
    0.5 * (n / 12.0).min(1.0) + 0.5 * (avg_deg / 6.0).min(1.0)
}

/// Mean cognitive load of a set of pattern graphs (0 for an empty set).
pub fn mean_cognitive_load<'a, I: IntoIterator<Item = &'a Graph>>(patterns: I) -> f64 {
    let loads: Vec<f64> = patterns.into_iter().map(cognitive_load).collect();
    if loads.is_empty() {
        0.0
    } else {
        loads.iter().sum::<f64>() / loads.len() as f64
    }
}

/// Structural diversity of a set of pattern graphs: `1 − mean pairwise
/// MCS similarity`. Sets with at most one pattern are maximally diverse.
pub fn diversity(patterns: &[&Graph]) -> f64 {
    let k = patterns.len();
    if k <= 1 {
        return 1.0;
    }
    let pairs: Vec<(usize, usize)> = (0..k)
        .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
        .collect();
    let sims: Vec<f64> = if cache::enabled() {
        // canonical codes are cheap for pattern-sized graphs and turn the
        // quadratic MCS bill into cache hits across repeated evaluations
        let codes: Vec<CanonicalCode> = par::map(patterns, |g| canonical_code(g));
        par::map(&pairs, |&(i, j)| {
            cache::mcs_similarity_cached(patterns[i], &codes[i], patterns[j], &codes[j])
        })
    } else {
        par::map(&pairs, |&(i, j)| {
            mcs::mcs_similarity(patterns[i], patterns[j])
        })
    };
    // summed in pair order, not reduction-tree order, so the f64 result
    // is identical at any thread count
    1.0 - sims.iter().sum::<f64>() / pairs.len() as f64
}

/// True if pattern `p` covers data graph `g`.
pub fn covers(p: &Graph, g: &Graph) -> bool {
    is_subgraph_isomorphic(p, g, coverage_match_options())
}

/// Memoized [`covers`] for callers that already hold the pattern's
/// canonical code and the target's cache token (see
/// [`crate::repo::GraphCollection::token`]).
pub fn covers_cached(p: &Graph, code: &CanonicalCode, g: &Graph, token: u64) -> bool {
    cache::is_subgraph_isomorphic_cached(p, code, g, token, coverage_match_options())
}

/// [`covers_cached`] computing cache misses through the indexed matching
/// kernel. `idx` must be built from this exact `g`; results and cache
/// entries are identical to [`covers_cached`], only faster.
pub fn covers_cached_indexed(
    p: &Graph,
    code: &CanonicalCode,
    g: &Graph,
    token: u64,
    idx: &GraphIndex,
) -> bool {
    cache::is_subgraph_isomorphic_cached_indexed(p, code, g, token, idx, coverage_match_options())
}

/// Fraction of live collection graphs containing `p`.
pub fn pattern_coverage(p: &Graph, collection: &GraphCollection) -> f64 {
    let ids = collection.ids();
    if ids.is_empty() {
        return 0.0;
    }
    let code = canonical_code(p);
    let covered = par::map(&ids, |&id| {
        let g = collection.get(id).expect("live id");
        covers_cached(p, &code, g, collection.token(id).expect("live id"))
    });
    let hits = covered.iter().filter(|&&c| c).count();
    hits as f64 / ids.len() as f64
}

/// Fraction of live collection graphs covered by at least one pattern.
pub fn set_coverage_collection(patterns: &[&Graph], collection: &GraphCollection) -> f64 {
    let ids = collection.ids();
    if ids.is_empty() || patterns.is_empty() {
        return 0.0;
    }
    let codes: Vec<CanonicalCode> = par::map(patterns, |p| canonical_code(p));
    let covered = par::map(&ids, |&id| {
        let g = collection.get(id).expect("live id");
        let token = collection.token(id).expect("live id");
        patterns
            .iter()
            .zip(codes.iter())
            .any(|(p, code)| covers_cached(p, code, g, token))
    });
    let hits = covered.iter().filter(|&&c| c).count();
    hits as f64 / ids.len() as f64
}

/// Fraction of network edges touched by some embedding of some pattern.
pub fn set_coverage_network(patterns: &[&Graph], network: &Graph) -> f64 {
    if network.edge_count() == 0 || patterns.is_empty() {
        return 0.0;
    }
    // one compiled index serves every pattern's enumeration
    let idx = GraphIndex::build(network);
    let per_pattern: Vec<Vec<vqi_graph::EdgeId>> = par::map(patterns, |p| {
        covered_edges_indexed(p, network, &idx, coverage_match_options())
    });
    let mut covered = vec![false; network.edge_count()];
    for edges in per_pattern {
        for e in edges {
            covered[e.index()] = true;
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / network.edge_count() as f64
}

/// Coverage of a pattern set against either repository kind.
pub fn set_coverage(patterns: &[&Graph], repo: &GraphRepository) -> f64 {
    match repo {
        GraphRepository::Collection(c) => set_coverage_collection(patterns, c),
        GraphRepository::Network(g) => set_coverage_network(patterns, g),
    }
}

/// A full quality evaluation of a pattern set.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QualityReport {
    /// Repository coverage in `[0, 1]`.
    pub coverage: f64,
    /// Structural diversity in `[0, 1]`.
    pub diversity: f64,
    /// Mean cognitive load in `[0, 1]`.
    pub cognitive_load: f64,
    /// Combined score under the weights used.
    pub score: f64,
}

/// Evaluates the canned patterns of `set` against `repo`.
pub fn evaluate(
    set: &PatternSet,
    repo: &GraphRepository,
    weights: QualityWeights,
) -> QualityReport {
    let graphs: Vec<&Graph> = set.canned().map(|p| &p.graph).collect();
    evaluate_graphs(&graphs, repo, weights)
}

/// Evaluates raw pattern graphs against `repo`.
///
/// ```
/// use vqi_core::repo::GraphRepository;
/// use vqi_core::score::{evaluate_graphs, QualityWeights};
/// use vqi_graph::generate::{chain, cycle};
///
/// let repo = GraphRepository::collection(vec![chain(5, 1, 0), cycle(4, 1, 0)]);
/// let p = chain(3, 1, 0);
/// let report = evaluate_graphs(&[&p], &repo, QualityWeights::default());
/// assert_eq!(report.coverage, 1.0); // the 3-chain occurs in both graphs
/// ```
pub fn evaluate_graphs(
    patterns: &[&Graph],
    repo: &GraphRepository,
    weights: QualityWeights,
) -> QualityReport {
    let coverage = set_coverage(patterns, repo);
    let div = diversity(patterns);
    let cl = mean_cognitive_load(patterns.iter().copied());
    QualityReport {
        coverage,
        diversity: div,
        cognitive_load: cl,
        score: combined_score(coverage, div, cl, weights),
    }
}

/// Per-pattern coverage bitsets over a collection — the index MIDAS uses
/// for coverage-based pruning during pattern swapping.
#[derive(Debug, Clone)]
pub struct CoverageIndex {
    /// `bitsets[p]` has bit `i` set iff pattern `p` covers the graph at
    /// position `i` of `graph_ids`.
    pub bitsets: Vec<BitSet>,
    /// The live graph ids the positions refer to.
    pub graph_ids: Vec<usize>,
}

impl CoverageIndex {
    /// Builds the index for `patterns` over the live graphs of
    /// `collection`, through the kernel cache (misses run the indexed
    /// matcher against per-graph [`GraphIndex`]es built once up front).
    pub fn build(patterns: &[&Graph], collection: &GraphCollection) -> Self {
        let graph_ids = collection.ids();
        let codes: Vec<CanonicalCode> = par::map(patterns, |p| canonical_code(p));
        let graphs: Vec<&Graph> = graph_ids
            .iter()
            .map(|&id| collection.get(id).expect("live id"))
            .collect();
        let graph_indexes = GraphIndex::build_many(&graphs);
        let bitsets: Vec<BitSet> = par::map_range(patterns.len(), |pi| {
            let (p, code) = (patterns[pi], &codes[pi]);
            let mut bits = BitSet::new(graph_ids.len());
            for (pos, &id) in graph_ids.iter().enumerate() {
                let g = collection.get(id).expect("live id");
                let token = collection.token(id).expect("live id");
                if covers_cached_indexed(p, code, g, token, &graph_indexes[pos]) {
                    bits.set(pos);
                }
            }
            bits
        });
        CoverageIndex { bitsets, graph_ids }
    }

    /// Number of graphs covered by the union of all patterns.
    pub fn union_count(&self) -> usize {
        let mut union = BitSet::new(self.graph_ids.len());
        for b in &self.bitsets {
            union.union_with(b);
        }
        union.count_ones()
    }

    /// Number of graphs covered by the union excluding pattern `skip`.
    pub fn union_count_without(&self, skip: usize) -> usize {
        let mut union = BitSet::new(self.graph_ids.len());
        for (p, b) in self.bitsets.iter().enumerate() {
            if p != skip {
                union.union_with(b);
            }
        }
        union.count_ones()
    }

    /// How many graphs `candidate` covers that the current union misses.
    pub fn marginal_gain(&self, candidate: &BitSet) -> usize {
        let mut union = BitSet::new(self.graph_ids.len());
        for b in &self.bitsets {
            union.union_with(b);
        }
        candidate.count_and_not(&union)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;
    use vqi_graph::generate::{chain, clique, cycle, star};

    fn collection() -> GraphCollection {
        GraphCollection::new(vec![
            chain(5, 1, 0),
            cycle(4, 1, 0),
            star(4, 1, 0),
            clique(4, 2, 0),
        ])
    }

    #[test]
    fn cognitive_load_ordering() {
        let edge = chain(2, 0, 0);
        let tri = cycle(3, 0, 0);
        let k6 = clique(6, 0, 0);
        let cl_edge = cognitive_load(&edge);
        let cl_tri = cognitive_load(&tri);
        let cl_k6 = cognitive_load(&k6);
        assert!(cl_edge < cl_tri, "{cl_edge} < {cl_tri}");
        assert!(cl_tri < cl_k6, "{cl_tri} < {cl_k6}");
        assert!((0.0..=1.0).contains(&cl_k6));
        assert_eq!(cognitive_load(&Graph::new()), 0.0);
    }

    #[test]
    fn diversity_extremes() {
        let a = chain(4, 1, 0);
        let b = chain(4, 1, 0);
        assert!(diversity(&[&a, &b]).abs() < 1e-12, "identical patterns");
        let c = clique(4, 9, 9);
        assert!(
            (diversity(&[&a, &c]) - 1.0).abs() < 1e-12,
            "disjoint labels"
        );
        assert_eq!(diversity(&[&a]), 1.0);
        assert_eq!(diversity(&[]), 1.0);
    }

    #[test]
    fn pattern_coverage_counts_graphs() {
        let col = collection();
        // a 1-labeled edge occurs in the first three graphs
        let edge = chain(2, 1, 0);
        assert!((pattern_coverage(&edge, &col) - 0.75).abs() < 1e-12);
        // a triangle of label 2 occurs only in the clique
        let tri = cycle(3, 2, 0);
        assert!((pattern_coverage(&tri, &col) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn set_coverage_collection_unions() {
        let col = collection();
        let edge1 = chain(2, 1, 0);
        let tri2 = cycle(3, 2, 0);
        let both = [&edge1, &tri2];
        assert!((set_coverage_collection(&both, &col) - 1.0).abs() < 1e-12);
        assert_eq!(set_coverage_collection(&[], &col), 0.0);
    }

    #[test]
    fn wildcard_basic_patterns_cover_everything() {
        let col = collection();
        let basics = crate::pattern::default_basic_patterns();
        let graphs: Vec<&Graph> = basics.graphs().collect();
        assert!((set_coverage_collection(&graphs, &col) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn network_coverage_counts_edges() {
        // K4 with a pendant chain of 2 edges
        let mut g = clique(4, 1, 0);
        let a = g.add_node(1);
        let b = g.add_node(1);
        g.add_edge(vqi_graph::NodeId(0), a, 0);
        g.add_edge(a, b, 0);
        let tri = cycle(3, 1, 0);
        // triangles cover the 6 clique edges out of 8
        let cov = set_coverage_network(&[&tri], &g);
        assert!((cov - 6.0 / 8.0).abs() < 1e-12, "got {cov}");
    }

    #[test]
    fn evaluate_combines_terms() {
        let repo = GraphRepository::Collection(collection());
        let mut set = PatternSet::new();
        set.insert(chain(2, 1, 0), PatternKind::Canned, "t")
            .unwrap();
        set.insert(cycle(3, 2, 0), PatternKind::Canned, "t")
            .unwrap();
        let w = QualityWeights::default();
        let r = evaluate(&set, &repo, w);
        assert!((r.coverage - 1.0).abs() < 1e-12);
        assert!(r.diversity > 0.9);
        assert!(r.cognitive_load > 0.0);
        let expected = r.coverage + w.diversity * r.diversity - w.cognitive * r.cognitive_load;
        assert!((r.score - expected).abs() < 1e-12);
    }

    #[test]
    fn coverage_index_marginals() {
        let col = collection();
        let edge1 = chain(2, 1, 0);
        let idx = CoverageIndex::build(&[&edge1], &col);
        assert_eq!(idx.union_count(), 3);
        assert_eq!(idx.union_count_without(0), 0);
        // candidate covering only the clique (position 3)
        let cand = BitSet::from_bools(&[false, false, false, true]);
        assert_eq!(idx.marginal_gain(&cand), 1);
        // candidate covering already-covered graphs gains nothing
        let cand2 = BitSet::from_bools(&[true, true, false, false]);
        assert_eq!(idx.marginal_gain(&cand2), 0);
    }
}
