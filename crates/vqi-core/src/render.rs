//! Headless rendering of graphs and whole interfaces.
//!
//! Real GUI toolkits are out of scope for a library reproduction (see
//! DESIGN.md §3), so the "screen" is SVG: every pattern thumbnail, the
//! query canvas, and the four-panel interface can be rendered to a
//! standalone SVG document, and a terse ASCII summary supports terminal
//! inspection and golden tests.

use crate::layout::{force_directed, Layout, LayoutParams};
use crate::vqi::VisualQueryInterface;
use std::fmt::Write;
use vqi_graph::graph::WILDCARD_LABEL;
use vqi_graph::{Graph, Label};

fn label_text(l: Label) -> String {
    if l == WILDCARD_LABEL {
        "*".to_string()
    } else {
        l.to_string()
    }
}

/// Renders `g` at `layout` as an SVG fragment (no document wrapper),
/// offset by `(dx, dy)`.
pub fn svg_graph_fragment(g: &Graph, layout: &Layout, dx: f64, dy: f64) -> String {
    let mut out = String::new();
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let p = layout.positions[u.index()];
        let q = layout.positions[v.index()];
        writeln!(
            out,
            r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#555" stroke-width="1.2"/>"##,
            p.x + dx,
            p.y + dy,
            q.x + dx,
            q.y + dy
        )
        .unwrap();
        let (mx, my) = ((p.x + q.x) / 2.0 + dx, (p.y + q.y) / 2.0 + dy);
        writeln!(
            out,
            r##"<text x="{:.1}" y="{:.1}" font-size="7" fill="#999">{}</text>"##,
            mx,
            my,
            label_text(g.edge_label(e))
        )
        .unwrap();
    }
    for n in g.nodes() {
        let p = layout.positions[n.index()];
        writeln!(
            out,
            r##"<circle cx="{:.1}" cy="{:.1}" r="7" fill="#4a90d9" stroke="#1f4e79"/>"##,
            p.x + dx,
            p.y + dy
        )
        .unwrap();
        writeln!(
            out,
            r##"<text x="{:.1}" y="{:.1}" font-size="8" text-anchor="middle" fill="#fff">{}</text>"##,
            p.x + dx,
            p.y + dy + 3.0,
            label_text(g.node_label(n))
        )
        .unwrap();
    }
    out
}

/// Renders a single graph as a standalone SVG document.
pub fn svg_graph(g: &Graph, params: LayoutParams) -> String {
    let layout = force_directed(g, params);
    let mut out = String::new();
    writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"##,
        layout.width, layout.height, layout.width, layout.height
    )
    .unwrap();
    out.push_str(&svg_graph_fragment(g, &layout, 0.0, 0.0));
    out.push_str("</svg>\n");
    out
}

/// Renders the four panels of an interface as one SVG document: the
/// Attribute Panel (top-left), the Pattern Panel as a thumbnail grid
/// (left), the Query Panel (top-right), and the Results Panel summary
/// (bottom-right).
pub fn svg_interface(vqi: &VisualQueryInterface) -> String {
    let panel_w = 420.0;
    let panel_h = 320.0;
    let width = panel_w * 2.0;
    let height = panel_h * 2.0;
    let mut out = String::new();
    writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"##
    )
    .unwrap();
    // frames and titles
    let frames = [
        (0.0, 0.0, "Attribute Panel"),
        (0.0, panel_h, "Pattern Panel"),
        (panel_w, 0.0, "Query Panel"),
        (panel_w, panel_h, "Results Panel"),
    ];
    for (x, y, title) in frames {
        writeln!(
            out,
            r##"<rect x="{x:.0}" y="{y:.0}" width="{panel_w:.0}" height="{panel_h:.0}" fill="none" stroke="#333"/>"##
        )
        .unwrap();
        writeln!(
            out,
            r##"<text x="{:.0}" y="{:.0}" font-size="14" fill="#111">{title}</text>"##,
            x + 8.0,
            y + 18.0
        )
        .unwrap();
    }
    // attribute panel content
    let nl: Vec<String> = vqi
        .attributes
        .node_labels
        .iter()
        .map(|&l| label_text(l))
        .collect();
    let el: Vec<String> = vqi
        .attributes
        .edge_labels
        .iter()
        .map(|&l| label_text(l))
        .collect();
    writeln!(
        out,
        r##"<text x="8" y="40" font-size="11" fill="#333">node labels: {}</text>"##,
        nl.join(", ")
    )
    .unwrap();
    writeln!(
        out,
        r##"<text x="8" y="58" font-size="11" fill="#333">edge labels: {}</text>"##,
        el.join(", ")
    )
    .unwrap();
    // pattern panel: thumbnails in a grid
    let thumb = 100.0;
    let cols = (panel_w / thumb) as usize;
    for (i, p) in vqi.pattern_set().patterns().iter().enumerate() {
        let col = i % cols;
        let row = i / cols;
        let x = col as f64 * thumb + 4.0;
        let y = panel_h + 24.0 + row as f64 * thumb;
        if y + thumb > height {
            break; // display space exhausted, like a real panel
        }
        let layout = force_directed(
            &p.graph,
            LayoutParams {
                width: thumb - 12.0,
                height: thumb - 12.0,
                ..Default::default()
            },
        );
        writeln!(
            out,
            r##"<rect x="{x:.0}" y="{y:.0}" width="{:.0}" height="{:.0}" fill="none" stroke="#bbb"/>"##,
            thumb - 8.0,
            thumb - 8.0
        )
        .unwrap();
        out.push_str(&svg_graph_fragment(&p.graph, &layout, x + 4.0, y + 4.0));
    }
    // query panel content
    let (qg, _) = vqi.query.query.to_graph();
    if qg.node_count() > 0 {
        let layout = force_directed(
            &qg,
            LayoutParams {
                width: panel_w - 40.0,
                height: panel_h - 60.0,
                ..Default::default()
            },
        );
        out.push_str(&svg_graph_fragment(&qg, &layout, panel_w + 20.0, 40.0));
    }
    // results panel summary
    let summary = match &vqi.results.results {
        None => "no query executed".to_string(),
        Some(r) => format!("{} result(s)", r.len()),
    };
    writeln!(
        out,
        r##"<text x="{:.0}" y="{:.0}" font-size="12" fill="#333">{summary}</text>"##,
        panel_w + 8.0,
        panel_h + 40.0
    )
    .unwrap();
    out.push_str("</svg>\n");
    out
}

/// A terse ASCII summary of an interface (for logs and golden tests).
pub fn ascii_summary(vqi: &VisualQueryInterface) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "=== VQI ({:?}, selector={}) ===",
        vqi.mode, vqi.selector_name
    )
    .unwrap();
    writeln!(
        out,
        "attributes: {} node labels, {} edge labels",
        vqi.attributes.node_labels.len(),
        vqi.attributes.edge_labels.len()
    )
    .unwrap();
    writeln!(
        out,
        "patterns: {} basic + {} canned",
        vqi.pattern_set().basic().count(),
        vqi.pattern_set().canned().count()
    )
    .unwrap();
    for p in vqi.pattern_set().patterns() {
        writeln!(
            out,
            "  [{}] {:?} n={} m={} ({})",
            p.id.0,
            p.kind,
            p.size(),
            p.edge_count(),
            p.provenance
        )
        .unwrap();
    }
    let (qg, _) = vqi.query.query.to_graph();
    writeln!(
        out,
        "query: n={} m={} steps={}",
        qg.node_count(),
        qg.edge_count(),
        vqi.query.query.steps()
    )
    .unwrap();
    writeln!(
        out,
        "results: {}",
        match &vqi.results.results {
            None => "none".to_string(),
            Some(r) => format!("{}", r.len()),
        }
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::PatternBudget;
    use crate::repo::GraphRepository;
    use crate::selector::RandomSelector;
    use vqi_graph::generate::{chain, cycle};

    fn sample_vqi() -> VisualQueryInterface {
        let repo = GraphRepository::collection(vec![chain(6, 1, 0), cycle(5, 1, 0)]);
        VisualQueryInterface::data_driven(
            &repo,
            &RandomSelector::new(1),
            &PatternBudget::new(3, 4, 5),
        )
    }

    #[test]
    fn svg_graph_is_well_formed() {
        let svg = svg_graph(&cycle(4, 1, 2), LayoutParams::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 4);
        assert_eq!(svg.matches("<line").count(), 4);
    }

    #[test]
    fn wildcard_labels_render_as_star() {
        let g = chain(2, vqi_graph::graph::WILDCARD_LABEL, 0);
        let svg = svg_graph(&g, LayoutParams::default());
        assert!(svg.contains(">*</text>"));
    }

    #[test]
    fn interface_svg_has_all_panels() {
        let vqi = sample_vqi();
        let svg = svg_interface(&vqi);
        for title in [
            "Attribute Panel",
            "Pattern Panel",
            "Query Panel",
            "Results Panel",
        ] {
            assert!(svg.contains(title), "missing {title}");
        }
        assert!(svg.contains("node labels: 1"));
    }

    #[test]
    fn ascii_summary_reports_counts() {
        let vqi = sample_vqi();
        let s = ascii_summary(&vqi);
        assert!(s.contains("3 basic"));
        assert!(s.contains("results: none"));
        assert!(s.contains("steps=0"));
    }
}
