//! The graph repository a VQI is constructed over.
//!
//! Two regimes, matching the split in the literature (§2.3): a
//! *collection* of many small/medium data graphs (chemical compounds,
//! protein structures — CATAPULT's setting) or a single *large network*
//! (social/biological networks — TATTOO's setting). Collections support
//! the batch updates MIDAS maintains pattern sets under: graph ids are
//! stable, removals leave tombstones, and every batch is recorded.

use std::collections::BTreeSet;
use vqi_graph::{Graph, Label};

/// A batch update to a collection (MIDAS operates on batches, not unit
/// updates, because real repositories are updated periodically).
#[derive(Debug, Clone, Default)]
pub struct BatchUpdate {
    /// Graphs to add.
    pub additions: Vec<Graph>,
    /// Ids of graphs to remove.
    pub removals: Vec<usize>,
}

impl BatchUpdate {
    /// An update that only adds graphs.
    pub fn adding(additions: Vec<Graph>) -> Self {
        BatchUpdate {
            additions,
            removals: vec![],
        }
    }

    /// An update that only removes graph ids.
    pub fn removing(removals: Vec<usize>) -> Self {
        BatchUpdate {
            additions: vec![],
            removals,
        }
    }

    /// True if the update changes nothing.
    pub fn is_empty(&self) -> bool {
        self.additions.is_empty() && self.removals.is_empty()
    }
}

/// A collection of data graphs with stable ids and tombstoned removal.
///
/// Each stored graph also carries a process-unique *cache token* (minted
/// by [`vqi_graph::cache::mint_target_token`]) identifying that immutable
/// graph in the global kernel cache. Tokens are minted per insertion, so
/// clones that diverge via [`GraphCollection::apply`] never reuse a token
/// for a different graph.
#[derive(Debug, Clone, Default)]
pub struct GraphCollection {
    slots: Vec<Option<Graph>>,
    tokens: Vec<u64>,
}

impl GraphCollection {
    /// Builds a collection; graph `i` receives id `i`.
    pub fn new(graphs: Vec<Graph>) -> Self {
        let tokens = graphs
            .iter()
            .map(|_| vqi_graph::cache::mint_target_token())
            .collect();
        GraphCollection {
            slots: graphs.into_iter().map(Some).collect(),
            tokens,
        }
    }

    /// Number of live graphs.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if no live graphs remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The graph with id `id`, if live.
    pub fn get(&self, id: usize) -> Option<&Graph> {
        self.slots.get(id).and_then(|s| s.as_ref())
    }

    /// The kernel-cache token of the graph with id `id`, if live.
    pub fn token(&self, id: usize) -> Option<u64> {
        self.get(id).map(|_| self.tokens[id])
    }

    /// Iterates `(id, &graph)` over live graphs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Graph)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|g| (i, g)))
    }

    /// Live graph ids.
    pub fn ids(&self) -> Vec<usize> {
        self.iter().map(|(i, _)| i).collect()
    }

    /// Total number of id slots, live and tombstoned. Ids are assigned
    /// densely, so this is also the id the next addition will receive.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The slot with id `id`: `None` past the end, `Some(None)` for a
    /// tombstone, `Some(Some(g))` for a live graph — the distinction
    /// checkpoint serialization needs (a tombstone occupies an id; a
    /// missing slot does not).
    pub fn slot(&self, id: usize) -> Option<Option<&Graph>> {
        self.slots.get(id).map(|s| s.as_ref())
    }

    /// Rebuilds a collection from explicit slots, preserving ids and
    /// tombstones — the checkpoint-recovery constructor. Cache tokens
    /// are minted fresh (they are process-unique identities, not
    /// durable state; a recovered process must not reuse a dead
    /// process's token space).
    pub fn from_slots(slots: Vec<Option<Graph>>) -> Self {
        let tokens = slots
            .iter()
            .map(|_| vqi_graph::cache::mint_target_token())
            .collect();
        GraphCollection { slots, tokens }
    }

    /// Applies a batch update; returns the ids assigned to the additions.
    /// Removing an unknown or dead id is a no-op.
    pub fn apply(&mut self, update: BatchUpdate) -> Vec<usize> {
        for id in update.removals {
            if let Some(slot) = self.slots.get_mut(id) {
                *slot = None;
            }
        }
        let mut assigned = Vec::with_capacity(update.additions.len());
        for g in update.additions {
            assigned.push(self.slots.len());
            self.slots.push(Some(g));
            self.tokens.push(vqi_graph::cache::mint_target_token());
        }
        assigned
    }

    /// Total edges across live graphs.
    pub fn total_edges(&self) -> usize {
        self.iter().map(|(_, g)| g.edge_count()).sum()
    }
}

/// The repository behind a VQI.
#[derive(Debug, Clone)]
pub enum GraphRepository {
    /// Many small/medium data graphs.
    Collection(GraphCollection),
    /// One large network.
    Network(Graph),
}

impl GraphRepository {
    /// Wraps a list of data graphs.
    pub fn collection(graphs: Vec<Graph>) -> Self {
        GraphRepository::Collection(GraphCollection::new(graphs))
    }

    /// Wraps a single large network.
    pub fn network(g: Graph) -> Self {
        GraphRepository::Network(g)
    }

    /// All distinct node labels (Attribute Panel content).
    pub fn node_labels(&self) -> BTreeSet<Label> {
        let mut out = BTreeSet::new();
        match self {
            GraphRepository::Collection(c) => {
                for (_, g) in c.iter() {
                    out.extend(g.nodes().map(|v| g.node_label(v)));
                }
            }
            GraphRepository::Network(g) => {
                out.extend(g.nodes().map(|v| g.node_label(v)));
            }
        }
        out
    }

    /// All distinct edge labels (Attribute Panel content).
    pub fn edge_labels(&self) -> BTreeSet<Label> {
        let mut out = BTreeSet::new();
        match self {
            GraphRepository::Collection(c) => {
                for (_, g) in c.iter() {
                    out.extend(g.edges().map(|e| g.edge_label(e)));
                }
            }
            GraphRepository::Network(g) => {
                out.extend(g.edges().map(|e| g.edge_label(e)));
            }
        }
        out
    }

    /// Number of data graphs (1 for a network).
    pub fn graph_count(&self) -> usize {
        match self {
            GraphRepository::Collection(c) => c.len(),
            GraphRepository::Network(_) => 1,
        }
    }

    /// Total edge count.
    pub fn total_edges(&self) -> usize {
        match self {
            GraphRepository::Collection(c) => c.total_edges(),
            GraphRepository::Network(g) => g.edge_count(),
        }
    }

    /// The collection, if this is one.
    pub fn as_collection(&self) -> Option<&GraphCollection> {
        match self {
            GraphRepository::Collection(c) => Some(c),
            GraphRepository::Network(_) => None,
        }
    }

    /// The network, if this is one.
    pub fn as_network(&self) -> Option<&Graph> {
        match self {
            GraphRepository::Network(g) => Some(g),
            GraphRepository::Collection(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};

    #[test]
    fn collection_ids_are_stable() {
        let mut c = GraphCollection::new(vec![chain(3, 1, 0), star(3, 2, 0), cycle(3, 3, 0)]);
        assert_eq!(c.len(), 3);
        c.apply(BatchUpdate::removing(vec![1]));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none());
        assert!(c.get(0).is_some());
        assert!(c.get(2).is_some());
        let new_ids = c.apply(BatchUpdate::adding(vec![chain(4, 4, 0)]));
        assert_eq!(new_ids, vec![3]);
        assert_eq!(c.ids(), vec![0, 2, 3]);
    }

    #[test]
    fn tokens_are_per_insertion_and_divergence_safe() {
        let c1 = GraphCollection::new(vec![chain(3, 1, 0), star(3, 2, 0)]);
        let mut c2 = c1.clone();
        // shared history: same graphs, same tokens
        assert_eq!(c1.token(0), c2.token(0));
        // divergent appends mint fresh tokens, never colliding
        let mut c3 = c1.clone();
        c2.apply(BatchUpdate::adding(vec![cycle(4, 1, 0)]));
        c3.apply(BatchUpdate::adding(vec![chain(9, 9, 0)]));
        assert_ne!(c2.token(2), c3.token(2));
        // dead ids have no token
        c2.apply(BatchUpdate::removing(vec![0]));
        assert!(c2.token(0).is_none());
        assert!(c2.token(1).is_some());
    }

    #[test]
    fn removing_unknown_ids_is_noop() {
        let mut c = GraphCollection::new(vec![chain(3, 1, 0)]);
        c.apply(BatchUpdate::removing(vec![99, 0, 0]));
        assert!(c.is_empty());
    }

    #[test]
    fn attribute_panel_labels() {
        let repo = GraphRepository::collection(vec![chain(3, 1, 7), star(3, 2, 8)]);
        let nl = repo.node_labels();
        assert_eq!(nl.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        let el = repo.edge_labels();
        assert_eq!(el.into_iter().collect::<Vec<_>>(), vec![7, 8]);
    }

    #[test]
    fn network_accessors() {
        let repo = GraphRepository::network(cycle(5, 1, 2));
        assert_eq!(repo.graph_count(), 1);
        assert_eq!(repo.total_edges(), 5);
        assert!(repo.as_network().is_some());
        assert!(repo.as_collection().is_none());
    }

    #[test]
    fn batch_update_helpers() {
        assert!(BatchUpdate::default().is_empty());
        assert!(!BatchUpdate::adding(vec![chain(2, 0, 0)]).is_empty());
        assert!(!BatchUpdate::removing(vec![0]).is_empty());
    }
}
