//! Plug-and-play persistence: save and load constructed interfaces.
//!
//! The tutorial's "plug-and-play" vision (§2.2, [7], [49]) implies a VQI
//! built over one data source can be shipped, versioned, and reloaded
//! without re-running selection. This module serializes everything
//! data-dependent — the Attribute Panel and the Pattern Panel — into a
//! single self-describing text document: a JSON header plus the patterns
//! in the same classic transaction format the repository loaders use, so
//! a saved VQI is diffable and hand-editable.

use crate::panel::{AttributePanel, PatternPanel};
use crate::pattern::{PatternKind, PatternSet};
use crate::vqi::{ConstructionMode, VisualQueryInterface};
use serde::{Deserialize, Serialize};
use vqi_graph::io::{parse_transactions, write_transactions};
use vqi_graph::Label;

/// The serializable header of a saved interface.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SavedHeader {
    format_version: u32,
    mode: String,
    selector: String,
    node_labels: Vec<Label>,
    edge_labels: Vec<Label>,
    kinds: Vec<String>,
    provenances: Vec<String>,
}

/// Errors from saving/loading.
#[derive(Debug)]
pub enum PersistError {
    /// Header (de)serialization failed.
    Header(String),
    /// Pattern graph section failed to parse.
    Patterns(String),
    /// Structural mismatch (header vs pattern count, bad kind, …).
    Inconsistent(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Header(e) => write!(f, "header: {e}"),
            PersistError::Patterns(e) => write!(f, "patterns: {e}"),
            PersistError::Inconsistent(e) => write!(f, "inconsistent document: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

const SEPARATOR: &str = "---PATTERNS---";

/// Serializes an interface to the portable text document.
pub fn save_interface(vqi: &VisualQueryInterface) -> String {
    let header = SavedHeader {
        format_version: 1,
        mode: format!("{:?}", vqi.mode),
        selector: vqi.selector_name.clone(),
        node_labels: vqi.attributes.node_labels.clone(),
        edge_labels: vqi.attributes.edge_labels.clone(),
        kinds: vqi
            .pattern_set()
            .patterns()
            .iter()
            .map(|p| format!("{:?}", p.kind))
            .collect(),
        provenances: vqi
            .pattern_set()
            .patterns()
            .iter()
            .map(|p| p.provenance.clone())
            .collect(),
    };
    let graphs: Vec<vqi_graph::Graph> = vqi.pattern_set().graphs().cloned().collect();
    format!(
        "{}\n{SEPARATOR}\n{}",
        serde_json::to_string_pretty(&header).expect("header serializes"),
        write_transactions(&graphs)
    )
}

/// Loads an interface previously written by [`save_interface`]. The
/// Query and Results panels start empty (they are user-session state).
pub fn load_interface(text: &str) -> Result<VisualQueryInterface, PersistError> {
    let (head, tail) = text
        .split_once(SEPARATOR)
        .ok_or_else(|| PersistError::Inconsistent("missing pattern separator".into()))?;
    let header: SavedHeader =
        serde_json::from_str(head).map_err(|e| PersistError::Header(e.to_string()))?;
    if header.format_version != 1 {
        return Err(PersistError::Inconsistent(format!(
            "unsupported format version {}",
            header.format_version
        )));
    }
    let graphs = parse_transactions(tail).map_err(|e| PersistError::Patterns(e.to_string()))?;
    if graphs.len() != header.kinds.len() || graphs.len() != header.provenances.len() {
        return Err(PersistError::Inconsistent(format!(
            "{} graphs vs {} kinds / {} provenances",
            graphs.len(),
            header.kinds.len(),
            header.provenances.len()
        )));
    }
    let mut patterns = PatternSet::new();
    for ((g, kind), prov) in graphs
        .into_iter()
        .zip(header.kinds.iter())
        .zip(header.provenances.iter())
    {
        let kind = match kind.as_str() {
            "Basic" => PatternKind::Basic,
            "Canned" => PatternKind::Canned,
            other => {
                return Err(PersistError::Inconsistent(format!(
                    "unknown pattern kind '{other}'"
                )))
            }
        };
        patterns
            .insert(g, kind, prov.clone())
            .map_err(|e| PersistError::Inconsistent(e.to_string()))?;
    }
    let mode = match header.mode.as_str() {
        "DataDriven" => ConstructionMode::DataDriven,
        "Manual" => ConstructionMode::Manual,
        other => {
            return Err(PersistError::Inconsistent(format!(
                "unknown mode '{other}'"
            )))
        }
    };
    Ok(VisualQueryInterface {
        mode,
        selector_name: header.selector,
        attributes: AttributePanel {
            node_labels: header.node_labels,
            edge_labels: header.edge_labels,
        },
        patterns: PatternPanel { patterns },
        query: Default::default(),
        results: Default::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::PatternBudget;
    use crate::repo::GraphRepository;
    use crate::selector::RandomSelector;
    use vqi_graph::generate::{chain, cycle};

    fn sample() -> VisualQueryInterface {
        let repo = GraphRepository::collection(vec![chain(8, 1, 0), cycle(6, 2, 3)]);
        VisualQueryInterface::data_driven(
            &repo,
            &RandomSelector::new(11),
            &PatternBudget::new(4, 4, 6),
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let vqi = sample();
        let text = save_interface(&vqi);
        let loaded = load_interface(&text).expect("loads");
        assert_eq!(loaded.mode, vqi.mode);
        assert_eq!(loaded.selector_name, vqi.selector_name);
        assert_eq!(loaded.attributes.node_labels, vqi.attributes.node_labels);
        assert_eq!(loaded.attributes.edge_labels, vqi.attributes.edge_labels);
        assert_eq!(loaded.pattern_set().len(), vqi.pattern_set().len());
        for (a, b) in loaded
            .pattern_set()
            .patterns()
            .iter()
            .zip(vqi.pattern_set().patterns())
        {
            assert_eq!(a.code, b.code);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.provenance, b.provenance);
        }
    }

    #[test]
    fn manual_interfaces_round_trip_too() {
        let vqi = VisualQueryInterface::manual(vec![1, 2], vec![0], vec![cycle(4, 1, 0)]);
        let loaded = load_interface(&save_interface(&vqi)).unwrap();
        assert_eq!(loaded.mode, ConstructionMode::Manual);
        assert_eq!(loaded.pattern_set().canned().count(), 1);
        assert_eq!(loaded.pattern_set().basic().count(), 3);
    }

    #[test]
    fn corrupted_documents_are_rejected() {
        assert!(load_interface("not a document").is_err());
        let vqi = sample();
        let text = save_interface(&vqi);
        // break the header
        let broken = text.replacen("format_version", "fmt", 1);
        assert!(load_interface(&broken).is_err());
        // break the pattern section
        let broken2 = text.replace("v 0", "vx 0");
        assert!(load_interface(&broken2).is_err());
        // version bump is rejected
        let broken3 = text.replace("\"format_version\": 1", "\"format_version\": 9");
        assert!(load_interface(&broken3).is_err());
    }
}
