//! The assembled visual query interface.
//!
//! [`VisualQueryInterface::data_driven`] is the headline of the tutorial:
//! point it at any repository with any [`PatternSelector`] and a budget,
//! and every data-dependent panel populates itself — no hard-coding, and
//! therefore portability across data sources for free (§2.2).
//! [`VisualQueryInterface::manual`] models the classical counterpart: the
//! developer hard-codes the attribute list and ships only the basic
//! patterns (or whatever fixed set they thought of), which is exactly why
//! manual VQIs age badly as the repository evolves.

use crate::budget::PatternBudget;
use crate::panel::{AttributePanel, PatternPanel, QueryPanel, ResultsPanel};
use crate::pattern::{default_basic_patterns, PatternKind, PatternSet};
use crate::query::{EditOp, QueryError};
use crate::repo::GraphRepository;
use crate::results::{run_query, QueryResults, ResultOptions};
use crate::selector::PatternSelector;
use vqi_graph::{Graph, Label};

/// How the interface was constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstructionMode {
    /// Panels populated automatically from the repository.
    DataDriven,
    /// Panels hard-coded at build time.
    Manual,
}

/// A complete (headless) visual query interface.
#[derive(Debug, Clone)]
pub struct VisualQueryInterface {
    /// How this VQI was built.
    pub mode: ConstructionMode,
    /// Name of the selector that populated the Pattern Panel.
    pub selector_name: String,
    /// The Attribute Panel.
    pub attributes: AttributePanel,
    /// The Pattern Panel.
    pub patterns: PatternPanel,
    /// The Query Panel.
    pub query: QueryPanel,
    /// The Results Panel.
    pub results: ResultsPanel,
}

impl VisualQueryInterface {
    /// Constructs a data-driven VQI: attributes from the repository,
    /// basic patterns, and canned patterns chosen by `selector` within
    /// `budget`.
    pub fn data_driven(
        repo: &GraphRepository,
        selector: &dyn PatternSelector,
        budget: &PatternBudget,
    ) -> Self {
        let mut patterns = default_basic_patterns();
        let canned = selector.select(repo, budget);
        for p in canned.patterns() {
            // selectors return fresh sets; duplicates with basic patterns
            // are impossible by size, but stay defensive
            let _ = patterns.insert(p.graph.clone(), PatternKind::Canned, p.provenance.clone());
        }
        VisualQueryInterface {
            mode: ConstructionMode::DataDriven,
            selector_name: selector.name().to_string(),
            attributes: AttributePanel::from_repository(repo),
            patterns: PatternPanel { patterns },
            query: QueryPanel::default(),
            results: ResultsPanel::default(),
        }
    }

    /// Budget-aware construction: the canned-pattern selection runs
    /// under `ctrl` and the interface is assembled from whatever it
    /// produced (anytime semantics — basic patterns and attributes are
    /// always present). The outcome's completeness mirrors the
    /// selection's; `Err` only under [`crate::ctrl::Budget::with_fail_fast`].
    pub fn data_driven_ctrl(
        repo: &GraphRepository,
        selector: &dyn PatternSelector,
        budget: &PatternBudget,
        ctrl: &crate::ctrl::Budget,
    ) -> Result<crate::ctrl::PipelineOutcome<Self>, vqi_runtime::VqiError> {
        let outcome = selector.select_ctrl(repo, budget, ctrl)?;
        let mut patterns = default_basic_patterns();
        for p in outcome.value.patterns() {
            let _ = patterns.insert(p.graph.clone(), PatternKind::Canned, p.provenance.clone());
        }
        let vqi = VisualQueryInterface {
            mode: ConstructionMode::DataDriven,
            selector_name: selector.name().to_string(),
            attributes: AttributePanel::from_repository(repo),
            patterns: PatternPanel { patterns },
            query: QueryPanel::default(),
            results: ResultsPanel::default(),
        };
        Ok(crate::ctrl::PipelineOutcome {
            value: vqi,
            completeness: outcome.completeness,
        })
    }

    /// Constructs a manual VQI: hard-coded attribute labels, basic
    /// patterns only (plus any developer-supplied canned patterns).
    pub fn manual(
        node_labels: Vec<Label>,
        edge_labels: Vec<Label>,
        extra_patterns: Vec<Graph>,
    ) -> Self {
        let mut patterns = default_basic_patterns();
        for g in extra_patterns {
            let _ = patterns.insert(g, PatternKind::Canned, "manual");
        }
        VisualQueryInterface {
            mode: ConstructionMode::Manual,
            selector_name: "manual".to_string(),
            attributes: AttributePanel::manual(node_labels, edge_labels),
            patterns: PatternPanel { patterns },
            query: QueryPanel::default(),
            results: ResultsPanel::default(),
        }
    }

    /// The pattern set on display.
    pub fn pattern_set(&self) -> &PatternSet {
        &self.patterns.patterns
    }

    /// Applies one edit to the Query Panel.
    pub fn edit(&mut self, op: &EditOp) -> Result<(), QueryError> {
        self.query.query.apply(op).map(|_| ())
    }

    /// Executes the current query against `repo`, filling the Results
    /// Panel and returning a reference to the results.
    pub fn execute(&mut self, repo: &GraphRepository, opts: ResultOptions) -> &QueryResults {
        let (query_graph, _) = self.query.query.to_graph();
        self.results.results = Some(run_query(&query_graph, repo, opts));
        self.results.results.as_ref().expect("just set")
    }

    /// Replaces the canned patterns with `new_set` (used by maintenance).
    /// Basic patterns are preserved.
    pub fn refresh_patterns(&mut self, new_set: PatternSet) {
        let mut patterns = default_basic_patterns();
        for p in new_set.patterns() {
            let _ = patterns.insert(p.graph.clone(), PatternKind::Canned, p.provenance.clone());
        }
        self.patterns = PatternPanel { patterns };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::EditOp;
    use crate::selector::RandomSelector;
    use vqi_graph::generate::{chain, cycle, star};

    fn repo() -> GraphRepository {
        GraphRepository::collection(vec![chain(6, 1, 0), cycle(5, 1, 0), star(5, 2, 0)])
    }

    #[test]
    fn data_driven_populates_panels() {
        let repo = repo();
        let vqi = VisualQueryInterface::data_driven(
            &repo,
            &RandomSelector::new(3),
            &PatternBudget::new(4, 4, 5),
        );
        assert_eq!(vqi.mode, ConstructionMode::DataDriven);
        assert_eq!(vqi.attributes.node_labels, vec![1, 2]);
        assert_eq!(vqi.pattern_set().basic().count(), 3);
        assert!(vqi.pattern_set().canned().count() > 0);
        assert_eq!(vqi.selector_name, "random");
    }

    #[test]
    fn manual_has_only_given_content() {
        let vqi = VisualQueryInterface::manual(vec![1], vec![0], vec![]);
        assert_eq!(vqi.mode, ConstructionMode::Manual);
        assert_eq!(vqi.pattern_set().canned().count(), 0);
        assert_eq!(vqi.pattern_set().basic().count(), 3);
    }

    #[test]
    fn edit_and_execute_round_trip() {
        let repo = repo();
        let mut vqi = VisualQueryInterface::manual(vec![1], vec![0], vec![]);
        let a = vqi
            .query
            .query
            .apply(&EditOp::AddNode { label: 1 })
            .unwrap()[0];
        let b = vqi
            .query
            .query
            .apply(&EditOp::AddNode { label: 1 })
            .unwrap()[0];
        vqi.edit(&EditOp::AddEdge { a, b, label: 0 }).unwrap();
        let results = vqi.execute(&repo, ResultOptions::default());
        // a 1-1 edge occurs in the chain and the cycle
        assert_eq!(results.len(), 2);
        assert!(vqi.results.results.is_some());
    }

    #[test]
    fn refresh_replaces_canned_keeps_basic() {
        let repo = repo();
        let mut vqi = VisualQueryInterface::data_driven(
            &repo,
            &RandomSelector::new(3),
            &PatternBudget::new(4, 4, 5),
        );
        let mut fresh = PatternSet::new();
        fresh
            .insert(star(4, 2, 0), PatternKind::Canned, "new")
            .unwrap();
        vqi.refresh_patterns(fresh);
        assert_eq!(vqi.pattern_set().basic().count(), 3);
        assert_eq!(vqi.pattern_set().canned().count(), 1);
        assert!(vqi.pattern_set().contains_isomorphic(&star(4, 2, 0)));
    }
}
