//! Exploratory search support: data-driven extension suggestions.
//!
//! PICASSO and VIIQ (both demonstrated in the tutorial's §2.1 survey)
//! assist bottom-up users by *suggesting* how the current query fragment
//! can grow: given what is on the canvas, which one-edge extensions
//! actually occur in the repository, and how often? [`suggest_extensions`]
//! answers that by enumerating embeddings of the fragment and tallying
//! the labeled edges leaving each embedding's image, ranked by frequency.
//! Suggestions therefore can never lead the user into an unsatisfiable
//! query — the data-driven property transplanted to interaction.

use crate::repo::GraphRepository;
use crate::score::coverage_match_options;
use serde::Serialize;
use std::collections::HashMap;
use vqi_graph::iso::{enumerate_embeddings, MatchOptions};
use vqi_graph::{Graph, Label};

/// One suggested extension of the current query fragment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Extension {
    /// Fragment node the new edge attaches to.
    pub attach_to: u32,
    /// Label of the new neighbor node.
    pub node_label: Label,
    /// Label of the connecting edge.
    pub edge_label: Label,
    /// In how many distinct repository contexts this extension occurs
    /// (graphs for a collection; embeddings for a network, capped).
    pub support: usize,
}

/// Options for suggestion generation.
#[derive(Debug, Clone, Copy)]
pub struct SuggestOptions {
    /// Maximum suggestions returned.
    pub top_k: usize,
    /// Embedding cap per graph.
    pub max_embeddings: usize,
}

impl Default for SuggestOptions {
    fn default() -> Self {
        SuggestOptions {
            top_k: 8,
            max_embeddings: 200,
        }
    }
}

fn tally(
    fragment: &Graph,
    target: &Graph,
    opts: &SuggestOptions,
    counts: &mut HashMap<(u32, Label, Label), usize>,
    per_graph: bool,
) {
    let match_opts = MatchOptions {
        max_embeddings: opts.max_embeddings,
        ..coverage_match_options()
    };
    let mut seen_this_graph: std::collections::HashSet<(u32, Label, Label)> =
        std::collections::HashSet::new();
    enumerate_embeddings(fragment, target, match_opts, |mapping| {
        let image: std::collections::HashSet<u32> = mapping.iter().map(|n| n.0).collect();
        for (qi, &tn) in mapping.iter().enumerate() {
            for (nbr, e) in target.neighbors(tn) {
                if image.contains(&nbr.0) {
                    continue; // internal edge, not an extension
                }
                let key = (qi as u32, target.node_label(nbr), target.edge_label(e));
                if per_graph {
                    if seen_this_graph.insert(key) {
                        *counts.entry(key).or_insert(0) += 1;
                    }
                } else {
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
        }
        true
    });
}

/// Suggests the top-k one-edge extensions of `fragment` that occur in
/// `repo`, ranked by support (desc), with deterministic tie-breaking.
pub fn suggest_extensions(
    fragment: &Graph,
    repo: &GraphRepository,
    opts: SuggestOptions,
) -> Vec<Extension> {
    if fragment.node_count() == 0 {
        return vec![];
    }
    let mut counts: HashMap<(u32, Label, Label), usize> = HashMap::new();
    match repo {
        GraphRepository::Collection(c) => {
            for (_, g) in c.iter() {
                tally(fragment, g, &opts, &mut counts, true);
            }
        }
        GraphRepository::Network(g) => {
            tally(fragment, g, &opts, &mut counts, false);
        }
    }
    let mut out: Vec<Extension> = counts
        .into_iter()
        .map(|((attach_to, node_label, edge_label), support)| Extension {
            attach_to,
            node_label,
            edge_label,
            support,
        })
        .collect();
    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(a.attach_to.cmp(&b.attach_to))
            .then(a.node_label.cmp(&b.node_label))
            .then(a.edge_label.cmp(&b.edge_label))
    });
    out.truncate(opts.top_k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, star};
    use vqi_graph::NodeId;

    fn repo() -> GraphRepository {
        // three stars with label-7 centers and label-1 leaves, one chain
        GraphRepository::collection(vec![
            star(4, 1, 0).permuted(&[0, 1, 2, 3, 4]), // center gets label set below
            star(3, 1, 0),
            chain(3, 2, 9),
        ])
    }

    #[test]
    fn suggestions_reflect_repository_structure() {
        let mut graphs = vec![star(4, 1, 0), star(3, 1, 0)];
        for g in &mut graphs {
            g.set_node_label(NodeId(0), 7); // centers labeled 7
        }
        let repo = GraphRepository::collection(graphs);
        // fragment: a single label-7 node
        let mut frag = Graph::new();
        frag.add_node(7);
        let sugg = suggest_extensions(&frag, &repo, SuggestOptions::default());
        assert!(!sugg.is_empty());
        // the dominant extension: attach a label-1 node via label-0 edge
        assert_eq!(sugg[0].attach_to, 0);
        assert_eq!(sugg[0].node_label, 1);
        assert_eq!(sugg[0].edge_label, 0);
        assert_eq!(sugg[0].support, 2, "occurs in both graphs");
    }

    #[test]
    fn suggestions_never_invent_structure() {
        let repo = repo();
        let mut frag = Graph::new();
        frag.add_node(2);
        let sugg = suggest_extensions(&frag, &repo, SuggestOptions::default());
        for s in &sugg {
            // every suggested (node label, edge label) must exist in data
            assert!(s.node_label == 2);
            assert_eq!(s.edge_label, 9);
        }
    }

    #[test]
    fn unsatisfiable_fragment_suggests_nothing() {
        let repo = repo();
        let mut frag = Graph::new();
        frag.add_node(99);
        assert!(suggest_extensions(&frag, &repo, SuggestOptions::default()).is_empty());
        assert!(suggest_extensions(&Graph::new(), &repo, SuggestOptions::default()).is_empty());
    }

    #[test]
    fn top_k_truncates_and_orders() {
        let repo = repo();
        let mut frag = Graph::new();
        frag.add_node(1);
        let all = suggest_extensions(
            &frag,
            &repo,
            SuggestOptions {
                top_k: 100,
                ..Default::default()
            },
        );
        let top1 = suggest_extensions(
            &frag,
            &repo,
            SuggestOptions {
                top_k: 1,
                ..Default::default()
            },
        );
        assert!(top1.len() <= 1);
        if !all.is_empty() {
            assert_eq!(top1[0], all[0]);
            for pair in all.windows(2) {
                assert!(pair[0].support >= pair[1].support);
            }
        }
    }

    #[test]
    fn network_mode_counts_embeddings() {
        let net = star(5, 1, 0);
        let repo = GraphRepository::network(net);
        let mut frag = Graph::new();
        frag.add_node(1);
        let sugg = suggest_extensions(&frag, &repo, SuggestOptions::default());
        assert!(!sugg.is_empty());
        // the center sees 5 leaf extensions; each leaf sees the center
        assert!(sugg[0].support >= 5);
    }
}
