//! Aesthetic metrics and Berlyne's inverted-U pleasantness model.
//!
//! HCI studies cited by the tutorial (§2.1, §2.5) link interface
//! aesthetics to *visual complexity*: edge crossings, node crowding, and
//! clutter make a drawing hard to parse, and Berlyne's experimental
//! aesthetics predicts pleasantness peaks at *moderate* complexity — the
//! inverted-U curve. These metrics operate on a [`Layout`] so they apply
//! to pattern thumbnails, the query canvas, and result renderings alike.

use crate::layout::{Layout, Point};
use serde::Serialize;
use vqi_graph::Graph;

/// Counts proper pairwise edge crossings in a drawing (shared endpoints
/// are not crossings).
pub fn edge_crossings(g: &Graph, layout: &Layout) -> usize {
    let segs: Vec<(Point, Point, u32, u32)> = g
        .edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            (
                layout.positions[u.index()],
                layout.positions[v.index()],
                u.0,
                v.0,
            )
        })
        .collect();
    let mut crossings = 0;
    for i in 0..segs.len() {
        for j in (i + 1)..segs.len() {
            let (a1, a2, u1, v1) = segs[i];
            let (b1, b2, u2, v2) = segs[j];
            if u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2 {
                continue; // shared endpoint
            }
            if segments_intersect(a1, a2, b1, b2) {
                crossings += 1;
            }
        }
    }
    crossings
}

fn orient(p: Point, q: Point, r: Point) -> f64 {
    (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)
}

fn segments_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    let d1 = orient(a1, a2, b1);
    let d2 = orient(a1, a2, b2);
    let d3 = orient(b1, b2, a1);
    let d4 = orient(b1, b2, a2);
    (d1 * d2 < 0.0) && (d3 * d4 < 0.0)
}

/// Fraction of node pairs closer than `min_dist` (crowding measure).
pub fn node_crowding(layout: &Layout, min_dist: f64) -> f64 {
    let n = layout.positions.len();
    if n < 2 {
        return 0.0;
    }
    let mut close = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            pairs += 1;
            if layout.positions[i].distance(&layout.positions[j]) < min_dist {
                close += 1;
            }
        }
    }
    close as f64 / pairs as f64
}

/// Visual-complexity metrics of one drawing.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct VisualComplexity {
    /// Proper edge crossings.
    pub crossings: usize,
    /// Crossings per edge (clutter).
    pub clutter: f64,
    /// Node crowding in `[0, 1]`.
    pub crowding: f64,
    /// Element count term (nodes + edges, log-scaled).
    pub element_load: f64,
    /// Combined scalar complexity (≥ 0).
    pub complexity: f64,
}

/// Computes visual complexity of `g` drawn at `layout`. The combined
/// scalar is `element_load + 2·clutter + crowding`: more elements, more
/// crossings per edge, and more crowding all read as "more complex".
pub fn visual_complexity(g: &Graph, layout: &Layout) -> VisualComplexity {
    let crossings = edge_crossings(g, layout);
    let clutter = if g.edge_count() == 0 {
        0.0
    } else {
        crossings as f64 / g.edge_count() as f64
    };
    let min_dist = (layout.width.min(layout.height)) / 12.0;
    let crowding = node_crowding(layout, min_dist);
    let element_load = ((1 + g.node_count() + g.edge_count()) as f64).ln();
    let complexity = element_load + 2.0 * clutter + crowding;
    VisualComplexity {
        crossings,
        clutter,
        crowding,
        element_load,
        complexity,
    }
}

/// Berlyne's inverted-U: pleasantness of a stimulus with complexity `c`
/// peaks at `optimum` and decays as a Gaussian with width `sigma`.
/// Returns a value in `(0, 1]`.
pub fn berlyne_pleasantness(complexity: f64, optimum: f64, sigma: f64) -> f64 {
    let z = (complexity - optimum) / sigma;
    (-0.5 * z * z).exp()
}

/// Aesthetic summary of a whole interface: mean pattern-thumbnail
/// pleasantness, where each thumbnail is laid out independently.
pub fn panel_pleasantness(patterns: &[&Graph], optimum: f64, sigma: f64) -> f64 {
    if patterns.is_empty() {
        return berlyne_pleasantness(0.0, optimum, sigma);
    }
    let total: f64 = patterns
        .iter()
        .map(|p| {
            let layout = crate::layout::force_directed(p, crate::layout::LayoutParams::default());
            berlyne_pleasantness(visual_complexity(p, &layout).complexity, optimum, sigma)
        })
        .sum();
    total / patterns.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{circular, force_directed, LayoutParams};
    use vqi_graph::generate::{chain, clique, cycle};

    #[test]
    fn no_crossings_in_convex_cycle() {
        let g = cycle(6, 0, 0);
        let l = circular(&g, 100.0, 100.0);
        assert_eq!(edge_crossings(&g, &l), 0);
    }

    #[test]
    fn k4_on_circle_has_one_crossing() {
        let g = clique(4, 0, 0);
        let l = circular(&g, 100.0, 100.0);
        // the two diagonals of the square cross once
        assert_eq!(edge_crossings(&g, &l), 1);
    }

    #[test]
    fn k5_circular_crossings() {
        let g = clique(5, 0, 0);
        let l = circular(&g, 100.0, 100.0);
        // K5 on a convex polygon has C(5, 4) = 5 crossings
        assert_eq!(edge_crossings(&g, &l), 5);
    }

    #[test]
    fn shared_endpoints_do_not_cross() {
        let g = chain(3, 0, 0);
        let l = circular(&g, 100.0, 100.0);
        assert_eq!(edge_crossings(&g, &l), 0);
    }

    #[test]
    fn crowding_detects_overlap() {
        let tight = Layout {
            positions: vec![Point { x: 0.0, y: 0.0 }, Point { x: 0.1, y: 0.0 }],
            width: 100.0,
            height: 100.0,
        };
        assert_eq!(node_crowding(&tight, 5.0), 1.0);
        let loose = Layout {
            positions: vec![Point { x: 0.0, y: 0.0 }, Point { x: 50.0, y: 0.0 }],
            width: 100.0,
            height: 100.0,
        };
        assert_eq!(node_crowding(&loose, 5.0), 0.0);
    }

    #[test]
    fn complexity_grows_with_size() {
        let small = cycle(3, 0, 0);
        let big = clique(8, 0, 0);
        let ls = force_directed(&small, LayoutParams::default());
        let lb = force_directed(&big, LayoutParams::default());
        let cs = visual_complexity(&small, &ls).complexity;
        let cb = visual_complexity(&big, &lb).complexity;
        assert!(cb > cs, "{cb} > {cs}");
    }

    #[test]
    fn berlyne_is_inverted_u() {
        let opt = 3.0;
        let s = 1.5;
        let low = berlyne_pleasantness(0.5, opt, s);
        let mid = berlyne_pleasantness(3.0, opt, s);
        let high = berlyne_pleasantness(8.0, opt, s);
        assert!(mid > low, "peak beats low complexity");
        assert!(mid > high, "peak beats high complexity");
        assert!((mid - 1.0).abs() < 1e-12);
    }

    #[test]
    fn panel_pleasantness_prefers_moderate_patterns() {
        let tiny = chain(2, 0, 0);
        let moderate = cycle(5, 0, 0);
        let hairball = clique(9, 0, 0);
        // optimum tuned near the moderate pattern's complexity
        let l = force_directed(&moderate, LayoutParams::default());
        let opt = visual_complexity(&moderate, &l).complexity;
        let p_tiny = panel_pleasantness(&[&tiny], opt, 0.8);
        let p_mod = panel_pleasantness(&[&moderate], opt, 0.8);
        let p_hair = panel_pleasantness(&[&hairball], opt, 0.8);
        assert!(p_mod > p_tiny);
        assert!(p_mod > p_hair);
    }
}
