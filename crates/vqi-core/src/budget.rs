//! Selection budgets.
//!
//! A data-driven VQI is constructed "consistent with a budget" (§2.2):
//! the display has room for only so many patterns, and patterns outside a
//! size range are either trivial (too small to save formulation steps) or
//! cognitively overwhelming (too large to interpret at a glance).

use serde::{Deserialize, Serialize};
use vqi_graph::Graph;

/// Budget for canned-pattern selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternBudget {
    /// Number of canned patterns to display.
    pub count: usize,
    /// Minimum pattern size in nodes (strictly above the basic-pattern
    /// bound `z`).
    pub min_size: usize,
    /// Maximum pattern size in nodes.
    pub max_size: usize,
}

impl PatternBudget {
    /// A budget of `count` patterns between `min_size` and `max_size`
    /// nodes. Panics on an empty size range or zero sizes.
    pub fn new(count: usize, min_size: usize, max_size: usize) -> Self {
        assert!(min_size >= 2, "patterns below 2 nodes carry no edges");
        assert!(min_size <= max_size, "empty size range");
        PatternBudget {
            count,
            min_size,
            max_size,
        }
    }

    /// True if `g`'s node count lies in the budget range.
    pub fn admits(&self, g: &Graph) -> bool {
        (self.min_size..=self.max_size).contains(&g.node_count())
    }
}

impl Default for PatternBudget {
    /// The defaults used throughout the tutorial's examples: 10 canned
    /// patterns of 4–12 nodes (canned means larger than `z = 3`).
    fn default() -> Self {
        PatternBudget::new(10, 4, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::chain;

    #[test]
    fn admits_checks_range() {
        let b = PatternBudget::new(5, 4, 8);
        assert!(!b.admits(&chain(3, 0, 0)));
        assert!(b.admits(&chain(4, 0, 0)));
        assert!(b.admits(&chain(8, 0, 0)));
        assert!(!b.admits(&chain(9, 0, 0)));
    }

    #[test]
    #[should_panic(expected = "empty size range")]
    fn rejects_inverted_range() {
        PatternBudget::new(5, 8, 4);
    }

    #[test]
    #[should_panic(expected = "below 2 nodes")]
    fn rejects_tiny_min() {
        PatternBudget::new(5, 1, 4);
    }

    #[test]
    fn default_is_canned_sized() {
        let b = PatternBudget::default();
        assert!(b.min_size > 3, "canned patterns exceed z = 3");
    }
}
