//! Patterns and deduplicated pattern sets.
//!
//! A *pattern* is a small connected labeled graph displayed in the
//! Pattern Panel. *Basic* (default) patterns are the generic topologies
//! of size at most `z` (edge, 2-path, triangle — the tutorial uses
//! `z ≤ 3`) that any user recognizes; *canned* patterns are larger
//! subgraphs mined from the repository that reveal structure unique to
//! the data source. Pattern sets deduplicate by canonical code, so no two
//! isomorphic patterns ever reach the panel.

use serde::Serialize;
use vqi_graph::canon::{canonical_code, CanonicalCode};
use vqi_graph::graph::WILDCARD_LABEL;
use vqi_graph::traversal::is_connected;
use vqi_graph::Graph;

/// Identifier of a pattern within a [`PatternSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct PatternId(pub u32);

/// Whether a pattern is a generic default or mined from the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PatternKind {
    /// Small generic topology (size ≤ z) shipped with every VQI.
    Basic,
    /// Data-driven pattern selected from the repository.
    Canned,
}

/// A pattern: a small connected labeled graph plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Identifier within its set.
    pub id: PatternId,
    /// The pattern graph.
    pub graph: Graph,
    /// Canonical code (isomorphism dedup key).
    pub code: CanonicalCode,
    /// Basic vs canned.
    pub kind: PatternKind,
    /// Where the pattern came from ("csg:3", "truss:star", …).
    pub provenance: String,
}

impl Pattern {
    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

/// Errors from inserting a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// An isomorphic pattern is already present.
    Duplicate,
    /// The pattern graph is not connected (or is empty).
    NotConnected,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::Duplicate => write!(f, "isomorphic pattern already in set"),
            PatternError::NotConnected => write!(f, "pattern must be a non-empty connected graph"),
        }
    }
}

impl std::error::Error for PatternError {}

/// An ordered, isomorphism-deduplicated set of patterns.
#[derive(Debug, Clone, Default)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
    codes: std::collections::HashSet<CanonicalCode>,
}

impl PatternSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a pattern graph; rejects disconnected/empty graphs and
    /// isomorphic duplicates. Returns the assigned id.
    pub fn insert(
        &mut self,
        graph: Graph,
        kind: PatternKind,
        provenance: impl Into<String>,
    ) -> Result<PatternId, PatternError> {
        if graph.node_count() == 0 || !is_connected(&graph) {
            return Err(PatternError::NotConnected);
        }
        let code = canonical_code(&graph);
        if !self.codes.insert(code.clone()) {
            return Err(PatternError::Duplicate);
        }
        let id = PatternId(self.patterns.len() as u32);
        self.patterns.push(Pattern {
            id,
            graph,
            code,
            kind,
            provenance: provenance.into(),
        });
        Ok(id)
    }

    /// True if an isomorphic pattern is present.
    pub fn contains_isomorphic(&self, graph: &Graph) -> bool {
        self.codes.contains(&canonical_code(graph))
    }

    /// Replaces the pattern at `index` with `graph` (used by MIDAS's
    /// swapping strategy). Fails if the replacement is a duplicate of any
    /// *other* pattern or is disconnected.
    pub fn replace(
        &mut self,
        index: usize,
        graph: Graph,
        provenance: impl Into<String>,
    ) -> Result<(), PatternError> {
        if graph.node_count() == 0 || !is_connected(&graph) {
            return Err(PatternError::NotConnected);
        }
        let code = canonical_code(&graph);
        let old_code = self.patterns[index].code.clone();
        if code != old_code && self.codes.contains(&code) {
            return Err(PatternError::Duplicate);
        }
        self.codes.remove(&old_code);
        self.codes.insert(code.clone());
        let p = &mut self.patterns[index];
        p.graph = graph;
        p.code = code;
        p.kind = PatternKind::Canned;
        p.provenance = provenance.into();
        Ok(())
    }

    /// All patterns in insertion order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if no patterns are present.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Only the canned patterns.
    pub fn canned(&self) -> impl Iterator<Item = &Pattern> {
        self.patterns
            .iter()
            .filter(|p| p.kind == PatternKind::Canned)
    }

    /// Only the basic patterns.
    pub fn basic(&self) -> impl Iterator<Item = &Pattern> {
        self.patterns
            .iter()
            .filter(|p| p.kind == PatternKind::Basic)
    }

    /// Iterates over the pattern graphs.
    pub fn graphs(&self) -> impl Iterator<Item = &Graph> {
        self.patterns.iter().map(|p| &p.graph)
    }
}

/// The default basic pattern set: a single edge, a 2-path, and a
/// triangle, all wildcard-labeled so they apply to any repository
/// (`z = 3` per the tutorial).
pub fn default_basic_patterns() -> PatternSet {
    let mut set = PatternSet::new();
    let w = WILDCARD_LABEL;
    set.insert(
        vqi_graph::generate::chain(2, w, w),
        PatternKind::Basic,
        "basic:edge",
    )
    .expect("edge inserts");
    set.insert(
        vqi_graph::generate::chain(3, w, w),
        PatternKind::Basic,
        "basic:2-path",
    )
    .expect("2-path inserts");
    set.insert(
        vqi_graph::generate::cycle(3, w, w),
        PatternKind::Basic,
        "basic:triangle",
    )
    .expect("triangle inserts");
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};

    #[test]
    fn insert_and_dedup() {
        let mut set = PatternSet::new();
        let id = set
            .insert(cycle(4, 1, 0), PatternKind::Canned, "test")
            .unwrap();
        assert_eq!(id, PatternId(0));
        // an isomorphic copy (relabeled node ids) is rejected
        let copy = cycle(4, 1, 0).permuted(&[2, 3, 0, 1]);
        assert_eq!(
            set.insert(copy, PatternKind::Canned, "test"),
            Err(PatternError::Duplicate)
        );
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let mut set = PatternSet::new();
        assert_eq!(
            set.insert(Graph::new(), PatternKind::Canned, "t"),
            Err(PatternError::NotConnected)
        );
        let mut g = Graph::new();
        g.add_node(0);
        g.add_node(1);
        assert_eq!(
            set.insert(g, PatternKind::Canned, "t"),
            Err(PatternError::NotConnected)
        );
    }

    #[test]
    fn contains_isomorphic_checks_codes() {
        let mut set = PatternSet::new();
        set.insert(star(3, 1, 0), PatternKind::Canned, "t").unwrap();
        assert!(set.contains_isomorphic(&star(3, 1, 0)));
        assert!(!set.contains_isomorphic(&star(4, 1, 0)));
    }

    #[test]
    fn replace_swaps_pattern() {
        let mut set = PatternSet::new();
        set.insert(chain(3, 1, 0), PatternKind::Canned, "old")
            .unwrap();
        set.insert(cycle(3, 1, 0), PatternKind::Canned, "keep")
            .unwrap();
        set.replace(0, star(3, 1, 0), "new").unwrap();
        assert!(set.contains_isomorphic(&star(3, 1, 0)));
        assert!(!set.contains_isomorphic(&chain(3, 1, 0)));
        // replacing with a duplicate of another member fails
        assert_eq!(
            set.replace(0, cycle(3, 1, 0), "dup"),
            Err(PatternError::Duplicate)
        );
        // replacing a pattern with itself is allowed
        set.replace(0, star(3, 1, 0), "same").unwrap();
    }

    #[test]
    fn kind_filters() {
        let mut set = default_basic_patterns();
        set.insert(star(4, 1, 0), PatternKind::Canned, "t").unwrap();
        assert_eq!(set.basic().count(), 3);
        assert_eq!(set.canned().count(), 1);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn default_basic_patterns_are_z3() {
        let set = default_basic_patterns();
        assert_eq!(set.len(), 3);
        for p in set.patterns() {
            assert!(p.size() <= 3, "basic patterns have size ≤ z = 3");
            assert_eq!(p.kind, PatternKind::Basic);
        }
    }
}
