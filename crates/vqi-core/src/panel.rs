//! The four panels of a visual query interface.

use crate::pattern::PatternSet;
use crate::query::QueryBuilder;
use crate::repo::GraphRepository;
use crate::results::QueryResults;
use vqi_graph::Label;

/// The Attribute Panel: node and edge labels available for query
/// construction. In a data-driven VQI this is populated by traversing the
/// repository; in a manual VQI it is hard-coded by the developer.
#[derive(Debug, Clone, Default)]
pub struct AttributePanel {
    /// Sorted distinct node labels.
    pub node_labels: Vec<Label>,
    /// Sorted distinct edge labels.
    pub edge_labels: Vec<Label>,
}

impl AttributePanel {
    /// Populates the panel from a repository (the data-driven path).
    pub fn from_repository(repo: &GraphRepository) -> Self {
        AttributePanel {
            node_labels: repo.node_labels().into_iter().collect(),
            edge_labels: repo.edge_labels().into_iter().collect(),
        }
    }

    /// A hard-coded panel (the manual path).
    pub fn manual(node_labels: Vec<Label>, edge_labels: Vec<Label>) -> Self {
        let mut p = AttributePanel {
            node_labels,
            edge_labels,
        };
        p.node_labels.sort_unstable();
        p.node_labels.dedup();
        p.edge_labels.sort_unstable();
        p.edge_labels.dedup();
        p
    }

    /// True if `label` is offered as a node label.
    pub fn has_node_label(&self, label: Label) -> bool {
        self.node_labels.binary_search(&label).is_ok()
    }

    /// True if `label` is offered as an edge label.
    pub fn has_edge_label(&self, label: Label) -> bool {
        self.edge_labels.binary_search(&label).is_ok()
    }
}

/// The Pattern Panel: basic plus canned patterns.
#[derive(Debug, Clone, Default)]
pub struct PatternPanel {
    /// The deduplicated pattern set on display.
    pub patterns: PatternSet,
}

/// The Query Panel: the in-progress visual query.
#[derive(Debug, Clone, Default)]
pub struct QueryPanel {
    /// The editable query state.
    pub query: QueryBuilder,
}

/// The Results Panel: matches of the last executed query.
#[derive(Debug, Clone, Default)]
pub struct ResultsPanel {
    /// Results of the most recent run, if any.
    pub results: Option<QueryResults>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, star};

    #[test]
    fn attribute_panel_from_repo_is_sorted() {
        let repo = GraphRepository::collection(vec![chain(3, 9, 2), star(3, 1, 5)]);
        let p = AttributePanel::from_repository(&repo);
        assert_eq!(p.node_labels, vec![1, 9]);
        assert_eq!(p.edge_labels, vec![2, 5]);
        assert!(p.has_node_label(9));
        assert!(!p.has_node_label(3));
        assert!(p.has_edge_label(5));
    }

    #[test]
    fn manual_panel_dedups() {
        let p = AttributePanel::manual(vec![3, 1, 3], vec![2, 2]);
        assert_eq!(p.node_labels, vec![1, 3]);
        assert_eq!(p.edge_labels, vec![2]);
    }
}
