//! Property-based tests of the core VQI model.

use proptest::prelude::*;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::{PatternKind, PatternSet};
use vqi_core::query::{EditOp, QNode, QueryBuilder};
use vqi_core::repo::{BatchUpdate, GraphCollection};
use vqi_core::score::{cognitive_load, diversity, evaluate_graphs, QualityWeights};
use vqi_graph::iso::are_isomorphic;
use vqi_graph::{Graph, NodeId};

fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
        let labels = proptest::collection::vec(0u32..3, n);
        (labels, parents).prop_map(move |(nl, ps)| {
            let mut g = Graph::new();
            let nodes: Vec<NodeId> = nl.iter().map(|&l| g.add_node(l)).collect();
            for (i, p) in ps.iter().enumerate() {
                g.add_edge(nodes[i + 1], nodes[*p], (i % 2) as u32);
            }
            g
        })
    })
}

/// A random (possibly failing) edit operation over a small id space.
fn arb_op() -> impl Strategy<Value = EditOp> {
    prop_oneof![
        (0u32..4).prop_map(|label| EditOp::AddNode { label }),
        (0usize..8, 0usize..8, 0u32..3).prop_map(|(a, b, label)| EditOp::AddEdge {
            a: QNode(a),
            b: QNode(b),
            label,
        }),
        arb_connected(4).prop_map(|pattern| EditOp::AddPattern { pattern }),
        (0usize..8, 0usize..8).prop_map(|(keep, merge)| EditOp::MergeNodes {
            keep: QNode(keep),
            merge: QNode(merge),
        }),
        (0usize..8, 0u32..4).prop_map(|(n, label)| EditOp::SetNodeLabel {
            node: QNode(n),
            label,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The query builder never panics on arbitrary op sequences, and its
    /// materialized graph stays consistent with its counters.
    #[test]
    fn query_builder_is_total(ops in proptest::collection::vec(arb_op(), 0..25)) {
        let mut q = QueryBuilder::new();
        let mut applied = 0usize;
        for op in &ops {
            if q.apply(op).is_ok() {
                applied += 1;
            }
        }
        prop_assert_eq!(q.steps(), applied);
        let (g, _) = q.to_graph();
        prop_assert_eq!(g.node_count(), q.node_count());
        prop_assert_eq!(g.edge_count(), q.edge_count());
    }

    /// Pattern sets accept each isomorphism class once, in any insertion
    /// order.
    #[test]
    fn pattern_set_insertion_order_irrelevant(
        graphs in proptest::collection::vec(arb_connected(5), 1..6)
    ) {
        let mut fwd = PatternSet::new();
        for g in &graphs {
            let _ = fwd.insert(g.clone(), PatternKind::Canned, "p");
        }
        let mut rev = PatternSet::new();
        for g in graphs.iter().rev() {
            let _ = rev.insert(g.clone(), PatternKind::Canned, "p");
        }
        prop_assert_eq!(fwd.len(), rev.len());
        // same set of codes
        let mut cf: Vec<_> = fwd.patterns().iter().map(|p| p.code.clone()).collect();
        let mut cr: Vec<_> = rev.patterns().iter().map(|p| p.code.clone()).collect();
        cf.sort();
        cr.sort();
        prop_assert_eq!(cf, cr);
    }

    /// Quality measures stay in their documented ranges.
    #[test]
    fn quality_measures_bounded(graphs in proptest::collection::vec(arb_connected(6), 1..5)) {
        let col = GraphCollection::new(graphs.clone());
        let repo = vqi_core::repo::GraphRepository::Collection(col);
        let patterns: Vec<&Graph> = graphs.iter().collect();
        let q = evaluate_graphs(&patterns, &repo, QualityWeights::default());
        prop_assert!((0.0..=1.0).contains(&q.coverage));
        prop_assert!((0.0..=1.0).contains(&q.diversity));
        prop_assert!((0.0..=1.0).contains(&q.cognitive_load));
        for g in &graphs {
            let cl = cognitive_load(g);
            prop_assert!((0.0..=1.0).contains(&cl));
        }
        prop_assert!((0.0..=1.0).contains(&diversity(&patterns)));
    }

    /// Repository batch updates preserve id arithmetic: live count =
    /// previous + additions − effective removals, and fresh ids never
    /// collide with existing ones.
    #[test]
    fn collection_update_arithmetic(
        initial in proptest::collection::vec(arb_connected(4), 1..6),
        removals in proptest::collection::vec(0usize..10, 0..4),
        additions in proptest::collection::vec(arb_connected(4), 0..4),
    ) {
        let mut col = GraphCollection::new(initial.clone());
        let before_ids = col.ids();
        let mut effective: Vec<usize> = removals
            .iter()
            .copied()
            .filter(|r| before_ids.contains(r))
            .collect();
        effective.sort_unstable();
        effective.dedup();
        let n_add = additions.len();
        let new_ids = col.apply(BatchUpdate {
            additions,
            removals: removals.clone(),
        });
        prop_assert_eq!(new_ids.len(), n_add);
        for id in &new_ids {
            prop_assert!(!before_ids.contains(id), "fresh id reused");
        }
        prop_assert_eq!(
            col.len(),
            before_ids.len() - effective.len() + n_add
        );
    }

    /// Budget admission agrees with the raw size check.
    #[test]
    fn budget_admission(g in arb_connected(9), min in 2usize..5, extra in 0usize..5) {
        let budget = PatternBudget::new(3, min, min + extra);
        prop_assert_eq!(
            budget.admits(&g),
            (min..=min + extra).contains(&g.node_count())
        );
    }

    /// Replaying AddPattern reproduces the pattern exactly.
    #[test]
    fn add_pattern_is_faithful(g in arb_connected(6)) {
        let mut q = QueryBuilder::new();
        q.apply(&EditOp::AddPattern { pattern: g.clone() }).unwrap();
        let (out, _) = q.to_graph();
        prop_assert!(are_isomorphic(&out, &g));
    }
}
