//! Property-based tests of the graph substrate.

use proptest::prelude::*;
use vqi_graph::graph::{Graph, NodeId};
use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::metrics::{average_degree, degree_histogram};
use vqi_graph::traversal::{bfs_order, connected_components, dfs_order};
use vqi_graph::truss::{decompose, edge_supports, trussness};

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec(proptest::bool::weighted(0.45), n * (n - 1) / 2);
        let labels = proptest::collection::vec(0u32..4, n);
        (labels, edges).prop_map(move |(nl, es)| {
            let mut g = Graph::new();
            let nodes: Vec<NodeId> = nl.iter().map(|&l| g.add_node(l)).collect();
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if es[idx] {
                        g.add_edge(nodes[i], nodes[j], 0);
                    }
                    idx += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A graph is always subgraph-isomorphic to itself (non-induced and
    /// induced).
    #[test]
    fn self_embedding(g in arb_graph(8)) {
        prop_assert!(is_subgraph_isomorphic(&g, &g, MatchOptions::default()));
        prop_assert!(is_subgraph_isomorphic(&g, &g, MatchOptions::induced()));
    }

    /// Induced subgraphs embed induced into the original.
    #[test]
    fn induced_subgraph_embeds(g in arb_graph(8), keep in proptest::collection::vec(any::<bool>(), 8)) {
        let nodes: Vec<NodeId> = g
            .nodes()
            .filter(|v| keep.get(v.index()).copied().unwrap_or(false))
            .collect();
        prop_assume!(!nodes.is_empty());
        let (sub, mapping) = g.induced_subgraph(&nodes);
        prop_assert_eq!(sub.node_count(), nodes.len());
        prop_assert!(is_subgraph_isomorphic(&sub, &g, MatchOptions::induced()));
        // mapping preserves labels
        for v in sub.nodes() {
            prop_assert_eq!(sub.node_label(v), g.node_label(mapping[v.index()]));
        }
    }

    /// BFS and DFS from the same start visit exactly the same node set.
    #[test]
    fn bfs_dfs_agree_on_reachability(g in arb_graph(9)) {
        let start = NodeId(0);
        let mut b = bfs_order(&g, start);
        let mut d = dfs_order(&g, start);
        b.sort_unstable();
        d.sort_unstable();
        prop_assert_eq!(b, d);
    }

    /// Components partition the node set.
    #[test]
    fn components_partition(g in arb_graph(9)) {
        let comps = connected_components(&g);
        let mut all: Vec<NodeId> = comps.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<NodeId> = g.nodes().collect();
        prop_assert_eq!(all, expect);
    }

    /// Edge supports sum to 3 × (number of triangles): each triangle
    /// contributes one support unit to each of its three edges.
    #[test]
    fn supports_count_triangles(g in arb_graph(8)) {
        let total: u32 = edge_supports(&g).iter().sum();
        prop_assert_eq!(total % 3, 0, "support sum must be divisible by 3");
    }

    /// k-trusses are nested: edges of the (k+1)-truss are a subset of the
    /// k-truss edges.
    #[test]
    fn trusses_are_nested(g in arb_graph(9)) {
        let d3 = decompose(&g, 3);
        let d4 = decompose(&g, 4);
        let set3: std::collections::HashSet<_> = d3.infested_edges.iter().collect();
        for e in &d4.infested_edges {
            prop_assert!(set3.contains(e), "4-truss edge missing from 3-truss");
        }
    }

    /// Trussness is at least 2 everywhere and at most max support + 2.
    #[test]
    fn trussness_bounds(g in arb_graph(9)) {
        let t = trussness(&g);
        let s = edge_supports(&g);
        let max_s = s.iter().copied().max().unwrap_or(0);
        for &x in &t {
            prop_assert!(x >= 2);
            prop_assert!(x <= max_s + 2);
        }
    }

    /// Degree histogram is consistent with average degree.
    #[test]
    fn degree_histogram_consistent(g in arb_graph(9)) {
        let hist = degree_histogram(&g);
        let total_nodes: usize = hist.iter().sum();
        prop_assert_eq!(total_nodes, g.node_count());
        let sum_deg: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        prop_assert_eq!(sum_deg, 2 * g.edge_count());
        let avg = average_degree(&g);
        prop_assert!((avg - sum_deg as f64 / g.node_count() as f64).abs() < 1e-12);
    }

    /// Non-induced matching is weaker than induced: every induced
    /// embedding is also a non-induced one.
    #[test]
    fn induced_implies_non_induced(p in arb_graph(5), t in arb_graph(7)) {
        if is_subgraph_isomorphic(&p, &t, MatchOptions::induced()) {
            prop_assert!(is_subgraph_isomorphic(&p, &t, MatchOptions::default()));
        }
    }

    /// Permutation preserves subgraph relations.
    #[test]
    fn permutation_preserves_matching(p in arb_graph(5), t in arb_graph(7)) {
        let n = t.node_count();
        let perm: Vec<usize> = (0..n).rev().collect();
        let tp = t.permuted(&perm);
        prop_assert_eq!(
            is_subgraph_isomorphic(&p, &t, MatchOptions::default()),
            is_subgraph_isomorphic(&p, &tp, MatchOptions::default())
        );
    }
}
