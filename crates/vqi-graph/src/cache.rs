//! Memoization of the expensive graph kernels.
//!
//! The selection and maintenance loops call the same three kernels over
//! and over on the same inputs: [`mcs::mcs_similarity`] (every diversity
//! term, every greedy round), [`iso::is_subgraph_isomorphic`] (coverage
//! of a pattern over a data graph), and [`iso::covered_edges`] (coverage
//! of a pattern over a network). All three are *isomorphism-invariant in
//! the pattern*, so results can be keyed by [`CanonicalCode`] instead of
//! by graph identity:
//!
//! * `mcs` — keyed by the unordered pair of canonical codes;
//! * `covers` / `covered_edges` — keyed by (pattern code, target token,
//!   match options), where a *target token* is a process-unique `u64`
//!   minted per stored graph ([`mint_target_token`]). Tokens, not raw
//!   collection ids, because ids are only unique within one collection
//!   while the cache is global.
//!
//! Equal canonical codes imply isomorphic graphs even when a code is
//! truncated (truncation only weakens the *collision* guarantee), so a
//! hit never conflates distinct graphs. Bit-exact replay of an uncached
//! run additionally relies on the kernel being isomorphism-invariant,
//! which holds whenever the bounded searches run to completion — true
//! for all pattern-sized inputs in this workspace; a kernel stopped by
//! its state budget could in principle return different bounds for
//! differently-ordered isomorphic inputs.
//!
//! Each kernel's memo is sharded (16 ways), capacity-bounded with FIFO
//! eviction, and instrumented: counters `cache.<kernel>.hit`,
//! `cache.<kernel>.miss`, and `cache.<kernel>.evict` land in the
//! `vqi-observe` registry when metrics are enabled. Values are computed
//! *outside* the shard lock, so a race can at worst duplicate a
//! computation, never block other shards on it.

use crate::canon::CanonicalCode;
use crate::graph::{EdgeId, Graph};
use crate::iso::{self, MatchOptions};
use crate::mcs;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

const SHARDS: usize = 16;

/// A sharded, capacity-bounded memo table for one kernel.
pub struct Memo<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_capacity: usize,
    hit_name: String,
    miss_name: String,
    evict_name: String,
}

struct Shard<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
}

impl<K: Eq + Hash + Clone, V: Clone> Memo<K, V> {
    /// A memo named `kernel` (for metrics) holding at most `capacity`
    /// entries across all shards.
    pub fn new(kernel: &str, capacity: usize) -> Self {
        Memo {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            shard_capacity: (capacity / SHARDS).max(1),
            hit_name: format!("cache.{kernel}.hit"),
            miss_name: format!("cache.{kernel}.miss"),
            evict_name: format!("cache.{kernel}.evict"),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the memoized value for `key`, if any, counting a hit or a
    /// miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard_of(key);
        let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.map.get(key) {
            Some(v) => {
                vqi_observe::incr(&self.hit_name, 1);
                Some(v.clone())
            }
            None => {
                vqi_observe::incr(&self.miss_name, 1);
                None
            }
        }
    }

    /// Stores `value` under `key` (first writer wins), evicting the
    /// oldest entry of a full shard.
    pub fn insert(&self, key: K, value: V) {
        let shard = self.shard_of(&key);
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if !guard.map.contains_key(&key) {
            if guard.map.len() >= self.shard_capacity {
                if let Some(oldest) = guard.order.pop_front() {
                    guard.map.remove(&oldest);
                    vqi_observe::incr(&self.evict_name, 1);
                }
            }
            guard.order.push_back(key.clone());
            guard.map.insert(key, value);
        }
    }

    /// Returns the memoized value for `key`, computing and storing it on
    /// a miss. `compute` runs outside the shard lock.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let value = compute();
        self.insert(key, value.clone());
        value
    }

    /// Drops every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            guard.map.clear();
            guard.order.clear();
        }
    }

    /// Current number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Hashable fingerprint of the [`MatchOptions`] that affect a result.
type OptsKey = (bool, bool, usize, u64);

fn opts_key(o: MatchOptions) -> OptsKey {
    (o.induced, o.wildcard, o.max_embeddings, o.max_states)
}

/// The process-wide memo tables for the three graph kernels.
pub struct GraphKernelCache {
    /// MCS similarity keyed by the unordered canonical-code pair.
    pub mcs: Memo<(CanonicalCode, CanonicalCode), f64>,
    /// Subgraph-isomorphism existence keyed by (pattern code, target
    /// token, options).
    pub covers: Memo<(CanonicalCode, u64, OptsKey), bool>,
    /// Covered-edge lists keyed like `covers`. Smaller capacity: entries
    /// hold edge lists, not single words.
    pub covered_edges: Memo<(CanonicalCode, u64, OptsKey), Vec<EdgeId>>,
}

static CACHE_ENABLED: AtomicBool = AtomicBool::new(true);
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// True while the kernel caches are consulted (default). Disabling makes
/// every `*_cached` entry point compute directly; results are identical
/// either way.
pub fn enabled() -> bool {
    CACHE_ENABLED.load(Ordering::Relaxed)
}

/// Turns the kernel caches on or off globally.
pub fn set_enabled(on: bool) {
    CACHE_ENABLED.store(on, Ordering::Relaxed);
}

/// Mints a process-unique token identifying one immutable target graph.
/// Collections mint one per stored graph; network maintainers mint one
/// per network rebuild.
pub fn mint_target_token() -> u64 {
    NEXT_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// The global kernel cache.
pub fn global() -> &'static GraphKernelCache {
    static CACHE: OnceLock<GraphKernelCache> = OnceLock::new();
    CACHE.get_or_init(|| GraphKernelCache {
        mcs: Memo::new("mcs", 1 << 16),
        covers: Memo::new("covers", 1 << 16),
        covered_edges: Memo::new("covered_edges", 1 << 11),
    })
}

/// Clears all three kernel memos.
pub fn clear() {
    let c = global();
    c.mcs.clear();
    c.covers.clear();
    c.covered_edges.clear();
}

/// Memoized [`mcs::mcs_similarity`]. Callers pass the canonical codes
/// they already hold; the key is the unordered code pair (the measure is
/// symmetric).
pub fn mcs_similarity_cached(
    a: &Graph,
    code_a: &CanonicalCode,
    b: &Graph,
    code_b: &CanonicalCode,
) -> f64 {
    if !enabled() {
        return mcs::mcs_similarity(a, b);
    }
    let key = if code_a <= code_b {
        (code_a.clone(), code_b.clone())
    } else {
        (code_b.clone(), code_a.clone())
    };
    global()
        .mcs
        .get_or_insert_with(key, || mcs::mcs_similarity(a, b))
}

/// [`mcs_similarity_cached`] with a [`mcs::mcs_similarity_bounded`]
/// usefulness threshold. A cache hit returns the memoized **exact**
/// value (which may legitimately be below `min_useful` — the fold
/// `max(m, ·)` is unaffected). On a miss the bounded kernel runs, and
/// the result is stored **only when it is exact**: a bound-skipped value
/// never poisons the memo, so every cached entry stays an exact
/// similarity. Bound-skips are tracked separately by the
/// `kernel.mcs.skip_fingerprint` / `kernel.mcs.pruned` counters.
pub fn mcs_similarity_cached_bounded(
    a: &Graph,
    code_a: &CanonicalCode,
    b: &Graph,
    code_b: &CanonicalCode,
    min_useful: f64,
) -> f64 {
    if !enabled() {
        return mcs::mcs_similarity_bounded(a, b, min_useful);
    }
    if !mcs::bound_skip_enabled() {
        return mcs_similarity_cached(a, code_a, b, code_b);
    }
    let key = if code_a <= code_b {
        (code_a.clone(), code_b.clone())
    } else {
        (code_b.clone(), code_a.clone())
    };
    if let Some(v) = global().mcs.get(&key) {
        return v;
    }
    let (value, exact) = mcs::mcs_similarity_bounded_detail(a, b, min_useful);
    if exact {
        global().mcs.insert(key, value);
    }
    value
}

/// Memoized [`iso::is_subgraph_isomorphic`] for a pattern against one
/// tokenized target graph.
pub fn is_subgraph_isomorphic_cached(
    pattern: &Graph,
    code: &CanonicalCode,
    target: &Graph,
    target_token: u64,
    opts: MatchOptions,
) -> bool {
    if !enabled() {
        return iso::is_subgraph_isomorphic(pattern, target, opts);
    }
    global()
        .covers
        .get_or_insert_with((code.clone(), target_token, opts_key(opts)), || {
            iso::is_subgraph_isomorphic(pattern, target, opts)
        })
}

/// [`is_subgraph_isomorphic_cached`] computing misses through the
/// indexed kernel. Shares the key space with the non-indexed entry point
/// — sound because the indexed search is answer-identical (`idx` must be
/// built from this exact `target`).
pub fn is_subgraph_isomorphic_cached_indexed(
    pattern: &Graph,
    code: &CanonicalCode,
    target: &Graph,
    target_token: u64,
    idx: &crate::index::GraphIndex,
    opts: MatchOptions,
) -> bool {
    if !enabled() {
        return iso::is_subgraph_isomorphic_indexed(pattern, target, idx, opts);
    }
    global()
        .covers
        .get_or_insert_with((code.clone(), target_token, opts_key(opts)), || {
            iso::is_subgraph_isomorphic_indexed(pattern, target, idx, opts)
        })
}

/// Memoized [`iso::covered_edges`] for a pattern against one tokenized
/// target graph.
pub fn covered_edges_cached(
    pattern: &Graph,
    code: &CanonicalCode,
    target: &Graph,
    target_token: u64,
    opts: MatchOptions,
) -> Vec<EdgeId> {
    if !enabled() {
        return iso::covered_edges(pattern, target, opts);
    }
    global()
        .covered_edges
        .get_or_insert_with((code.clone(), target_token, opts_key(opts)), || {
            iso::covered_edges(pattern, target, opts)
        })
}

/// [`covered_edges_cached`] computing misses through the indexed kernel
/// (same key space; `idx` must be built from this exact `target`).
pub fn covered_edges_cached_indexed(
    pattern: &Graph,
    code: &CanonicalCode,
    target: &Graph,
    target_token: u64,
    idx: &crate::index::GraphIndex,
    opts: MatchOptions,
) -> Vec<EdgeId> {
    if !enabled() {
        return iso::covered_edges_indexed(pattern, target, idx, opts);
    }
    global()
        .covered_edges
        .get_or_insert_with((code.clone(), target_token, opts_key(opts)), || {
            iso::covered_edges_indexed(pattern, target, idx, opts)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonical_code;
    use crate::generate::{assign_labels, chain, clique, cycle, erdos_renyi, star};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn random_graph(n: usize, p: f64, node_labels: u32, edge_labels: u32, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = erdos_renyi(n, p, 0, &mut rng);
        assign_labels(&mut g, node_labels, edge_labels, &mut rng);
        g
    }

    #[test]
    fn tokens_are_unique() {
        let a = mint_target_token();
        let b = mint_target_token();
        assert_ne!(a, b);
    }

    #[test]
    fn memo_returns_computed_value_and_hits_after_miss() {
        let memo: Memo<u64, u64> = Memo::new("test_roundtrip", 64);
        let mut computes = 0;
        let v = memo.get_or_insert_with(7, || {
            computes += 1;
            7 * 3
        });
        assert_eq!(v, 21);
        let v2 = memo.get_or_insert_with(7, || {
            computes += 1;
            0 // would be wrong; must not be called
        });
        assert_eq!(v2, 21);
        assert_eq!(computes, 1);
    }

    #[test]
    fn eviction_bounds_capacity_and_stays_correct() {
        // capacity 16 across 16 shards = 1 entry per shard
        let memo: Memo<u64, u64> = Memo::new("test_evict", 16);
        for k in 0..200u64 {
            assert_eq!(memo.get_or_insert_with(k, || k * 2), k * 2);
        }
        assert!(memo.len() <= 16, "memo grew past capacity: {}", memo.len());
        // evicted keys recompute to the same value
        for k in 0..200u64 {
            assert_eq!(memo.get_or_insert_with(k, || k * 2), k * 2);
        }
    }

    #[test]
    fn memoized_mcs_equals_direct() {
        let graphs: Vec<Graph> = (0..6u64)
            .map(|i| random_graph(4 + (i as usize) % 3, 0.5, 2, 1, 99 + i))
            .chain([
                chain(4, 1, 0),
                cycle(5, 2, 0),
                star(4, 3, 0),
                clique(4, 1, 0),
            ])
            .collect();
        let codes: Vec<CanonicalCode> = graphs.iter().map(canonical_code).collect();
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                let direct = mcs::mcs_similarity(&graphs[i], &graphs[j]);
                // both the miss and the subsequent hit must agree
                for _ in 0..2 {
                    let cached =
                        mcs_similarity_cached(&graphs[i], &codes[i], &graphs[j], &codes[j]);
                    assert_eq!(cached, direct, "pair ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn memoized_covers_and_edges_equal_direct() {
        let opts = MatchOptions::with_wildcards();
        let targets: Vec<(Graph, u64)> = (0..4u64)
            .map(|i| (random_graph(8, 0.35, 3, 2, 500 + i), mint_target_token()))
            .collect();
        let patterns = [
            chain(3, 1, 0),
            cycle(3, 2, 1),
            star(3, 0, 0),
            chain(2, 2, 2),
        ];
        for p in &patterns {
            let code = canonical_code(p);
            for (t, token) in &targets {
                let direct = iso::is_subgraph_isomorphic(p, t, opts);
                let direct_edges = iso::covered_edges(p, t, opts);
                for _ in 0..2 {
                    assert_eq!(
                        is_subgraph_isomorphic_cached(p, &code, t, *token, opts),
                        direct
                    );
                    assert_eq!(
                        covered_edges_cached(p, &code, t, *token, opts),
                        direct_edges
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_cached_folds_identically_and_keeps_entries_exact() {
        let _guard = crate::kernel_test_lock();
        crate::mcs::set_bound_skip_enabled(true);
        // a pair (unique labels: untouched by other tests) where the
        // bound-skipped return value (0.6) differs from the exact
        // similarity (0.4): a poisoned memo entry would be visible
        let a = star(4, 23, 0); // 4 edges
        let b = cycle(5, 23, 0); // 5 edges; MCS = 2-edge path
        let (ca, cb) = (canonical_code(&a), canonical_code(&b));
        let exact_ab = mcs::mcs_similarity(&a, &b);
        let skipped = mcs_similarity_cached_bounded(&a, &ca, &b, &cb, 0.6);
        assert!(skipped <= 0.6);
        assert_ne!(
            skipped, exact_ab,
            "pair no longer distinguishes skip from exact"
        );
        assert_eq!(
            mcs_similarity_cached(&a, &ca, &b, &cb),
            exact_ab,
            "bound-skipped value leaked into the memo"
        );
        let graphs: Vec<Graph> = (0..6u64)
            .map(|i| random_graph(5 + (i as usize) % 3, 0.5, 2, 1, 700 + i))
            .chain([chain(4, 1, 0), cycle(5, 2, 0), star(4, 3, 0)])
            .collect();
        let codes: Vec<CanonicalCode> = graphs.iter().map(canonical_code).collect();
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                let exact = mcs::mcs_similarity(&graphs[i], &graphs[j]);
                for m in [0.0, 0.3, exact, 0.95] {
                    let bounded = mcs_similarity_cached_bounded(
                        &graphs[i], &codes[i], &graphs[j], &codes[j], m,
                    );
                    assert_eq!(f64::max(m, bounded), f64::max(m, exact), "({i},{j}) m={m}");
                }
                // whatever the bounded calls did above, the exact entry
                // point must still see the exact value: a bound-skip
                // never poisons the memo
                assert_eq!(
                    mcs_similarity_cached(&graphs[i], &codes[i], &graphs[j], &codes[j]),
                    exact,
                    "cache poisoned for pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn indexed_cached_covers_equal_direct() {
        use crate::index::GraphIndex;
        let opts = MatchOptions::with_wildcards();
        let targets: Vec<(Graph, u64)> = (0..4u64)
            .map(|i| (random_graph(9, 0.35, 3, 2, 900 + i), mint_target_token()))
            .collect();
        let patterns = [
            chain(3, 1, 0),
            cycle(3, 2, 1),
            star(3, 0, 0),
            chain(2, 2, 2),
        ];
        for p in &patterns {
            let code = canonical_code(p);
            for (t, token) in &targets {
                let idx = GraphIndex::build(t);
                let direct = iso::is_subgraph_isomorphic(p, t, opts);
                let direct_edges = iso::covered_edges(p, t, opts);
                for _ in 0..2 {
                    assert_eq!(
                        is_subgraph_isomorphic_cached_indexed(p, &code, t, *token, &idx, opts),
                        direct
                    );
                    assert_eq!(
                        covered_edges_cached_indexed(p, &code, t, *token, &idx, opts),
                        direct_edges
                    );
                }
                // the non-indexed entry point shares the key space and
                // must agree on a hit
                assert_eq!(
                    is_subgraph_isomorphic_cached(p, &code, t, *token, opts),
                    direct
                );
            }
        }
    }

    #[test]
    fn disabling_bypasses_the_cache() {
        let a = chain(4, 5, 0);
        let b = cycle(4, 5, 0);
        let (ca, cb) = (canonical_code(&a), canonical_code(&b));
        let direct = mcs::mcs_similarity(&a, &b);
        set_enabled(false);
        let off = mcs_similarity_cached(&a, &ca, &b, &cb);
        set_enabled(true);
        let on = mcs_similarity_cached(&a, &ca, &b, &cb);
        assert_eq!(off, direct);
        assert_eq!(on, direct);
    }
}
