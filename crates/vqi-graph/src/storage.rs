//! Storage backends: the [`GraphStorage`] trait and the compact
//! [`CsrGraph`].
//!
//! The heap-resident [`Graph`] keeps one `Vec` per node — friendly to
//! append-only construction, hostile to 10⁸-edge networks (per-row
//! allocations, pointer chasing, ~50+ bytes/edge of overhead). The
//! large-network track (TATTOO; GraphVista's topology/attribute split)
//! wants the opposite: topology in a handful of packed arrays the hot
//! kernels can stream.
//!
//! [`GraphStorage`] abstracts exactly the access the large-network
//! kernels need — counts, labels, endpoints, contiguous neighbor
//! slices, and label buckets — with two implementations:
//!
//! * [`Graph`], whose adjacency rows already are contiguous slices;
//! * [`CsrGraph`], u32-packed CSR arrays (offsets + interleaved
//!   `(neighbor, edge)` targets + per-edge endpoints/labels),
//!   label-bucketed like [`crate::index::GraphIndex`], at ~30 bytes per
//!   edge.
//!
//! **Bit-identity contract.** A `CsrGraph` built from a `Graph` (or
//! from the same deterministic edge stream) preserves the *insertion
//! order* of every adjacency row. Every ported kernel walks neighbor
//! slices in row order, so truss peel, graphlet census, and sharded
//! TATTOO selection produce bit-identical output on either backend, at
//! any thread cap — the PR 4 contract extended across storage layers.
//!
//! **On-disk images.** [`CsrGraph::save_image`]/[`CsrGraph::load_image`]
//! serialize the packed arrays as a little-endian image with a
//! validated header and a trailing digest. The section layout is
//! mmap-ready (fixed-width fields, arrays at computable offsets); the
//! loader materializes packed heap arrays because this workspace
//! forbids `unsafe` (no `mmap` without it) — still ~3 GB for 10⁸ edges
//! against the heap `Graph`'s tens of GB, which is what makes the
//! `exp_scale` ceiling fit this machine.

use crate::graph::{EdgeId, Graph, Label, NodeId, SortedAdjacency};
use crate::index::mix64;
use std::io::{Read, Write};
use std::path::Path;
use vqi_runtime::VqiError;

/// Topology access the large-network kernels are generic over.
///
/// Implementations must present every adjacency row as a contiguous
/// `(neighbor, edge id)` slice in **edge insertion order** — the order
/// [`Graph::add_edge`] appends — because the cross-backend bit-identity
/// of the ported kernels rests on identical row iteration order.
pub trait GraphStorage: Sync {
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Number of edges.
    fn edge_count(&self) -> usize;
    /// The label of node `v`.
    fn node_label(&self, v: NodeId) -> Label;
    /// The label of edge `e`.
    fn edge_label(&self, e: EdgeId) -> Label;
    /// The endpoints of edge `e` (orientation as inserted).
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId);
    /// The `(neighbor, edge id)` row of `v`, in insertion order.
    fn neighbor_slice(&self, v: NodeId) -> &[(NodeId, EdgeId)];
    /// Degree of `v`.
    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        self.neighbor_slice(v).len()
    }
    /// Distinct node labels, ascending.
    fn label_classes(&self) -> Vec<Label>;
    /// Nodes carrying exactly label `l`, ascending by id (the label
    /// bucket — precomputed in [`CsrGraph`], scanned in [`Graph`]).
    fn nodes_with_label(&self, l: Label) -> Vec<NodeId>;
}

impl GraphStorage for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }
    #[inline]
    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }
    #[inline]
    fn node_label(&self, v: NodeId) -> Label {
        Graph::node_label(self, v)
    }
    #[inline]
    fn edge_label(&self, e: EdgeId) -> Label {
        Graph::edge_label(self, e)
    }
    #[inline]
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        Graph::endpoints(self, e)
    }
    #[inline]
    fn neighbor_slice(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        Graph::neighbor_slice(self, v)
    }
    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }
    fn label_classes(&self) -> Vec<Label> {
        let mut ls = self.node_label_multiset();
        ls.dedup();
        ls
    }
    fn nodes_with_label(&self, l: Label) -> Vec<NodeId> {
        // id-ascending scan == the bucket order CsrGraph precomputes
        self.nodes()
            .filter(|&v| Graph::node_label(self, v) == l)
            .collect()
    }
}

/// Packs a [`Graph`]'s adjacency into CSR `(offsets, nbr)` arrays,
/// preserving per-row insertion order. Shared by [`CsrGraph::from_graph`]
/// and [`crate::index::GraphIndex::build`] so there is exactly one CSR
/// packing in the crate.
pub(crate) fn pack_adjacency(g: &Graph) -> (Vec<u32>, Vec<(NodeId, EdgeId)>) {
    let n = g.node_count();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut nbr = Vec::with_capacity(2 * g.edge_count());
    offsets.push(0u32);
    for v in g.nodes() {
        nbr.extend_from_slice(g.neighbor_slice(v));
        offsets.push(nbr.len() as u32);
    }
    (offsets, nbr)
}

/// Builds label buckets over per-node labels: distinct labels ascending,
/// bucket offsets, and node ids grouped by label (ascending within each
/// bucket). Shared by [`CsrGraph`] and [`crate::index::GraphIndex`];
/// byte-for-byte the packing `GraphIndex::build` historically inlined.
pub(crate) fn label_buckets(node_labels: &[Label]) -> (Vec<Label>, Vec<u32>, Vec<NodeId>) {
    let mut pairs: Vec<(Label, NodeId)> = node_labels
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, NodeId(i as u32)))
        .collect();
    pairs.sort_unstable_by_key(|&(l, v)| (l, v.0));
    let mut labels = Vec::new();
    let mut bucket_offsets = vec![0u32];
    let mut by_label = Vec::with_capacity(node_labels.len());
    for (l, v) in pairs {
        if labels.last() != Some(&l) {
            if !labels.is_empty() {
                bucket_offsets.push(by_label.len() as u32);
            }
            labels.push(l);
        }
        by_label.push(v);
    }
    // keep the invariant len(bucket_offsets) == len(labels) + 1 even
    // for the empty graph (otherwise the on-disk image, whose section
    // lengths are computed from the label-class count, cannot round-trip)
    if !labels.is_empty() {
        bucket_offsets.push(by_label.len() as u32);
    }
    (labels, bucket_offsets, by_label)
}

/// Compressed-sparse-row graph storage: u32-packed topology arrays plus
/// label buckets. Rows preserve edge insertion order (see
/// [`GraphStorage`]); edge ids are assigned in stream/insertion order,
/// exactly like [`Graph::add_edge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    node_labels: Vec<Label>,
    /// CSR row offsets into `nbr`, length `node_count + 1`.
    offsets: Vec<u32>,
    /// Interleaved `(neighbor, edge id)` targets, length `2 * edge_count`.
    nbr: Vec<(NodeId, EdgeId)>,
    /// Per-edge endpoints in insertion orientation.
    endpoints: Vec<(NodeId, NodeId)>,
    edge_labels: Vec<Label>,
    /// Distinct node labels, ascending.
    labels: Vec<Label>,
    /// Bucket `i` (for `labels[i]`) is `by_label[bucket_offsets[i]..bucket_offsets[i+1]]`.
    bucket_offsets: Vec<u32>,
    /// Node ids grouped by label, ascending within each bucket.
    by_label: Vec<NodeId>,
}

impl CsrGraph {
    /// Compiles a heap [`Graph`] into CSR form. Rows copy
    /// [`Graph::neighbors`] order exactly, so every ported kernel is
    /// bit-identical across the two backends.
    pub fn from_graph(g: &Graph) -> CsrGraph {
        let (offsets, nbr) = pack_adjacency(g);
        let node_labels: Vec<Label> = g.nodes().map(|v| g.node_label(v)).collect();
        let (labels, bucket_offsets, by_label) = label_buckets(&node_labels);
        CsrGraph {
            node_labels,
            offsets,
            nbr,
            endpoints: g.edges().map(|e| g.endpoints(e)).collect(),
            edge_labels: g.edges().map(|e| g.edge_label(e)).collect(),
            labels,
            bucket_offsets,
            by_label,
        }
    }

    /// Builds a `CsrGraph` from a deterministic edge stream **without**
    /// materializing an adjacency-list (or whole-edge-list)
    /// intermediate: `stream` is invoked twice and must yield the same
    /// edges in the same order both times (pass 1 sizes the rows, pass
    /// 2 fills them with one cursor per node).
    ///
    /// The stream contract mirrors [`Graph::add_edge`]'s accepted
    /// inputs: no self-loops, endpoints in range, no duplicate edges —
    /// violations panic, because silently dropping stream edges would
    /// desynchronize edge ids between backends.
    pub fn from_edge_stream(
        node_labels: Vec<Label>,
        mut stream: impl FnMut(&mut dyn FnMut(u32, u32, Label)),
    ) -> CsrGraph {
        let n = node_labels.len();
        // pass 1: degree count
        let mut degree = vec![0u32; n];
        let mut m = 0usize;
        stream(&mut |u, v, _l| {
            assert!(u != v, "self-loop in edge stream");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "endpoint out of range"
            );
            degree[u as usize] += 1;
            degree[v as usize] += 1;
            m += 1;
        });
        assert!(2 * m <= u32::MAX as usize, "graph too large for u32 CSR");
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        // pass 2: cursor fill, reproducing per-row insertion order
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut nbr = vec![(NodeId(0), EdgeId(0)); 2 * m];
        let mut endpoints = Vec::with_capacity(m);
        let mut edge_labels = Vec::with_capacity(m);
        let mut k = 0u32;
        stream(&mut |u, v, l| {
            let e = EdgeId(k);
            nbr[cursor[u as usize] as usize] = (NodeId(v), e);
            cursor[u as usize] += 1;
            nbr[cursor[v as usize] as usize] = (NodeId(u), e);
            cursor[v as usize] += 1;
            endpoints.push((NodeId(u), NodeId(v)));
            edge_labels.push(l);
            k += 1;
        });
        assert_eq!(k as usize, m, "edge stream changed between passes");
        let (labels, bucket_offsets, by_label) = label_buckets(&node_labels);
        CsrGraph {
            node_labels,
            offsets,
            nbr,
            endpoints,
            edge_labels,
            labels,
            bucket_offsets,
            by_label,
        }
    }

    /// Builds the CSR directly from a seeded synthetic-network spec —
    /// the streaming twin of [`crate::generate::synthetic_network`],
    /// field-for-field equal to
    /// `CsrGraph::from_graph(&synthetic_network(spec))` without ever
    /// materializing the heap graph.
    pub fn from_synthetic(spec: &crate::generate::SyntheticSpec) -> CsrGraph {
        let node_labels: Vec<Label> = (0..spec.nodes)
            .map(|v| spec.node_label(NodeId(v as u32)))
            .collect();
        CsrGraph::from_edge_stream(node_labels, |f| spec.stream_edges(f))
    }

    /// Reconstructs a heap [`Graph`] with identical ids, labels, and
    /// adjacency order. Inverse of [`CsrGraph::from_graph`].
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::with_capacity(self.node_count(), self.edge_count());
        for &l in &self.node_labels {
            g.add_node(l);
        }
        for (i, &(u, v)) in self.endpoints.iter().enumerate() {
            let added = g.add_edge(u, v, self.edge_labels[i]);
            debug_assert!(added.is_some(), "CSR image held an invalid edge");
        }
        g
    }

    /// Total bytes of the packed arrays (the `mem.*` gauge figure).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.node_labels.len() * size_of::<Label>()
            + self.offsets.len() * size_of::<u32>()
            + self.nbr.len() * size_of::<(NodeId, EdgeId)>()
            + self.endpoints.len() * size_of::<(NodeId, NodeId)>()
            + self.edge_labels.len() * size_of::<Label>()
            + self.labels.len() * size_of::<Label>()
            + self.bucket_offsets.len() * size_of::<u32>()
            + self.by_label.len() * size_of::<NodeId>()
    }

    /// A stable content digest: a splitmix64 fold over every array, in
    /// a fixed order. Equal digests ⇔ equal graphs (up to hash
    /// collision); used by the on-disk image as an integrity trailer
    /// and by the round-trip tests.
    pub fn digest(&self) -> u64 {
        let mut h = 0x5EED_C5A0_1234_ABCDu64;
        let mut fold = |x: u64| h = mix64(h ^ x);
        fold(self.node_labels.len() as u64);
        fold(self.endpoints.len() as u64);
        for &l in &self.node_labels {
            fold(l as u64);
        }
        for &o in &self.offsets {
            fold(o as u64);
        }
        for &(v, e) in &self.nbr {
            fold(((v.0 as u64) << 32) | e.0 as u64);
        }
        for &(u, v) in &self.endpoints {
            fold(((u.0 as u64) << 32) | v.0 as u64);
        }
        for &l in &self.edge_labels {
            fold(l as u64);
        }
        h
    }

    // ---- on-disk image ---------------------------------------------------

    /// Serializes the image into a byte buffer — the same `VQICSR01`
    /// layout [`CsrGraph::save_image`] writes to disk, for embedding in
    /// containers (the `vqi-serve` checkpoint format stores one encoded
    /// image per collection slot). For multi-gigabyte graphs prefer the
    /// streaming [`CsrGraph::save_image`], which never buffers the
    /// whole image.
    pub fn encode_image(&self) -> Vec<u8> {
        let total_u32 = self.node_labels.len()
            + self.offsets.len()
            + 2 * self.nbr.len()
            + 2 * self.endpoints.len()
            + self.edge_labels.len()
            + self.labels.len()
            + self.bucket_offsets.len()
            + self.by_label.len();
        let mut out = Vec::with_capacity(8 + 24 + 4 * total_u32 + 8);
        out.extend_from_slice(b"VQICSR01");
        out.extend_from_slice(&(self.node_labels.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.endpoints.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.labels.len() as u64).to_le_bytes());
        let mut push_u32s = |iter: &mut dyn Iterator<Item = u32>| {
            for x in iter {
                out.extend_from_slice(&x.to_le_bytes());
            }
        };
        push_u32s(&mut self.node_labels.iter().copied());
        push_u32s(&mut self.offsets.iter().copied());
        push_u32s(&mut self.nbr.iter().flat_map(|&(v, e)| [v.0, e.0]));
        push_u32s(&mut self.endpoints.iter().flat_map(|&(u, v)| [u.0, v.0]));
        push_u32s(&mut self.edge_labels.iter().copied());
        push_u32s(&mut self.labels.iter().copied());
        push_u32s(&mut self.bucket_offsets.iter().copied());
        push_u32s(&mut self.by_label.iter().map(|v| v.0));
        out.extend_from_slice(&self.digest().to_le_bytes());
        out
    }

    /// Writes the little-endian on-disk image. Layout: the 8-byte magic
    /// `VQICSR01`; `node_count`, `edge_count`, `label_class_count` as
    /// u64 LE; then the arrays as u32 LE in field order (`node_labels`,
    /// `offsets`, `nbr`, `endpoints`, `edge_labels`, `labels`,
    /// `bucket_offsets`, `by_label`); then the [`CsrGraph::digest`] as
    /// a u64 LE trailer. Every section sits at an offset computable
    /// from the header alone, so a future mmap-backed reader can map
    /// sections in place.
    pub fn save_image(&self, path: impl AsRef<Path>) -> Result<(), VqiError> {
        let path = path.as_ref();
        let file = std::fs::File::create(path).map_err(|e| VqiError::Parse {
            line: 0,
            reason: format!("cannot create {}: {e}", path.display()),
        })?;
        let mut w = std::io::BufWriter::new(file);
        let mut out = |bytes: &[u8]| -> Result<(), VqiError> {
            w.write_all(bytes).map_err(|e| VqiError::Parse {
                line: 0,
                reason: format!("cannot write {}: {e}", path.display()),
            })
        };
        out(b"VQICSR01")?;
        out(&(self.node_labels.len() as u64).to_le_bytes())?;
        out(&(self.endpoints.len() as u64).to_le_bytes())?;
        out(&(self.labels.len() as u64).to_le_bytes())?;
        // chunked u32 conversion: bounded buffer, no per-value write call
        let mut buf = Vec::with_capacity(4 * 16_384);
        macro_rules! write_u32s {
            ($iter:expr) => {
                for x in $iter {
                    buf.extend_from_slice(&x.to_le_bytes());
                    if buf.len() >= 4 * 16_384 {
                        out(&buf)?;
                        buf.clear();
                    }
                }
                if !buf.is_empty() {
                    out(&buf)?;
                    buf.clear();
                }
            };
        }
        write_u32s!(self.node_labels.iter().copied());
        write_u32s!(self.offsets.iter().copied());
        write_u32s!(self.nbr.iter().flat_map(|&(v, e)| [v.0, e.0]));
        write_u32s!(self.endpoints.iter().flat_map(|&(u, v)| [u.0, v.0]));
        write_u32s!(self.edge_labels.iter().copied());
        write_u32s!(self.labels.iter().copied());
        write_u32s!(self.bucket_offsets.iter().copied());
        write_u32s!(self.by_label.iter().map(|v| v.0));
        out(&self.digest().to_le_bytes())?;
        w.flush().map_err(|e| VqiError::Parse {
            line: 0,
            reason: format!("cannot flush {}: {e}", path.display()),
        })
    }

    /// Loads an image written by [`CsrGraph::save_image`]; the
    /// path-reading twin of [`CsrGraph::decode_image`].
    pub fn load_image(path: impl AsRef<Path>) -> Result<CsrGraph, VqiError> {
        let path = path.as_ref();
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| VqiError::Parse {
                line: 0,
                reason: format!("cannot read {}: {e}", path.display()),
            })?;
        CsrGraph::decode_image(&bytes)
    }

    /// Decodes a `VQICSR01` image from bytes, validating the magic,
    /// section sizes, CSR invariants, bucket invariants, and the digest
    /// trailer. Errors are reported in the style of [`crate::io`]:
    /// `VqiError::Parse` carrying the 1-based *section* number in
    /// `line` and a reason naming what was wrong.
    ///
    /// Adversarial-input contract: any truncation, extension, or bit
    /// flip of a valid image yields `Err(Parse)` — never a panic and
    /// never an allocation sized by a corrupt length field. The header
    /// counts are range-checked (`n`, `m` against u32 packing, `nl`
    /// against `n`) and the implied section lengths are balanced
    /// against the *actual* byte count with overflow-checked arithmetic
    /// before anything is sliced or allocated.
    pub fn decode_image(bytes: &[u8]) -> Result<CsrGraph, VqiError> {
        let err = |section: usize, reason: String| VqiError::Parse {
            line: section,
            reason,
        };
        // section 1: header
        if bytes.len() < 32 {
            return Err(err(1, "truncated header".into()));
        }
        if &bytes[..8] != b"VQICSR01" {
            return Err(err(1, "bad magic (not a VQICSR01 image)".into()));
        }
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        let n64 = u64_at(8);
        let m64 = u64_at(16);
        let nl64 = u64_at(24);
        if n64 > u32::MAX as u64 || m64.checked_mul(2).is_none_or(|x| x > u32::MAX as u64) {
            return Err(err(1, format!("counts out of u32 range: n={n64}, m={m64}")));
        }
        // a valid image has at most one label class per node (one for
        // the empty graph); a larger nl is corruption, and rejecting it
        // here keeps every length below overflow range
        if nl64 > n64.max(1) {
            return Err(err(
                1,
                format!("label class count {nl64} exceeds node count {n64}"),
            ));
        }
        let (n, m, nl) = (n64 as usize, m64 as usize, nl64 as usize);
        let body = &bytes[32..];
        let lens = [n, n + 1, 4 * m, 2 * m, m, nl, nl + 1, n];
        let total_u32: usize = lens.iter().sum();
        if body.len() != 4 * total_u32 + 8 {
            return Err(err(
                1,
                format!(
                    "image size mismatch: have {} body bytes, header implies {}",
                    body.len(),
                    4 * total_u32 + 8
                ),
            ));
        }
        let mut pos = 0usize;
        let mut take = |count: usize| -> Vec<u32> {
            let out = body[pos..pos + 4 * count]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            pos += 4 * count;
            out
        };
        let node_labels = take(n); // section 2
        let offsets = take(n + 1); // section 3
        let nbr_raw = take(4 * m); // section 4 (2m pairs)
        let endpoints_raw = take(2 * m); // section 5
        let edge_labels = take(m); // section 6
        let labels = take(nl); // section 7
        let bucket_offsets = take(nl + 1); // section 8
        let by_label_raw = take(n); // section 9
        let stored_digest = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8 bytes"));

        // section 3: CSR offsets must start at 0, be monotone, end at 2m
        if offsets.first() != Some(&0) {
            return Err(err(3, "offsets must start at 0".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(err(3, "offsets must be monotone".into()));
        }
        if offsets.last().copied() != Some(2 * m as u32) {
            return Err(err(
                3,
                format!(
                    "offsets must end at 2m = {}, found {:?}",
                    2 * m,
                    offsets.last()
                ),
            ));
        }
        // section 4: neighbor/edge ids in range
        let nbr: Vec<(NodeId, EdgeId)> = nbr_raw
            .chunks_exact(2)
            .map(|c| (NodeId(c[0]), EdgeId(c[1])))
            .collect();
        for &(v, e) in &nbr {
            if v.index() >= n || e.index() >= m {
                return Err(err(4, format!("target ({v}, {e}) out of range")));
            }
        }
        // section 5: endpoints in range, no self-loops
        let endpoints: Vec<(NodeId, NodeId)> = endpoints_raw
            .chunks_exact(2)
            .map(|c| (NodeId(c[0]), NodeId(c[1])))
            .collect();
        for &(u, v) in &endpoints {
            if u.index() >= n || v.index() >= n || u == v {
                return Err(err(5, format!("bad endpoints ({u}, {v})")));
            }
        }
        // section 7: labels strictly ascending
        if labels.windows(2).any(|w| w[0] >= w[1]) {
            return Err(err(7, "label classes must be strictly ascending".into()));
        }
        // section 8: bucket offsets monotone, ending at n
        if bucket_offsets.windows(2).any(|w| w[0] > w[1])
            || bucket_offsets.last().copied() != Some(n as u32)
        {
            return Err(err(
                8,
                "bucket offsets must be monotone and end at n".into(),
            ));
        }
        let by_label: Vec<NodeId> = by_label_raw.into_iter().map(NodeId).collect();
        for &v in &by_label {
            if v.index() >= n {
                return Err(err(9, format!("bucket node {v} out of range")));
            }
        }
        let g = CsrGraph {
            node_labels,
            offsets,
            nbr,
            endpoints,
            edge_labels,
            labels,
            bucket_offsets,
            by_label,
        };
        // section 10: digest trailer (covers node labels, offsets,
        // nbr, endpoints, and edge labels)
        if g.digest() != stored_digest {
            return Err(err(10, "digest mismatch (image corrupted)".into()));
        }
        // sections 7–9 are derived data the digest does not cover;
        // recomputing them from the (now digest-verified) node labels
        // catches any bucket corruption the structural checks let
        // through
        let (want_labels, want_offsets, want_by_label) = label_buckets(&g.node_labels);
        if g.labels != want_labels
            || g.bucket_offsets != want_offsets
            || g.by_label != want_by_label
        {
            return Err(err(7, "label buckets disagree with node labels".into()));
        }
        Ok(g)
    }
}

impl GraphStorage for CsrGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.node_labels.len()
    }
    #[inline]
    fn edge_count(&self) -> usize {
        self.endpoints.len()
    }
    #[inline]
    fn node_label(&self, v: NodeId) -> Label {
        self.node_labels[v.index()]
    }
    #[inline]
    fn edge_label(&self, e: EdgeId) -> Label {
        self.edge_labels[e.index()]
    }
    #[inline]
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }
    #[inline]
    fn neighbor_slice(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.nbr[lo..hi]
    }
    fn label_classes(&self) -> Vec<Label> {
        self.labels.clone()
    }
    fn nodes_with_label(&self, l: Label) -> Vec<NodeId> {
        match self.labels.binary_search(&l) {
            Ok(i) => {
                let lo = self.bucket_offsets[i] as usize;
                let hi = self.bucket_offsets[i + 1] as usize;
                self.by_label[lo..hi].to_vec()
            }
            Err(_) => Vec::new(),
        }
    }
}

/// A neighbor view with **id-sorted** rows — what the graphlet census
/// binary-searches for edge existence. [`SortedAdjacency`] (per-row
/// `Vec`s, from a heap [`Graph`]) and [`SortedCsr`] (one packed array,
/// from any [`GraphStorage`]) both implement it; the census is generic
/// over which.
pub trait NeighborView: Sync {
    /// The neighbors of `v` as `(neighbor, edge id)` pairs sorted by
    /// neighbor id.
    fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)];

    /// The edge between `u` and `v`, if any, by binary search over the
    /// smaller row.
    #[inline]
    fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.neighbors(u).len() <= self.neighbors(v).len() {
            (u, v)
        } else {
            (v, u)
        };
        let row = self.neighbors(a);
        row.binary_search_by_key(&b, |&(q, _)| q)
            .ok()
            .map(|i| row[i].1)
    }

    /// True if an edge `u -- v` exists.
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }
}

impl NeighborView for SortedAdjacency {
    #[inline]
    fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        SortedAdjacency::neighbors(self, v)
    }
    #[inline]
    fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        SortedAdjacency::edge_between(self, u, v)
    }
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        SortedAdjacency::has_edge(self, u, v)
    }
}

/// The packed equivalent of [`SortedAdjacency`]: one CSR array with
/// every row sorted by neighbor id, buildable from any
/// [`GraphStorage`] without per-node allocations.
#[derive(Debug, Clone)]
pub struct SortedCsr {
    offsets: Vec<u32>,
    nbr: Vec<(NodeId, EdgeId)>,
}

impl SortedCsr {
    /// Freezes a sorted CSR view of `g`.
    pub fn from_storage<S: GraphStorage + ?Sized>(g: &S) -> SortedCsr {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut nbr = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0u32);
        for v in 0..n {
            nbr.extend_from_slice(g.neighbor_slice(NodeId(v as u32)));
            offsets.push(nbr.len() as u32);
        }
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            nbr[lo..hi].sort_unstable_by_key(|&(u, _)| u);
        }
        SortedCsr { offsets, nbr }
    }
}

impl NeighborView for SortedCsr {
    #[inline]
    fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.nbr[lo..hi]
    }
}

/// The storage-generic twin of [`Graph::induced_subgraph`]: identical
/// node renumbering, identical edge insertion order (mapping order,
/// `n < m` filter over insertion-ordered rows), so the materialized
/// subgraph is bit-identical whichever backend `g` is.
pub fn induced_subgraph_of<S: GraphStorage + ?Sized>(
    g: &S,
    nodes: &[NodeId],
) -> (Graph, Vec<NodeId>) {
    let (sub, mapping, _) = induced_subgraph_with_edges(g, nodes);
    (sub, mapping)
}

/// [`induced_subgraph_of`] that additionally returns, for each subgraph
/// edge id `i`, the original edge id it came from (`edge_map[i]`) —
/// what sharded TATTOO needs to translate per-shard coverage back into
/// global edge bits.
pub fn induced_subgraph_with_edges<S: GraphStorage + ?Sized>(
    g: &S,
    nodes: &[NodeId],
) -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
    let mut index = vec![u32::MAX; g.node_count()];
    let mut mapping = Vec::with_capacity(nodes.len());
    let mut sub = Graph::with_capacity(nodes.len(), nodes.len());
    for &n in nodes {
        if index[n.index()] == u32::MAX {
            index[n.index()] = sub.add_node(g.node_label(n)).0;
            mapping.push(n);
        }
    }
    let mut edge_map = Vec::new();
    for &n in &mapping {
        for &(m, e) in g.neighbor_slice(n) {
            if index[m.index()] != u32::MAX && n < m {
                let added = sub.add_edge(
                    NodeId(index[n.index()]),
                    NodeId(index[m.index()]),
                    g.edge_label(e),
                );
                if added.is_some() {
                    edge_map.push(e);
                }
            }
        }
    }
    (sub, mapping, edge_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{assign_labels, erdos_renyi, SyntheticSpec};
    use crate::graphlet::{count_graphlets_par, count_graphlets_storage};
    use crate::index::Fingerprint;
    use crate::truss::trussness;
    use crate::{par, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn labeled_random(seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = erdos_renyi(60, 0.12, 0, &mut rng);
        assign_labels(&mut g, 3, 2, &mut rng);
        g
    }

    #[test]
    fn storage_accessors_match_graph_exactly() {
        for seed in 0..4u64 {
            let g = labeled_random(seed);
            let c = CsrGraph::from_graph(&g);
            assert_eq!(GraphStorage::node_count(&c), g.node_count());
            assert_eq!(GraphStorage::edge_count(&c), g.edge_count());
            for v in g.nodes() {
                assert_eq!(GraphStorage::node_label(&c, v), g.node_label(v));
                assert_eq!(GraphStorage::degree(&c, v), g.degree(v));
                assert_eq!(
                    GraphStorage::neighbor_slice(&c, v),
                    g.neighbor_slice(v),
                    "row order must be insertion order"
                );
            }
            for e in g.edges() {
                assert_eq!(GraphStorage::endpoints(&c, e), g.endpoints(e));
                assert_eq!(GraphStorage::edge_label(&c, e), g.edge_label(e));
            }
            for l in GraphStorage::label_classes(&g) {
                assert_eq!(
                    GraphStorage::nodes_with_label(&c, l),
                    GraphStorage::nodes_with_label(&g, l)
                );
            }
            assert_eq!(
                GraphStorage::label_classes(&c),
                GraphStorage::label_classes(&g)
            );
        }
    }

    #[test]
    fn storage_trussness_and_census_are_bit_identical_across_backends() {
        // the 12-seed property suite of the storage-equivalence
        // contract: heap Graph vs CsrGraph at thread caps 1, 2, and 4
        let _guard = crate::kernel_test_lock();
        for seed in 0..12u64 {
            let g = labeled_random(seed);
            let c = CsrGraph::from_graph(&g);
            let mut across: Option<(Vec<u32>, [u64; 8])> = None;
            for cap in [1usize, 2, 4] {
                par::set_thread_cap(cap);
                let t_heap = trussness(&g);
                let t_csr = trussness(&c);
                let c_heap = count_graphlets_par(&g).counts.map(f64::to_bits);
                let c_csr = count_graphlets_storage(&c).counts.map(f64::to_bits);
                par::set_thread_cap(0);
                assert_eq!(t_heap, t_csr, "seed {seed} cap {cap}: trussness diverged");
                assert_eq!(c_heap, c_csr, "seed {seed} cap {cap}: census diverged");
                match &across {
                    None => across = Some((t_csr, c_csr)),
                    Some((t0, c0)) => {
                        assert_eq!(t0, &t_csr, "seed {seed} cap {cap} changed trussness");
                        assert_eq!(c0, &c_csr, "seed {seed} cap {cap} changed census");
                    }
                }
            }
        }
    }

    #[test]
    fn storage_induced_subgraph_matches_graph_induced_subgraph() {
        for seed in 0..6u64 {
            let g = labeled_random(seed);
            let c = CsrGraph::from_graph(&g);
            let nodes: Vec<NodeId> = (0..30).map(NodeId).collect();
            let (s1, m1) = g.induced_subgraph(&nodes);
            let (s2, m2) = induced_subgraph_of(&c, &nodes);
            assert_eq!(m1, m2);
            assert_eq!(Fingerprint::of(&s1).digest(), Fingerprint::of(&s2).digest());
            assert_eq!(s1.edge_count(), s2.edge_count());
            for e in s1.edges() {
                assert_eq!(s1.endpoints(e), s2.endpoints(e));
                assert_eq!(s1.edge_label(e), s2.edge_label(e));
            }
            // the edge map points every subgraph edge at its original
            let (s3, _, emap) = induced_subgraph_with_edges(&c, &nodes);
            assert_eq!(emap.len(), s3.edge_count());
            for (i, &orig) in emap.iter().enumerate() {
                let (su, sv) = s3.endpoints(EdgeId(i as u32));
                let (ou, ov) = g.endpoints(orig);
                let mapped = (m2[su.index()], m2[sv.index()]);
                assert!(mapped == (ou, ov) || mapped == (ov, ou));
                assert_eq!(s3.edge_label(EdgeId(i as u32)), g.edge_label(orig));
            }
        }
    }

    #[test]
    fn storage_roundtrips_through_graph() {
        for seed in 0..4u64 {
            let g = labeled_random(seed);
            let c = CsrGraph::from_graph(&g);
            let back = c.to_graph();
            assert_eq!(
                Fingerprint::of(&g).digest(),
                Fingerprint::of(&back).digest()
            );
            assert_eq!(CsrGraph::from_graph(&back), c);
        }
    }

    #[test]
    fn storage_streamed_synthetic_matches_heap_twin() {
        let spec = SyntheticSpec {
            nodes: 400,
            uniform_edges: 500,
            cliques: 6,
            node_labels: 3,
            edge_labels: 2,
            seed: 0xA11CE,
        };
        let heap = crate::generate::synthetic_network(&spec);
        assert_eq!(heap.edge_count(), spec.edge_count());
        let streamed = CsrGraph::from_synthetic(&spec);
        assert_eq!(streamed, CsrGraph::from_graph(&heap));
    }

    #[test]
    fn storage_sorted_csr_agrees_with_sorted_adjacency() {
        for seed in 0..4u64 {
            let g = labeled_random(seed);
            let c = CsrGraph::from_graph(&g);
            let sa = g.sorted_adjacency();
            let sc = SortedCsr::from_storage(&c);
            for v in g.nodes() {
                assert_eq!(NeighborView::neighbors(&sa, v), sc.neighbors(v));
                for u in g.nodes() {
                    assert_eq!(NeighborView::edge_between(&sa, u, v), sc.edge_between(u, v));
                }
            }
        }
    }

    #[test]
    fn storage_image_roundtrip_preserves_digest() {
        let dir = std::env::temp_dir().join(format!("vqi_csr_image_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("roundtrip.vqicsr");
        let g = labeled_random(7);
        let c = CsrGraph::from_graph(&g);
        c.save_image(&path).expect("save");
        let loaded = CsrGraph::load_image(&path).expect("load");
        assert_eq!(loaded, c);
        assert_eq!(loaded.digest(), c.digest());
        // and the reconstructed heap graph fingerprints identically
        assert_eq!(
            Fingerprint::of(&loaded.to_graph()).digest(),
            Fingerprint::of(&g).digest()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storage_corrupt_images_report_section_and_reason() {
        let dir = std::env::temp_dir().join(format!("vqi_csr_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let g = labeled_random(9);
        let c = CsrGraph::from_graph(&g);
        let path = dir.join("image.vqicsr");
        c.save_image(&path).expect("save");
        let valid = std::fs::read(&path).expect("read back");

        // (mutation, expected section, expected reason fragment) — the
        // io.rs corrupt-fixture table, for binary images
        let cases: Vec<(&str, Box<dyn Fn(&mut Vec<u8>)>, usize, &str)> = vec![
            (
                "truncated header",
                Box::new(|b: &mut Vec<u8>| b.truncate(10)),
                1,
                "truncated header",
            ),
            (
                "bad magic",
                Box::new(|b: &mut Vec<u8>| b[0] = b'X'),
                1,
                "bad magic",
            ),
            (
                "truncated body",
                Box::new(|b: &mut Vec<u8>| {
                    let keep = b.len() - 9;
                    b.truncate(keep);
                }),
                1,
                "size mismatch",
            ),
            (
                "node count lies",
                Box::new(|b: &mut Vec<u8>| b[8] = b[8].wrapping_add(1)),
                1,
                "size mismatch",
            ),
            (
                "non-monotone offsets",
                Box::new(|b: &mut Vec<u8>| {
                    // first offset entry (always 0) bumped above its successor
                    let o = 32 + 4 * 60;
                    b[o..o + 4].copy_from_slice(&u32::MAX.to_le_bytes());
                }),
                3,
                "offsets",
            ),
            (
                "flipped payload bit",
                Box::new(|b: &mut Vec<u8>| {
                    // a node label changes: structurally valid, digest disagrees
                    let o = 32;
                    b[o] ^= 1;
                }),
                10,
                "digest mismatch",
            ),
        ];
        for (name, mutate, section, fragment) in cases {
            let mut bytes = valid.clone();
            mutate(&mut bytes);
            let p = dir.join("corrupt.vqicsr");
            std::fs::write(&p, &bytes).expect("write corrupt");
            match CsrGraph::load_image(&p) {
                Err(VqiError::Parse { line, reason }) => {
                    assert_eq!(line, section, "{name}: wrong section ({reason})");
                    assert!(
                        reason.contains(fragment),
                        "{name}: reason {reason:?} missing {fragment:?}"
                    );
                }
                other => panic!("{name}: expected Parse error, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storage_image_truncation_and_bitflip_sweeps_yield_parse_errors() {
        // the adversarial-input contract of decode_image: every
        // truncation (swept at each section boundary and nearby bytes)
        // and every single-bit flip must come back Err(Parse) — no
        // panic, no allocation sized by a corrupt length field
        let g = labeled_random(11);
        let c = CsrGraph::from_graph(&g);
        let valid = c.encode_image();
        assert_eq!(CsrGraph::decode_image(&valid).expect("decode"), c);

        let n = GraphStorage::node_count(&c);
        let m = GraphStorage::edge_count(&c);
        let nl = GraphStorage::label_classes(&c).len();
        // section start offsets implied by the header
        let mut boundaries = vec![0usize, 8, 16, 24, 32];
        let mut off = 32usize;
        for len in [n, n + 1, 4 * m, 2 * m, m, nl, nl + 1, n] {
            off += 4 * len;
            boundaries.push(off);
        }
        boundaries.push(valid.len()); // digest trailer end
        for &b in &boundaries {
            for cut in [b.saturating_sub(3), b.saturating_sub(1), b, b + 1, b + 5] {
                if cut >= valid.len() {
                    continue;
                }
                match CsrGraph::decode_image(&valid[..cut]) {
                    Err(VqiError::Parse { .. }) => {}
                    other => panic!("truncation at {cut}: expected Parse, got {other:?}"),
                }
            }
        }
        // bit-flip sweep: every byte, one flipped bit (rotating which)
        let mut flipped = valid.clone();
        for i in 0..valid.len() {
            flipped[i] ^= 1 << (i % 8);
            match CsrGraph::decode_image(&flipped) {
                Err(VqiError::Parse { .. }) => {}
                other => panic!("bit flip at byte {i}: expected Parse, got {other:?}"),
            }
            flipped[i] = valid[i];
        }
        // a header claiming absurd counts errors before any allocation
        for (word, value) in [(8, u64::MAX), (16, u64::MAX / 2), (24, u64::MAX)] {
            let mut huge = valid.clone();
            huge[word..word + 8].copy_from_slice(&value.to_le_bytes());
            match CsrGraph::decode_image(&huge) {
                Err(VqiError::Parse { line: 1, .. }) => {}
                other => panic!("huge count at {word}: expected Parse, got {other:?}"),
            }
        }
        // trailing garbage after the digest is a size mismatch
        let mut extended = valid.clone();
        extended.extend_from_slice(&[0u8; 7]);
        assert!(matches!(
            CsrGraph::decode_image(&extended),
            Err(VqiError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn storage_encode_image_matches_save_image_bytes() {
        let dir = std::env::temp_dir().join(format!("vqi_csr_encode_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("twin.vqicsr");
        let c = CsrGraph::from_graph(&labeled_random(3));
        c.save_image(&path).expect("save");
        assert_eq!(std::fs::read(&path).expect("read"), c.encode_image());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storage_empty_and_tiny_graphs_are_handled() {
        let empty = Graph::new();
        let c = CsrGraph::from_graph(&empty);
        assert_eq!(GraphStorage::node_count(&c), 0);
        assert_eq!(GraphStorage::edge_count(&c), 0);
        assert_eq!(trussness(&c), Vec::<u32>::new());

        let mut one = Graph::new();
        one.add_node(5);
        let c1 = CsrGraph::from_graph(&one);
        assert_eq!(GraphStorage::neighbor_slice(&c1, NodeId(0)), &[]);
        assert_eq!(GraphStorage::nodes_with_label(&c1, 5), vec![NodeId(0)]);
        assert_eq!(GraphStorage::nodes_with_label(&c1, 4), Vec::<NodeId>::new());

        // images of degenerate graphs round-trip too (checkpoint slots
        // can hold empty graphs)
        for tiny in [&c, &c1] {
            let back = CsrGraph::decode_image(&tiny.encode_image()).expect("decode tiny");
            assert_eq!(&back, tiny);
        }
    }
}
