//! Deterministic fork-join parallelism for the substrate kernels.
//!
//! Every helper here guarantees a **thread-count-invariant** result: work
//! is split into contiguous index ranges, each worker produces the
//! results for its own range, and the partial outputs are concatenated
//! (or folded by the caller) in range order. Changing the number of
//! threads changes only *where* each item is computed, never the order
//! in which results are combined, so a kernel built on these helpers
//! returns bit-identical output at 1 thread and at N.
//!
//! The thread count is resolved, in priority order, from:
//!
//! 1. the global sequential toggle ([`set_parallel_enabled`]) — the
//!    escape hatch that keeps single-threaded reference paths testable,
//!    mirroring the MCS bound-and-skip switch;
//! 2. the in-process cap ([`set_thread_cap`]) — used by benchmarks and
//!    tests that compare thread counts without re-launching the process;
//! 3. the `VQI_NUM_THREADS` / `RAYON_NUM_THREADS` environment variables
//!    (read once), so CI can pin the count per run;
//! 4. [`std::thread::available_parallelism`].
//!
//! Workers are spawned per call with [`std::thread::scope`] — closures
//! may borrow from the caller's stack, no worker pool is kept alive, and
//! a call made from inside another `par` worker runs sequentially
//! instead of oversubscribing (the result is identical either way).

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Global parallelism toggle; `true` by default.
static PARALLEL_ENABLED: AtomicBool = AtomicBool::new(true);

/// In-process thread cap; 0 means "no cap".
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker closures so nested calls degrade to sequential.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the parallel paths are enabled (the default). When disabled,
/// every helper runs on the calling thread — the sequential reference
/// behavior, bit-identical to the parallel one.
pub fn parallel_enabled() -> bool {
    PARALLEL_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables the parallel paths globally.
pub fn set_parallel_enabled(on: bool) {
    PARALLEL_ENABLED.store(on, Ordering::Relaxed);
}

/// Caps the number of worker threads in-process (benchmarks comparing
/// thread counts use this instead of re-launching with a different
/// environment). `0` removes the cap.
pub fn set_thread_cap(cap: usize) {
    THREAD_CAP.store(cap, Ordering::Relaxed);
}

/// The current in-process thread cap (`0` = no cap).
pub fn thread_cap() -> usize {
    THREAD_CAP.load(Ordering::Relaxed)
}

/// Thread count requested via environment, read once per process.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        for key in ["VQI_NUM_THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(v) = std::env::var(key) {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n > 0 {
                        return Some(n);
                    }
                }
            }
        }
        None
    })
}

/// The number of worker threads a helper call would use right now.
pub fn num_threads() -> usize {
    if !parallel_enabled() || IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    let cap = thread_cap();
    if cap > 0 {
        return cap;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `0..n` into at most [`num_threads`] contiguous ranges, applies
/// `f` to each range on its own worker, and returns the per-range
/// results **in range order**. The caller owns the merge, which is where
/// the determinism contract lives: fold the returned partials left to
/// right and the result cannot depend on the thread count.
///
/// Panic isolation: a chunk whose worker panics does not poison the
/// whole call. The failed range — and only that range — is retried
/// once, sequentially, on the calling thread (`fault.retried` /
/// `kernel.par.chunk_panics` count it); because `f` is pure over its
/// range, the retried partial is identical to what the worker would
/// have produced, so the result stays bit-identical at any thread
/// count. Only a second, back-to-back failure of the same range
/// propagates — pipeline stages catch it via `run_stage`.
pub fn map_chunks<A, F>(n: usize, f: F) -> Vec<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|lo| lo..(lo + chunk).min(n))
        .collect();
    vqi_observe::incr("kernel.par.jobs", 1);
    vqi_observe::incr("kernel.par.workers", ranges.len() as u64);
    // capture the forking thread's trace context so spans opened inside
    // worker closures parent under the span that forked them; the
    // default (all-zero) context makes ctx_scope a no-op
    let ctx = vqi_observe::current_ctx();
    let mut parts: Vec<A> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let r = r.clone();
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let _trace = vqi_observe::ctx_scope(ctx);
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(r)))
                })
            })
            .collect();
        for (h, r) in handles.into_iter().zip(ranges.iter()) {
            // a panic between spawn and catch_unwind is impossible, so
            // join() itself only fails if the closure result was Err
            let outcome = h.join().unwrap_or_else(Err);
            match outcome {
                Ok(part) => parts.push(part),
                Err(_payload) => {
                    vqi_observe::incr("kernel.par.chunk_panics", 1);
                    vqi_observe::incr("fault.retried", 1);
                    // retry just the failed range on this thread, in the
                    // same nested-call context a worker would have had
                    let prev = IN_WORKER.with(|w| w.replace(true));
                    let retried =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(r.clone())));
                    IN_WORKER.with(|w| w.set(prev));
                    match retried {
                        Ok(part) => parts.push(part),
                        Err(e) => std::panic::resume_unwind(e),
                    }
                }
            }
        }
    });
    parts
}

/// Order-stable parallel map over an index range: `out[i] == f(i)`
/// exactly as the sequential loop would produce, for any thread count.
pub fn map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    map_chunks(n, |r| r.map(&f).collect::<Vec<U>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Order-stable parallel map over a slice: `out[i] == f(&items[i])`.
pub fn map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_range(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `body` under an explicit thread cap, restoring the previous
    /// cap afterwards. Serialized via the kernel test lock because the
    /// cap is crate-global.
    fn with_cap<T>(cap: usize, body: impl FnOnce() -> T) -> T {
        let prev = thread_cap();
        set_thread_cap(cap);
        let out = body();
        set_thread_cap(prev);
        out
    }

    #[test]
    fn map_is_identical_across_thread_counts() {
        let _guard = crate::kernel_test_lock();
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for cap in [1, 2, 3, 4, 7, 64] {
            let got = with_cap(cap, || map(&items, |x| x * x + 1));
            assert_eq!(got, expect, "cap {cap}");
        }
    }

    #[test]
    fn map_range_handles_edges() {
        let _guard = crate::kernel_test_lock();
        for cap in [1, 4] {
            with_cap(cap, || {
                assert!(map_range(0, |i| i).is_empty());
                assert_eq!(map_range(1, |i| i), vec![0]);
                assert_eq!(map_range(3, |i| i * 2), vec![0, 2, 4]);
            });
        }
    }

    #[test]
    fn map_chunks_partitions_in_order() {
        let _guard = crate::kernel_test_lock();
        let parts = with_cap(4, || map_chunks(10, |r| r.collect::<Vec<usize>>()));
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn sequential_toggle_forces_one_thread() {
        let _guard = crate::kernel_test_lock();
        set_parallel_enabled(false);
        assert_eq!(num_threads(), 1);
        let got = map_range(100, |i| i + 1);
        set_parallel_enabled(true);
        assert_eq!(got, (1..=100).collect::<Vec<usize>>());
    }

    #[test]
    fn injected_chunk_panic_is_isolated_and_retried() {
        let _guard = crate::kernel_test_lock();
        vqi_runtime::fault::set_plan(vqi_runtime::fault::FaultPlan {
            seed: 11,
            panic_rate: 1.0,
            ..Default::default()
        });
        // every chunk's first attempt panics; the fired-once registry
        // lets each sequential retry pass, so the call still returns
        // the exact sequential result
        let got = with_cap(4, || {
            map_chunks(100, |r| {
                vqi_runtime::fault::maybe_panic("par.test_chunk", r.start as u64);
                r.map(|i| i * 3).sum::<usize>()
            })
        });
        vqi_runtime::fault::reset();
        let total: usize = got.into_iter().sum();
        assert_eq!(total, (0..100).map(|i| i * 3).sum::<usize>());
    }

    #[test]
    fn repeated_chunk_panic_propagates() {
        let _guard = crate::kernel_test_lock();
        // catch inside with_cap so the cap is restored even on unwind
        let r = with_cap(2, || {
            std::panic::catch_unwind(|| {
                map_chunks(10, |r| {
                    if r.contains(&7) {
                        panic!("permanent failure");
                    }
                    r.len()
                })
            })
        });
        assert!(r.is_err(), "a twice-failing chunk must propagate");
    }

    #[test]
    fn nested_calls_run_sequentially_and_agree() {
        let _guard = crate::kernel_test_lock();
        let expect: Vec<Vec<usize>> = (0..6)
            .map(|i| (0..4).map(|j| i * 4 + j).collect())
            .collect();
        let got = with_cap(3, || map_range(6, |i| map_range(4, |j| i * 4 + j)));
        assert_eq!(got, expect);
    }
}
