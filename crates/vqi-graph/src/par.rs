//! Deterministic fork-join parallelism for the substrate kernels.
//!
//! Every helper here guarantees a **thread-count-invariant** result: work
//! is split into contiguous index ranges, each worker produces the
//! results for its own range, and the partial outputs are concatenated
//! (or folded by the caller) in range order. Changing the number of
//! threads changes only *where* each item is computed, never the order
//! in which results are combined, so a kernel built on these helpers
//! returns bit-identical output at 1 thread and at N.
//!
//! The thread count is resolved, in priority order, from:
//!
//! 1. the global sequential toggle ([`set_parallel_enabled`]) — the
//!    escape hatch that keeps single-threaded reference paths testable,
//!    mirroring the MCS bound-and-skip switch;
//! 2. the in-process cap ([`set_thread_cap`]) — used by benchmarks and
//!    tests that compare thread counts without re-launching the process;
//! 3. the `VQI_NUM_THREADS` / `RAYON_NUM_THREADS` environment variables
//!    (read once), so CI can pin the count per run;
//! 4. [`std::thread::available_parallelism`].
//!
//! Workers are spawned per call with [`std::thread::scope`] — closures
//! may borrow from the caller's stack, no worker pool is kept alive, and
//! a call made from inside another `par` worker runs sequentially
//! instead of oversubscribing (the result is identical either way).

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use vqi_runtime::{error::panic_reason, fault, VqiError};

/// Global parallelism toggle; `true` by default.
static PARALLEL_ENABLED: AtomicBool = AtomicBool::new(true);

/// In-process thread cap; 0 means "no cap".
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker closures so nested calls degrade to sequential.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the parallel paths are enabled (the default). When disabled,
/// every helper runs on the calling thread — the sequential reference
/// behavior, bit-identical to the parallel one.
pub fn parallel_enabled() -> bool {
    PARALLEL_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables the parallel paths globally.
pub fn set_parallel_enabled(on: bool) {
    PARALLEL_ENABLED.store(on, Ordering::Relaxed);
}

/// Caps the number of worker threads in-process (benchmarks comparing
/// thread counts use this instead of re-launching with a different
/// environment). `0` removes the cap.
pub fn set_thread_cap(cap: usize) {
    THREAD_CAP.store(cap, Ordering::Relaxed);
}

/// The current in-process thread cap (`0` = no cap).
pub fn thread_cap() -> usize {
    THREAD_CAP.load(Ordering::Relaxed)
}

/// Thread count requested via environment, read once per process.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        for key in ["VQI_NUM_THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(v) = std::env::var(key) {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n > 0 {
                        return Some(n);
                    }
                }
            }
        }
        None
    })
}

/// The number of worker threads a helper call would use right now.
pub fn num_threads() -> usize {
    if !parallel_enabled() || IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    let cap = thread_cap();
    if cap > 0 {
        return cap;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `0..n` into at most [`num_threads`] contiguous ranges, applies
/// `f` to each range on its own worker, and returns the per-range
/// results **in range order**. The caller owns the merge, which is where
/// the determinism contract lives: fold the returned partials left to
/// right and the result cannot depend on the thread count.
///
/// Panic isolation: a chunk whose worker panics does not poison the
/// whole call. The failed range — and only that range — is retried
/// once, sequentially, on the calling thread (`fault.retried` /
/// `kernel.par.chunk_panics` count it); because `f` is pure over its
/// range, the retried partial is identical to what the worker would
/// have produced, so the result stays bit-identical at any thread
/// count. Only a second, back-to-back failure of the same range
/// propagates — pipeline stages catch it via `run_stage`.
pub fn map_chunks<A, F>(n: usize, f: F) -> Vec<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|lo| lo..(lo + chunk).min(n))
        .collect();
    vqi_observe::incr("kernel.par.jobs", 1);
    vqi_observe::incr("kernel.par.workers", ranges.len() as u64);
    // capture the forking thread's trace context so spans opened inside
    // worker closures parent under the span that forked them; the
    // default (all-zero) context makes ctx_scope a no-op
    let ctx = vqi_observe::current_ctx();
    let mut parts: Vec<A> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let r = r.clone();
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let _trace = vqi_observe::ctx_scope(ctx);
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(r)))
                })
            })
            .collect();
        for (h, r) in handles.into_iter().zip(ranges.iter()) {
            // a panic between spawn and catch_unwind is impossible, so
            // join() itself only fails if the closure result was Err
            let outcome = h.join().unwrap_or_else(Err);
            match outcome {
                Ok(part) => parts.push(part),
                Err(_payload) => {
                    vqi_observe::incr("kernel.par.chunk_panics", 1);
                    vqi_observe::incr("fault.retried", 1);
                    // retry just the failed range on this thread, in the
                    // same nested-call context a worker would have had
                    let prev = IN_WORKER.with(|w| w.replace(true));
                    let retried =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(r.clone())));
                    IN_WORKER.with(|w| w.set(prev));
                    match retried {
                        Ok(part) => parts.push(part),
                        Err(e) => std::panic::resume_unwind(e),
                    }
                }
            }
        }
    });
    parts
}

/// Order-stable parallel map over an index range: `out[i] == f(i)`
/// exactly as the sequential loop would produce, for any thread count.
pub fn map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    map_chunks(n, |r| r.map(&f).collect::<Vec<U>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Order-stable parallel map over a slice: `out[i] == f(&items[i])`.
pub fn map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_range(items.len(), |i| f(&items[i]))
}

// ---------------------------------------------------------------------------
// Shard execution
// ---------------------------------------------------------------------------

/// A reusable shard/map/retry harness: deterministic shard order
/// (shards run via [`map_range`], results in shard index order),
/// per-shard panic isolation with bounded retry and exponential
/// backoff, speculative re-execution of injected stragglers, and
/// in-flight gauges — the machinery partitioned TATTOO grew in PR 5,
/// extracted so any sharded kernel can reuse it.
///
/// Every metric, span, and fault-injection site derives from `prefix`:
///
/// | name | kind |
/// |---|---|
/// | `{prefix}.shards` | counter: shards submitted per [`Self::run_shards`] |
/// | `{prefix}.in_flight` | gauge: shards currently executing |
/// | `{prefix}.retries` | counter: retried executions (any stage) |
/// | `{prefix}.stragglers` | counter: speculative re-executions |
/// | `{prefix}.shard` | span per execution; also the `maybe_panic` site |
/// | `{prefix}.straggler` | the `maybe_timeout` site |
///
/// Shard closures must be **pure** in their shard index: a retried or
/// speculatively re-executed shard then returns the identical value, so
/// fault handling never perturbs the result — the same argument that
/// makes [`map_chunks`]'s chunk retry invisible.
#[derive(Debug, Clone, Copy)]
pub struct ShardExecutor {
    /// Metric-name prefix (e.g. `"tattoo.map"`); see the table above.
    pub prefix: &'static str,
    /// How many times a panicked execution is retried before the error
    /// is returned. A transient failure therefore costs one retry, not
    /// the result.
    pub retries: u32,
    /// Base backoff before a retry; attempt `n` waits `2^(n−1)` times
    /// this. Zero disables the wait (retries stay immediate).
    pub backoff_ms: u64,
}

impl ShardExecutor {
    /// An executor publishing under `prefix` with the given retry policy.
    pub fn new(prefix: &'static str, retries: u32, backoff_ms: u64) -> ShardExecutor {
        ShardExecutor {
            prefix,
            retries,
            backoff_ms,
        }
    }

    /// Runs `f` under panic isolation, re-executing it up to
    /// `self.retries` times with exponential backoff; exhaustion
    /// returns [`VqiError::Panic`] naming `stage`. The closure must be
    /// pure, so a retried execution returns the identical value and
    /// determinism is preserved at any thread count. Retries count
    /// against `{prefix}.retries` whatever the stage, so one counter
    /// covers a whole sharded pipeline.
    pub fn retrying<T>(&self, stage: &str, f: impl Fn() -> T) -> Result<T, VqiError> {
        let mut attempt = 0u32;
        loop {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f)) {
                Ok(v) => return Ok(v),
                Err(payload) => {
                    attempt += 1;
                    if attempt > self.retries {
                        return Err(VqiError::Panic {
                            stage: stage.to_string(),
                            reason: panic_reason(payload.as_ref()),
                        });
                    }
                    vqi_observe::incr("fault.retried", 1);
                    vqi_observe::incr(&format!("{}.retries", self.prefix), 1);
                    if vqi_observe::journal_recording() {
                        vqi_observe::instant(&format!("stage.retry:{stage}#{attempt}"));
                    }
                    if self.backoff_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(
                            self.backoff_ms << (attempt - 1),
                        ));
                    }
                }
            }
        }
    }

    /// Executes one shard body: in-flight gauge up, `{prefix}.shard`
    /// span and fault site around the (retried) body, then an injected
    /// straggler check — a straggler signal models a shard too slow to
    /// wait for, and is answered by speculative re-execution, taking
    /// the re-execution's (identical) result. `pi` keys the injection
    /// sites: a stable identity, independent of scheduling order.
    pub fn run_shard<T>(&self, pi: usize, f: impl Fn() -> T) -> Result<T, VqiError> {
        let in_flight = format!("{}.in_flight", self.prefix);
        let span_name = format!("{}.shard", self.prefix);
        let straggler_site = format!("{}.straggler", self.prefix);
        loop {
            // per-shard wall time lands in the `{prefix}.shard`
            // histogram; the gauge tracks shards currently running
            vqi_observe::gauge_add(&in_flight, 1);
            let run = self.retrying(self.prefix, || {
                let _shard = vqi_observe::span(&span_name);
                fault::maybe_panic(&span_name, pi as u64);
                f()
            });
            vqi_observe::gauge_add(&in_flight, -1);
            let v = run?;
            if fault::maybe_timeout(&straggler_site, pi as u64) {
                vqi_observe::incr(&format!("{}.stragglers", self.prefix), 1);
                vqi_observe::incr("fault.retried", 1);
                if vqi_observe::journal_recording() {
                    vqi_observe::instant(&format!("stage.retry:{straggler_site}#{pi}"));
                }
                continue;
            }
            return Ok(v);
        }
    }

    /// Runs `n` shard bodies across the [`par`](crate::par) pool,
    /// returning per-shard results **in shard index order** — each
    /// either the body's value or the [`VqiError::Panic`] that
    /// exhausted its retries, so callers decide drop-vs-propagate per
    /// shard. Determinism: which shards fail depends only on the fault
    /// plan and shard indices, never on scheduling.
    pub fn run_shards<T, F>(&self, n: usize, f: F) -> Vec<Result<T, VqiError>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        vqi_observe::incr(&format!("{}.shards", self.prefix), n as u64);
        map_range(n, |pi| self.run_shard(pi, || f(pi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `body` under an explicit thread cap, restoring the previous
    /// cap afterwards. Serialized via the kernel test lock because the
    /// cap is crate-global.
    fn with_cap<T>(cap: usize, body: impl FnOnce() -> T) -> T {
        let prev = thread_cap();
        set_thread_cap(cap);
        let out = body();
        set_thread_cap(prev);
        out
    }

    #[test]
    fn map_is_identical_across_thread_counts() {
        let _guard = crate::kernel_test_lock();
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for cap in [1, 2, 3, 4, 7, 64] {
            let got = with_cap(cap, || map(&items, |x| x * x + 1));
            assert_eq!(got, expect, "cap {cap}");
        }
    }

    #[test]
    fn map_range_handles_edges() {
        let _guard = crate::kernel_test_lock();
        for cap in [1, 4] {
            with_cap(cap, || {
                assert!(map_range(0, |i| i).is_empty());
                assert_eq!(map_range(1, |i| i), vec![0]);
                assert_eq!(map_range(3, |i| i * 2), vec![0, 2, 4]);
            });
        }
    }

    #[test]
    fn map_chunks_partitions_in_order() {
        let _guard = crate::kernel_test_lock();
        let parts = with_cap(4, || map_chunks(10, |r| r.collect::<Vec<usize>>()));
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn sequential_toggle_forces_one_thread() {
        let _guard = crate::kernel_test_lock();
        set_parallel_enabled(false);
        assert_eq!(num_threads(), 1);
        let got = map_range(100, |i| i + 1);
        set_parallel_enabled(true);
        assert_eq!(got, (1..=100).collect::<Vec<usize>>());
    }

    #[test]
    fn injected_chunk_panic_is_isolated_and_retried() {
        let _guard = crate::kernel_test_lock();
        vqi_runtime::fault::set_plan(vqi_runtime::fault::FaultPlan {
            seed: 11,
            panic_rate: 1.0,
            ..Default::default()
        });
        // every chunk's first attempt panics; the fired-once registry
        // lets each sequential retry pass, so the call still returns
        // the exact sequential result
        let got = with_cap(4, || {
            map_chunks(100, |r| {
                vqi_runtime::fault::maybe_panic("par.test_chunk", r.start as u64);
                r.map(|i| i * 3).sum::<usize>()
            })
        });
        vqi_runtime::fault::reset();
        let total: usize = got.into_iter().sum();
        assert_eq!(total, (0..100).map(|i| i * 3).sum::<usize>());
    }

    #[test]
    fn repeated_chunk_panic_propagates() {
        let _guard = crate::kernel_test_lock();
        // catch inside with_cap so the cap is restored even on unwind
        let r = with_cap(2, || {
            std::panic::catch_unwind(|| {
                map_chunks(10, |r| {
                    if r.contains(&7) {
                        panic!("permanent failure");
                    }
                    r.len()
                })
            })
        });
        assert!(r.is_err(), "a twice-failing chunk must propagate");
    }

    #[test]
    fn shard_executor_preserves_order_and_retries_crashes() {
        let _guard = crate::kernel_test_lock();
        let exec = ShardExecutor::new("par.test_exec", 1, 0);
        // clean run: results in shard index order at every cap
        for cap in [1usize, 2, 4] {
            let got = with_cap(cap, || exec.run_shards(9, |pi| pi * pi));
            let vals: Vec<usize> = got.into_iter().map(|r| r.expect("no faults")).collect();
            assert_eq!(vals, (0..9).map(|i| i * i).collect::<Vec<_>>(), "cap {cap}");
        }
        // every shard crashes once; one retry recovers the full result
        vqi_runtime::fault::set_plan(vqi_runtime::fault::FaultPlan {
            seed: 5,
            panic_rate: 1.0,
            ..Default::default()
        });
        let got = with_cap(4, || exec.run_shards(6, |pi| pi + 100));
        vqi_runtime::fault::reset();
        let vals: Vec<usize> = got.into_iter().map(|r| r.expect("retried")).collect();
        assert_eq!(vals, (100..106).collect::<Vec<_>>());
    }

    #[test]
    fn shard_executor_exhausted_retries_name_the_stage() {
        let _guard = crate::kernel_test_lock();
        let exec = ShardExecutor::new("par.test_exec", 0, 0);
        vqi_runtime::fault::set_plan(vqi_runtime::fault::FaultPlan {
            seed: 9,
            panic_rate: 1.0,
            ..Default::default()
        });
        let got = with_cap(2, || exec.run_shards(3, |pi| pi));
        vqi_runtime::fault::reset();
        for r in got {
            match r {
                Err(VqiError::Panic { stage, .. }) => assert_eq!(stage, "par.test_exec"),
                other => panic!("expected exhausted retries, got {other:?}"),
            }
        }
    }

    #[test]
    fn nested_calls_run_sequentially_and_agree() {
        let _guard = crate::kernel_test_lock();
        let expect: Vec<Vec<usize>> = (0..6)
            .map(|i| (0..4).map(|j| i * 4 + j).collect())
            .collect();
        let got = with_cap(3, || map_range(6, |i| map_range(4, |j| i * 4 + j)));
        assert_eq!(got, expect);
    }
}
