//! Canonical codes for small labeled graphs.
//!
//! A canonical code is a sequence of integers that is identical for
//! isomorphic graphs and different for non-isomorphic ones, so pattern
//! sets can be deduplicated with a hash set instead of quadratically many
//! VF2 calls.
//!
//! The code of a graph under a node ordering `σ` is the concatenation of
//! per-node *chunks*: node `σ(d)`'s chunk is its stabilized
//! Weisfeiler-Leman color rank, its label, and its adjacency row to the
//! ordering prefix (`ABSENT` for non-edges, the edge label for edges —
//! encoded so that edges sort *before* non-edges, which makes canonical
//! orderings connected-first). The canonical code is the lexicographic
//! minimum over all orderings, found by branch-and-bound restricted at
//! every depth to candidates achieving the minimal next chunk, with twin
//! pruning (structurally interchangeable candidates are explored once).
//!
//! **Guarantee**: equal codes always imply isomorphic graphs (a code
//! reconstructs the graph up to relabeling). Codes are canonical — i.e.
//! isomorphic graphs always collide — whenever the bounded search
//! completes, which it does for all pattern-sized graphs in this project;
//! if the node budget is exhausted the code is flagged truncated and
//! dedup degrades to "may keep an isomorphic duplicate", never to
//! "merges distinct graphs".

use crate::graph::{Graph, Label, NodeId};
use std::collections::HashMap;

/// Sentinel for "no edge" inside a code chunk; larger than any label so
/// present edges sort first.
const ABSENT: u64 = u64::MAX;

/// A canonical code. Equality implies graph isomorphism.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalCode {
    code: Vec<u64>,
    /// True if the branch-and-bound search exhausted its budget; the code
    /// is then deterministic but possibly not minimal.
    truncated: bool,
}

impl CanonicalCode {
    /// The raw code words.
    pub fn words(&self) -> &[u64] {
        &self.code
    }

    /// Whether the search budget was exhausted (canonicity not guaranteed).
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }
}

/// Stabilized 1-WL colors: initial color is (label, degree); each round
/// hashes the sorted multiset of (edge label, neighbor color). Returns one
/// color per node, renumbered to dense ranks (isomorphism-invariant).
pub fn wl_colors(g: &Graph) -> Vec<u64> {
    let n = g.node_count();
    let mut colors: Vec<u64> = g
        .nodes()
        .map(|v| fnv(&[g.node_label(v) as u64, g.degree(v) as u64]))
        .collect();
    for _ in 0..n {
        let mut next = Vec::with_capacity(n);
        for v in g.nodes() {
            let mut sig: Vec<(u64, u64)> = g
                .neighbors(v)
                .map(|(m, e)| (g.edge_label(e) as u64, colors[m.index()]))
                .collect();
            sig.sort_unstable();
            let mut words = vec![colors[v.index()]];
            for (el, c) in sig {
                words.push(el);
                words.push(c);
            }
            next.push(fnv(&words));
        }
        if partition_of(&next) == partition_of(&colors) {
            colors = next;
            break;
        }
        colors = next;
    }
    // renumber to dense ranks by sorted color value (invariant)
    let mut sorted: Vec<u64> = colors.clone();
    sorted.sort_unstable();
    sorted.dedup();
    colors
        .iter()
        .map(|c| sorted.binary_search(c).unwrap() as u64)
        .collect()
}

/// The partition induced by a coloring, as sorted class sizes keyed by the
/// class of each node (used to detect stabilization).
fn partition_of(colors: &[u64]) -> Vec<usize> {
    let mut map: HashMap<u64, usize> = HashMap::new();
    let mut ids = Vec::with_capacity(colors.len());
    for &c in colors {
        let next = map.len();
        ids.push(*map.entry(c).or_insert(next));
    }
    ids
}

fn fnv(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

struct CanonSearch<'a> {
    g: &'a Graph,
    colors: Vec<u64>,
    best: Option<Vec<u64>>,
    budget: u64,
    truncated: bool,
}

impl<'a> CanonSearch<'a> {
    /// The chunk candidate `v` would append given the current `prefix`.
    fn chunk(&self, v: NodeId, prefix: &[NodeId]) -> Vec<u64> {
        let mut chunk = Vec::with_capacity(prefix.len() + 2);
        chunk.push(self.colors[v.index()]);
        chunk.push(self.g.node_label(v) as u64);
        for &p in prefix {
            match self.g.edge_between(v, p) {
                Some(e) => chunk.push(self.g.edge_label(e) as u64),
                None => chunk.push(ABSENT),
            }
        }
        chunk
    }

    /// True if `a` and `b` are twins: same label and identical labeled
    /// neighborhoods apart from each other. Twins are automorphic, so the
    /// search explores only one per class.
    fn are_twins(&self, a: NodeId, b: NodeId) -> bool {
        if self.g.node_label(a) != self.g.node_label(b) {
            return false;
        }
        let sig = |v: NodeId, other: NodeId| {
            let mut s: Vec<(NodeId, Label)> = self
                .g
                .neighbors(v)
                .filter(|&(m, _)| m != other && m != v)
                .map(|(m, e)| (m, self.g.edge_label(e)))
                .collect();
            s.sort_unstable();
            s
        };
        if sig(a, b) != sig(b, a) {
            return false;
        }
        // if adjacent, edge labels to each other must be symmetric (always
        // true for a single undirected edge)
        true
    }

    fn search(&mut self, prefix: &mut Vec<NodeId>, used: &mut Vec<bool>, code: &mut Vec<u64>) {
        if self.budget == 0 {
            self.truncated = true;
            return;
        }
        self.budget -= 1;
        let n = self.g.node_count();
        if prefix.len() == n {
            if self.best.as_ref().is_none_or(|b| &*code < b) {
                self.best = Some(code.clone());
            }
            return;
        }
        // candidates achieving the minimal next chunk
        let mut best_chunk: Option<Vec<u64>> = None;
        let mut cands: Vec<NodeId> = Vec::new();
        for v in self.g.nodes() {
            if used[v.index()] {
                continue;
            }
            let c = self.chunk(v, prefix);
            match &best_chunk {
                None => {
                    best_chunk = Some(c);
                    cands = vec![v];
                }
                Some(b) => {
                    if c < *b {
                        best_chunk = Some(c);
                        cands = vec![v];
                    } else if c == *b {
                        cands.push(v);
                    }
                }
            }
        }
        let chunk = best_chunk.expect("at least one unused node");
        // prune: if extending makes the code prefix worse than best, stop
        if let Some(b) = &self.best {
            let start = code.len();
            let end = start + chunk.len();
            if end <= b.len() {
                use std::cmp::Ordering;
                if chunk.as_slice().cmp(&b[start..end]) == Ordering::Greater {
                    return;
                }
            }
        }
        // twin pruning: keep one representative per twin class
        let mut reps: Vec<NodeId> = Vec::new();
        'outer: for &v in &cands {
            for &r in &reps {
                if self.are_twins(v, r) {
                    continue 'outer;
                }
            }
            reps.push(v);
        }
        for v in reps {
            prefix.push(v);
            used[v.index()] = true;
            code.extend_from_slice(&chunk);
            self.search(prefix, used, code);
            code.truncate(code.len() - chunk.len());
            used[v.index()] = false;
            prefix.pop();
        }
    }
}

/// Computes the canonical code of `g` with the default search budget.
///
/// ```
/// use vqi_graph::generate::cycle;
/// use vqi_graph::canon::canonical_code;
///
/// let a = cycle(5, 1, 0);
/// let b = a.permuted(&[4, 2, 0, 3, 1]); // relabeled copy
/// assert_eq!(canonical_code(&a), canonical_code(&b));
/// assert_ne!(canonical_code(&a), canonical_code(&cycle(6, 1, 0)));
/// ```
pub fn canonical_code(g: &Graph) -> CanonicalCode {
    canonical_code_budgeted(g, 2_000_000)
}

/// Canonicalizes a batch of graphs, fanning out over [`crate::par`].
///
/// Each graph's code is computed independently and the results are
/// collected in input order, so the output is identical to mapping
/// [`canonical_code`] sequentially — the contract candidate pipelines
/// rely on when they canonicalize-then-dedup in generation order.
pub fn canonical_codes(graphs: &[Graph]) -> Vec<CanonicalCode> {
    let _s = vqi_observe::span("kernel.canon.batch");
    vqi_observe::incr("kernel.canon.batch.graphs", graphs.len() as u64);
    crate::par::map(graphs, canonical_code)
}

/// Computes the canonical code with an explicit branch-and-bound budget.
pub fn canonical_code_budgeted(g: &Graph, budget: u64) -> CanonicalCode {
    if g.node_count() == 0 {
        return CanonicalCode {
            code: vec![0],
            truncated: false,
        };
    }
    let mut s = CanonSearch {
        g,
        colors: wl_colors(g),
        best: None,
        budget,
        truncated: false,
    };
    let mut prefix = Vec::with_capacity(g.node_count());
    let mut used = vec![false; g.node_count()];
    let mut code = vec![g.node_count() as u64, g.edge_count() as u64];
    s.search(&mut prefix, &mut used, &mut code);
    CanonicalCode {
        code: s.best.expect("search explores at least one ordering"),
        truncated: s.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::iso::are_isomorphic;

    fn cycle(n: usize, label: Label) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(label)).collect();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n], 0);
        }
        g
    }

    #[test]
    fn isomorphic_graphs_share_codes() {
        let g = GraphBuilder::new()
            .nodes(&[1, 2, 3, 1])
            .edge(0, 1, 5)
            .edge(1, 2, 6)
            .edge(2, 3, 5)
            .edge(3, 0, 6)
            .build();
        let h = g.permuted(&[2, 3, 0, 1]);
        assert_eq!(canonical_code(&g), canonical_code(&h));
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let c4 = cycle(4, 0);
        let p4 = GraphBuilder::new()
            .nodes(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .build();
        assert_ne!(canonical_code(&c4), canonical_code(&p4));
    }

    #[test]
    fn labels_distinguish() {
        let a = GraphBuilder::new().nodes(&[1, 1]).edge(0, 1, 0).build();
        let b = GraphBuilder::new().nodes(&[1, 2]).edge(0, 1, 0).build();
        let c = GraphBuilder::new().nodes(&[1, 1]).edge(0, 1, 9).build();
        assert_ne!(canonical_code(&a), canonical_code(&b));
        assert_ne!(canonical_code(&a), canonical_code(&c));
    }

    #[test]
    fn clique_is_fast_via_twin_pruning() {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..12).map(|_| g.add_node(3)).collect();
        for i in 0..12 {
            for j in (i + 1)..12 {
                g.add_edge(nodes[i], nodes[j], 1);
            }
        }
        let code = canonical_code(&g);
        assert!(!code.is_truncated());
        let h = g.permuted(&[5, 3, 8, 0, 11, 1, 9, 2, 10, 4, 7, 6]);
        assert_eq!(code, canonical_code(&h));
    }

    #[test]
    fn cycles_match_under_rotation() {
        for n in [3usize, 5, 8, 12] {
            let g = cycle(n, 7);
            let perm: Vec<usize> = (0..n).map(|i| (i + n / 2) % n).collect();
            let h = g.permuted(&perm);
            assert_eq!(canonical_code(&g), canonical_code(&h), "cycle n={n}");
        }
    }

    #[test]
    fn code_equality_matches_vf2_on_random_small_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let mut graphs = Vec::new();
        for _ in 0..30 {
            let n = rng.gen_range(2..6);
            let mut g = Graph::new();
            let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(rng.gen_range(0..2))).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.5) {
                        g.add_edge(nodes[i], nodes[j], rng.gen_range(0..2));
                    }
                }
            }
            graphs.push(g);
        }
        for i in 0..graphs.len() {
            for j in (i + 1)..graphs.len() {
                let same_code = canonical_code(&graphs[i]) == canonical_code(&graphs[j]);
                let iso = are_isomorphic(&graphs[i], &graphs[j]);
                assert_eq!(same_code, iso, "graphs {i} and {j} disagree");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let e = Graph::new();
        assert_eq!(canonical_code(&e), canonical_code(&Graph::new()));
        let mut a = Graph::new();
        a.add_node(4);
        let mut b = Graph::new();
        b.add_node(4);
        let mut c = Graph::new();
        c.add_node(5);
        assert_eq!(canonical_code(&a), canonical_code(&b));
        assert_ne!(canonical_code(&a), canonical_code(&c));
        assert_ne!(canonical_code(&e), canonical_code(&a));
    }

    #[test]
    fn batch_canonicalization_matches_sequential_across_thread_counts() {
        use crate::generate::{assign_labels, erdos_renyi};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let _guard = crate::kernel_test_lock();
        let prev = crate::par::thread_cap();
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let graphs: Vec<Graph> = (0..9)
                .map(|i| {
                    let mut g = erdos_renyi(5 + (i % 4), 0.5, 0, &mut rng);
                    assign_labels(&mut g, 3, 2, &mut rng);
                    g
                })
                .collect();
            let expect: Vec<CanonicalCode> = graphs.iter().map(canonical_code).collect();
            for cap in [1usize, 2, 4] {
                crate::par::set_thread_cap(cap);
                assert_eq!(canonical_codes(&graphs), expect, "seed {seed} cap {cap}");
            }
            crate::par::set_thread_cap(prev);
        }
    }

    #[test]
    fn wl_colors_are_invariant() {
        let g = cycle(6, 0);
        let h = g.permuted(&[3, 4, 5, 0, 1, 2]);
        let mut cg = wl_colors(&g);
        let mut ch = wl_colors(&h);
        cg.sort_unstable();
        ch.sort_unstable();
        assert_eq!(cg, ch);
    }
}
