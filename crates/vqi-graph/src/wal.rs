//! Write-ahead log: durable, epoch-tagged record framing with
//! torn-tail recovery.
//!
//! A long-lived VQI service survives `kill -9` by writing every update
//! batch to an append-only log *before* publishing the epoch it
//! produces (`vqi-serve` wires this through its snapshot store; see
//! DESIGN §13). This module owns the storage-level half of that story:
//!
//! * **Framing** — each record is `len: u32 LE | epoch: u64 LE |
//!   payload | digest: u64 LE`, where the digest is the splitmix64 fold
//!   of [`bytes_digest`] over the epoch and the payload. A segment file
//!   starts with the 8-byte magic `VQIWAL01`.
//! * **Durability** — [`WalWriter::append`] pushes the frame to the OS
//!   with plain `write(2)` calls and [`WalWriter::sync`] runs
//!   `fdatasync`; callers publish an epoch only after the sync returns
//!   (the fsync-before-publish ordering argument lives in DESIGN §13).
//! * **Recovery** — [`read_segment`] replays a segment and *truncates*
//!   any torn or corrupt tail record instead of failing: a crash
//!   mid-append must cost at most the batch that was being appended,
//!   never the log. Corruption is detected by the per-record digest, a
//!   length field pointing past end-of-file, or a missing trailer.
//! * **Codecs** — little-endian serializers for the two batch
//!   vocabularies that flow through logs: [`EdgeDelta`] (the
//!   incremental-maintenance batches of [`crate::delta`]) and whole
//!   [`Graph`]s (collection additions), both reconstructing
//!   insertion-order-identical values so replay is bit-identical.
//!
//! Crash points: under an armed [`vqi_runtime::fault::FaultPlan`] with
//! a `crash_rate`, `append` can die mid-record (site `wal.append.mid`,
//! after the header and payload but before the digest trailer) or tear
//! the frame at a seeded byte offset (site `wal.append.torn`). Both
//! leave exactly the torn tail the recovery path must truncate.

use crate::delta::EdgeDelta;
use crate::graph::{Graph, NodeId};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use vqi_runtime::VqiError;

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"VQIWAL01";

/// Upper bound on a single record's payload (1 GiB). A length field
/// above this is treated as tail corruption, not an allocation request.
pub const MAX_RECORD_BYTES: usize = 1 << 30;

const FRAME_HEADER: usize = 4 + 8; // len + epoch
const FRAME_TRAILER: usize = 8; // digest

#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Splitmix64 fold over a byte slice: 8-byte little-endian chunks, then
/// the zero-padded tail, then the length — the digest used by WAL
/// records and the `vqi-serve` checkpoint container.
pub fn bytes_digest(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    let mut fold = |x: u64| h = mix64(h ^ x);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        fold(u64::from_le_bytes(c.try_into().expect("8 bytes")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        fold(u64::from_le_bytes(tail));
    }
    fold(bytes.len() as u64);
    h
}

fn record_digest(epoch: u64, payload: &[u8]) -> u64 {
    bytes_digest(0x57A1_D16E_57 ^ mix64(epoch), payload)
}

fn io_err(path: &Path, what: &str, e: std::io::Error) -> VqiError {
    VqiError::Parse {
        line: 0,
        reason: format!("{what} {}: {e}", path.display()),
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The epoch the payload publishes.
    pub epoch: u64,
    /// The opaque batch bytes (see the codecs below).
    pub payload: Vec<u8>,
}

/// What [`read_segment`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentScan {
    /// Records with valid digests, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic included); everything
    /// past it is a torn or corrupt tail.
    pub valid_len: u64,
    /// Bytes past the valid prefix (0 on a clean segment).
    pub torn_bytes: u64,
}

impl SegmentScan {
    /// True when the segment ended with a torn or corrupt record.
    pub fn truncated(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// An append-only WAL segment writer. One writer owns one segment file;
/// rotation (new segment per checkpoint) is the caller's business.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
}

impl WalWriter {
    /// Creates a fresh segment at `path` (truncating any existing file)
    /// and writes the magic. The magic is not synced by itself — the
    /// first [`WalWriter::sync`] covers it.
    pub fn create(path: impl AsRef<Path>) -> Result<WalWriter, VqiError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path).map_err(|e| io_err(&path, "cannot create", e))?;
        file.write_all(WAL_MAGIC)
            .map_err(|e| io_err(&path, "cannot write", e))?;
        Ok(WalWriter {
            file,
            path,
            len: WAL_MAGIC.len() as u64,
        })
    }

    /// Reopens an existing segment for appending, first truncating it
    /// to `valid_len` (the [`SegmentScan`] verdict) so a torn tail is
    /// physically removed before new records go after it.
    pub fn reopen(path: impl AsRef<Path>, valid_len: u64) -> Result<WalWriter, VqiError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, "cannot open", e))?;
        file.set_len(valid_len)
            .map_err(|e| io_err(&path, "cannot truncate", e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err(&path, "cannot seek", e))?;
        Ok(WalWriter {
            file,
            path,
            len: valid_len,
        })
    }

    /// The segment path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes appended so far (magic included) — record this before an
    /// append to be able to [`WalWriter::truncate_to`] it away.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the segment holds no records yet.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Physically truncates the segment back to `len` — how a caller
    /// discards a record whose batch failed to take effect (the record
    /// was never acted on, so removing it keeps log and state agreed).
    pub fn truncate_to(&mut self, len: u64) -> Result<(), VqiError> {
        assert!(len >= WAL_MAGIC.len() as u64, "cannot truncate the magic");
        self.file
            .set_len(len)
            .map_err(|e| io_err(&self.path, "cannot truncate", e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(&self.path, "cannot seek", e))?;
        self.len = len;
        Ok(())
    }

    /// Appends one record. The frame reaches the OS before this
    /// returns, but is *not* durable until [`WalWriter::sync`]; callers
    /// must sync before acting on the record (publishing its epoch).
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<(), VqiError> {
        assert!(payload.len() <= MAX_RECORD_BYTES, "record too large");
        let digest = record_digest(epoch, payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len() + FRAME_TRAILER);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&epoch.to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&digest.to_le_bytes());

        if vqi_runtime::fault::active() {
            // torn-write crash point: push a seeded prefix of the frame
            // to the OS, make it durable, and die — the canonical torn
            // tail the recovery suite must truncate
            if let Some(cut) = vqi_runtime::fault::torn_write("wal.append.torn", epoch, frame.len())
            {
                let _ = self.file.write_all(&frame[..cut]);
                let _ = self.file.sync_data();
                vqi_runtime::fault::crash_now("wal.append.torn", epoch);
            }
        }

        let write_all = |f: &mut File, bytes: &[u8]| -> Result<(), VqiError> {
            f.write_all(bytes)
                .map_err(|e| io_err(&self.path, "cannot append to", e))
        };
        // mid-append crash point: header and payload are on their way
        // to the OS, the digest trailer is not — a structurally torn
        // record, distinct from the seeded torn-write cut above
        write_all(&mut self.file, &frame[..FRAME_HEADER + payload.len()])?;
        if vqi_runtime::fault::active() {
            let _ = self.file.sync_data();
            vqi_runtime::fault::maybe_crash("wal.append.mid", epoch);
        }
        write_all(&mut self.file, &frame[FRAME_HEADER + payload.len()..])?;
        self.len += frame.len() as u64;
        vqi_observe::incr("wal.append", 1);
        vqi_observe::incr("wal.append_bytes", frame.len() as u64);
        Ok(())
    }

    /// Makes every appended record durable (`fdatasync`).
    pub fn sync(&mut self) -> Result<(), VqiError> {
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.path, "cannot fsync", e))?;
        vqi_observe::incr("wal.fsync", 1);
        Ok(())
    }
}

/// Reads a segment, validating the magic and every record digest.
/// Returns the valid prefix and the length of the torn/corrupt tail, if
/// any — the *only* error case is an unreadable file or a bad magic
/// (the file is not a WAL segment at all); mid-file damage is, by the
/// tail-truncation rule, the end of the log.
pub fn read_segment(path: impl AsRef<Path>) -> Result<SegmentScan, VqiError> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, "cannot read", e))?;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(VqiError::Parse {
            line: 1,
            reason: format!("{} is not a VQIWAL01 segment", path.display()),
        });
    }
    let mut scan = SegmentScan {
        valid_len: WAL_MAGIC.len() as u64,
        ..Default::default()
    };
    let mut pos = WAL_MAGIC.len();
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER + FRAME_TRAILER {
            break; // torn header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_BYTES || rest.len() < FRAME_HEADER + len + FRAME_TRAILER {
            break; // corrupt length or torn payload/trailer
        }
        let epoch = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        let stored = u64::from_le_bytes(
            rest[FRAME_HEADER + len..FRAME_HEADER + len + FRAME_TRAILER]
                .try_into()
                .expect("8 bytes"),
        );
        if record_digest(epoch, payload) != stored {
            break; // bit rot or a reused torn region
        }
        scan.records.push(WalRecord {
            epoch,
            payload: payload.to_vec(),
        });
        pos += FRAME_HEADER + len + FRAME_TRAILER;
        scan.valid_len = pos as u64;
    }
    scan.torn_bytes = bytes.len() as u64 - scan.valid_len;
    vqi_observe::incr("wal.replayed", scan.records.len() as u64);
    if scan.truncated() {
        vqi_observe::incr("wal.truncated", 1);
    }
    Ok(scan)
}

// ---- payload codecs -----------------------------------------------------

fn take_u32(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u32, VqiError> {
    let end = pos.checked_add(4).filter(|&e| e <= bytes.len());
    match end {
        Some(e) => {
            let v = u32::from_le_bytes(bytes[*pos..e].try_into().expect("4 bytes"));
            *pos = e;
            Ok(v)
        }
        None => Err(VqiError::Parse {
            line: 0,
            reason: format!("payload truncated reading {what}"),
        }),
    }
}

/// Serializes an [`EdgeDelta`] batch: delete count, insert count, then
/// the endpoint pairs in batch order (deletes first).
pub fn encode_delta(delta: &EdgeDelta) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 * (delta.deletes.len() + delta.inserts.len()));
    out.extend_from_slice(&(delta.deletes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(delta.inserts.len() as u32).to_le_bytes());
    for &(u, v) in delta.deletes.iter().chain(delta.inserts.iter()) {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes [`encode_delta`] bytes; pair order (and therefore replay
/// behavior) is preserved exactly.
pub fn decode_delta(bytes: &[u8]) -> Result<EdgeDelta, VqiError> {
    let mut pos = 0usize;
    let nd = take_u32(bytes, &mut pos, "delete count")? as usize;
    let ni = take_u32(bytes, &mut pos, "insert count")? as usize;
    let need = nd
        .checked_add(ni)
        .and_then(|p| p.checked_mul(8))
        .and_then(|b| b.checked_add(8));
    if need != Some(bytes.len()) {
        return Err(VqiError::Parse {
            line: 0,
            reason: format!(
                "delta payload length {} does not match {nd} deletes + {ni} inserts",
                bytes.len()
            ),
        });
    }
    let pair = |pos: &mut usize| -> Result<(u32, u32), VqiError> {
        Ok((
            take_u32(bytes, pos, "endpoint")?,
            take_u32(bytes, pos, "endpoint")?,
        ))
    };
    let mut delta = EdgeDelta::new();
    for _ in 0..nd {
        delta.deletes.push(pair(&mut pos)?);
    }
    for _ in 0..ni {
        delta.inserts.push(pair(&mut pos)?);
    }
    Ok(delta)
}

/// Serializes a labeled [`Graph`]: node count, edge count, node labels,
/// then `(u, v, label)` per edge in insertion order — the order
/// [`Graph::add_edge`] replays to a bit-identical graph.
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * g.node_count() + 12 * g.edge_count());
    out.extend_from_slice(&(g.node_count() as u32).to_le_bytes());
    out.extend_from_slice(&(g.edge_count() as u32).to_le_bytes());
    for v in g.nodes() {
        out.extend_from_slice(&g.node_label(v).to_le_bytes());
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        out.extend_from_slice(&u.0.to_le_bytes());
        out.extend_from_slice(&v.0.to_le_bytes());
        out.extend_from_slice(&g.edge_label(e).to_le_bytes());
    }
    out
}

/// Decodes [`encode_graph`] bytes into a graph with identical ids,
/// labels, and adjacency-row order. Validates counts against the
/// payload size *before* allocating, and every edge against
/// [`Graph::add_edge`]'s acceptance rules (no self-loops, endpoints in
/// range, no duplicates).
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, VqiError> {
    let mut pos = 0usize;
    let n = take_u32(bytes, &mut pos, "node count")? as usize;
    let m = take_u32(bytes, &mut pos, "edge count")? as usize;
    let need = n
        .checked_mul(4)
        .and_then(|nb| m.checked_mul(12).map(|mb| (nb, mb)))
        .and_then(|(nb, mb)| nb.checked_add(mb))
        .and_then(|b| b.checked_add(8));
    if need != Some(bytes.len()) {
        return Err(VqiError::Parse {
            line: 0,
            reason: format!(
                "graph payload length {} does not match n={n}, m={m}",
                bytes.len()
            ),
        });
    }
    let mut g = Graph::with_capacity(n, m);
    for _ in 0..n {
        g.add_node(take_u32(bytes, &mut pos, "node label")?);
    }
    for i in 0..m {
        let u = take_u32(bytes, &mut pos, "edge endpoint")?;
        let v = take_u32(bytes, &mut pos, "edge endpoint")?;
        let l = take_u32(bytes, &mut pos, "edge label")?;
        if u as usize >= n || v as usize >= n {
            return Err(VqiError::Parse {
                line: 0,
                reason: format!("edge {i} endpoint out of range: ({u}, {v}) with n={n}"),
            });
        }
        if g.add_edge(NodeId(u), NodeId(v), l).is_none() {
            return Err(VqiError::Parse {
                line: 0,
                reason: format!("edge {i} rejected (self-loop or duplicate): ({u}, {v})"),
            });
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{assign_labels, erdos_renyi};
    use crate::index::Fingerprint;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vqi_wal_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn sample_graph(seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = erdos_renyi(24, 0.2, 0, &mut rng);
        assign_labels(&mut g, 3, 2, &mut rng);
        g
    }

    #[test]
    fn wal_roundtrips_records_in_order() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("seg.wal");
        let payloads: Vec<Vec<u8>> = vec![b"alpha".to_vec(), vec![], vec![7u8; 300]];
        {
            let mut w = WalWriter::create(&path).expect("create");
            for (i, p) in payloads.iter().enumerate() {
                w.append(i as u64 + 1, p).expect("append");
            }
            w.sync().expect("sync");
        }
        let scan = read_segment(&path).expect("read");
        assert!(!scan.truncated());
        assert_eq!(scan.records.len(), 3);
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.epoch, i as u64 + 1);
            assert_eq!(r.payload, payloads[i]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_and_corrupt_tails_are_truncated_not_fatal() {
        let dir = tmp_dir("torn");
        let path = dir.join("seg.wal");
        let mut w = WalWriter::create(&path).expect("create");
        w.append(1, b"first").expect("append");
        w.append(2, b"second record").expect("append");
        w.sync().expect("sync");
        let clean = std::fs::read(&path).expect("read back");
        let clean_scan = read_segment(&path).expect("scan");
        assert_eq!(clean_scan.valid_len, clean.len() as u64);

        // every strict prefix that cuts into record 2 yields exactly
        // record 1 plus a torn tail — the truncation sweep
        let rec1_end = WAL_MAGIC.len() + FRAME_HEADER + 5 + FRAME_TRAILER;
        for cut in rec1_end + 1..clean.len() {
            std::fs::write(&path, &clean[..cut]).expect("write torn");
            let scan = read_segment(&path).expect("torn scan");
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, rec1_end as u64, "cut at {cut}");
            assert!(scan.truncated(), "cut at {cut}");
        }

        // a flipped payload bit in the *last* record kills only it
        let mut flipped = clean.clone();
        let off = rec1_end + FRAME_HEADER + 3;
        flipped[off] ^= 0x40;
        std::fs::write(&path, &flipped).expect("write flipped");
        let scan = read_segment(&path).expect("flipped scan");
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated());

        // an absurd length field is corruption, not an allocation
        let mut huge = clean[..rec1_end].to_vec();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &huge).expect("write huge");
        let scan = read_segment(&path).expect("huge scan");
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated());

        // reopen truncates the torn tail physically and appends cleanly
        std::fs::write(&path, &clean[..clean.len() - 3]).expect("write torn again");
        let scan = read_segment(&path).expect("scan before reopen");
        let mut w = WalWriter::reopen(&path, scan.valid_len).expect("reopen");
        w.append(2, b"second again").expect("append");
        w.sync().expect("sync");
        let healed = read_segment(&path).expect("healed scan");
        assert!(!healed.truncated());
        assert_eq!(healed.records.len(), 2);
        assert_eq!(healed.records[1].payload, b"second again");

        // a file that is not a WAL at all is the one hard error
        std::fs::write(&path, b"NOTAWAL!xxxx").expect("write junk");
        assert!(matches!(
            read_segment(&path),
            Err(VqiError::Parse { line: 1, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_codec_roundtrips_and_rejects_damage() {
        let delta = EdgeDelta {
            deletes: vec![(3, 9), (0, 1)],
            inserts: vec![(5, 2), (7, 7), (1, 4)],
        };
        let bytes = encode_delta(&delta);
        let back = decode_delta(&bytes).expect("decode");
        assert_eq!(back.deletes, delta.deletes);
        assert_eq!(back.inserts, delta.inserts);
        assert!(decode_delta(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_delta(&bytes[..3]).is_err());
        let mut lying = bytes.clone();
        lying[0] = lying[0].wrapping_add(1); // delete count lies
        assert!(decode_delta(&lying).is_err());
        // a count that would overflow the size check must error, not OOM
        let mut huge = bytes;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_delta(&huge).is_err());
    }

    #[test]
    fn graph_codec_is_bit_identical_and_rejects_damage() {
        for seed in 0..6u64 {
            let g = sample_graph(seed);
            let bytes = encode_graph(&g);
            let back = decode_graph(&bytes).expect("decode");
            assert_eq!(back.node_count(), g.node_count());
            assert_eq!(back.edge_count(), g.edge_count());
            for v in g.nodes() {
                assert_eq!(back.node_label(v), g.node_label(v));
                assert_eq!(back.neighbor_slice(v), g.neighbor_slice(v));
            }
            for e in g.edges() {
                assert_eq!(back.endpoints(e), g.endpoints(e));
                assert_eq!(back.edge_label(e), g.edge_label(e));
            }
            assert_eq!(Fingerprint::of(&back).digest(), Fingerprint::of(&g).digest());
        }
        let g = sample_graph(1);
        let bytes = encode_graph(&g);
        for cut in [0usize, 3, 7, bytes.len() - 1] {
            assert!(decode_graph(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut huge = bytes.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_graph(&huge).is_err(), "edge-count lie must error");
        // an out-of-range endpoint is rejected by validation, not a panic
        let mut bad = bytes;
        let edge0 = 8 + 4 * g.node_count();
        bad[edge0..edge0 + 4].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(decode_graph(&bad).is_err());
    }

    #[test]
    fn bytes_digest_separates_lengths_and_seeds() {
        assert_ne!(bytes_digest(1, b"ab"), bytes_digest(1, b"abc"));
        assert_ne!(bytes_digest(1, b"ab"), bytes_digest(2, b"ab"));
        assert_ne!(
            bytes_digest(1, &[0u8; 8]),
            bytes_digest(1, &[0u8; 16]),
            "zero padding must not collide across lengths"
        );
        assert_eq!(bytes_digest(9, b"same"), bytes_digest(9, b"same"));
    }
}
