//! Line-oriented graph-transaction text format.
//!
//! This is the `t # / v / e` format used by classic graph-mining datasets
//! (AIDS, PubChem exports, gSpan inputs):
//!
//! ```text
//! t # 0
//! v 0 3
//! v 1 5
//! e 0 1 2
//! t # 1
//! ...
//! ```
//!
//! `v <id> <label>` declares node `<id>` (ids must be dense and in
//! order), `e <u> <v> <label>` declares an undirected edge. Parsing is
//! strict: malformed lines produce descriptive errors rather than silently
//! skewing a dataset.

use crate::graph::{Graph, NodeId};
use std::fmt;

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for vqi_runtime::VqiError {
    fn from(e: ParseError) -> Self {
        vqi_runtime::VqiError::Parse {
            line: e.line,
            reason: e.message,
        }
    }
}

/// Reads and parses a transaction file from disk, folding both I/O
/// failures and malformed content into [`vqi_runtime::VqiError::Parse`]
/// (unreadable files report line 0). This is the entry point pipelines
/// and the CLI use so a corrupt dataset degrades a run instead of
/// aborting the process.
pub fn load_transactions(path: &std::path::Path) -> Result<Vec<Graph>, vqi_runtime::VqiError> {
    let text = std::fs::read_to_string(path).map_err(|e| vqi_runtime::VqiError::Parse {
        line: 0,
        reason: format!("cannot read {}: {e}", path.display()),
    })?;
    parse_transactions(&text).map_err(Into::into)
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a multi-graph transaction file into a list of graphs.
pub fn parse_transactions(input: &str) -> Result<Vec<Graph>, ParseError> {
    let mut graphs = Vec::new();
    let mut current: Option<Graph> = None;
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("t") => {
                if let Some(g) = current.take() {
                    graphs.push(g);
                }
                current = Some(Graph::new());
            }
            Some("v") => {
                let g = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "'v' before any 't' header"))?;
                let id: u32 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing node id"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid node id"))?;
                let label: u32 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing node label"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid node label"))?;
                if id as usize != g.node_count() {
                    return Err(err(
                        lineno,
                        format!("node id {id} out of order (expected {})", g.node_count()),
                    ));
                }
                g.add_node(label);
            }
            Some("e") => {
                let g = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "'e' before any 't' header"))?;
                let u: u32 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing edge source"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid edge source"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing edge target"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid edge target"))?;
                let label: u32 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing edge label"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid edge label"))?;
                g.add_edge(NodeId(u), NodeId(v), label)
                    .ok_or_else(|| err(lineno, format!("invalid or duplicate edge {u}-{v}")))?;
            }
            Some(other) => {
                return Err(err(lineno, format!("unknown record type '{other}'")));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    if let Some(g) = current.take() {
        graphs.push(g);
    }
    Ok(graphs)
}

/// Parses a single graph; errors if the input contains more than one.
pub fn parse_graph(input: &str) -> Result<Graph, ParseError> {
    let graphs = parse_transactions(input)?;
    match graphs.len() {
        1 => Ok(graphs.into_iter().next().unwrap()),
        n => Err(err(0, format!("expected exactly 1 graph, found {n}"))),
    }
}

/// Serializes graphs to the transaction format.
pub fn write_transactions(graphs: &[Graph]) -> String {
    let mut out = String::new();
    for (i, g) in graphs.iter().enumerate() {
        write_graph_into(g, i, &mut out);
    }
    out
}

/// Serializes a single graph with transaction id `id`.
pub fn write_graph(g: &Graph, id: usize) -> String {
    let mut out = String::new();
    write_graph_into(g, id, &mut out);
    out
}

fn write_graph_into(g: &Graph, id: usize, out: &mut String) {
    use std::fmt::Write;
    writeln!(out, "t # {id}").unwrap();
    for n in g.nodes() {
        writeln!(out, "v {} {}", n.0, g.node_label(n)).unwrap();
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        writeln!(out, "e {} {} {}", u.0, v.0, g.edge_label(e)).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{cycle, star};
    use crate::iso::are_isomorphic;

    #[test]
    fn round_trip_single() {
        let g = cycle(5, 3, 7);
        let text = write_graph(&g, 0);
        let parsed = parse_graph(&text).unwrap();
        assert!(are_isomorphic(&g, &parsed));
    }

    #[test]
    fn round_trip_many() {
        let graphs = vec![cycle(4, 1, 2), star(3, 5, 6), cycle(3, 0, 0)];
        let text = write_transactions(&graphs);
        let parsed = parse_transactions(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        for (a, b) in graphs.iter().zip(parsed.iter()) {
            assert!(are_isomorphic(a, b));
        }
    }

    #[test]
    fn parses_reference_snippet() {
        let text = "t # 0\nv 0 3\nv 1 5\ne 0 1 2\n";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_label(NodeId(0)), 3);
        assert_eq!(g.edge_label(crate::graph::EdgeId(0)), 2);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header comment\n\nt # 0\nv 0 1\n\n# mid comment\nv 1 1\ne 0 1 0\n";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_transactions("v 0 1\n").is_err()); // v before t
        assert!(parse_transactions("t # 0\nv 1 1\n").is_err()); // out of order
        assert!(parse_transactions("t # 0\nv 0\n").is_err()); // missing label
        assert!(parse_transactions("t # 0\nx 0 0\n").is_err()); // bad record
        assert!(parse_transactions("t # 0\nv 0 1\nv 1 1\ne 0 1 0\ne 0 1 0\n").is_err());
        let e = parse_transactions("t # 0\nv 0 1\ne 0 5 0\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn multiple_graphs_error_for_parse_graph() {
        let text = "t # 0\nv 0 1\nt # 1\nv 0 1\n";
        assert!(parse_graph(text).is_err());
    }

    #[test]
    fn empty_input_gives_no_graphs() {
        assert_eq!(parse_transactions("").unwrap().len(), 0);
    }

    #[test]
    fn corrupt_fixtures_report_line_and_reason() {
        // each fixture is a realistic truncation/corruption of the
        // reference snippet; the parser must name the offending line
        let cases: &[(&str, usize, &str)] = &[
            ("t # 0\nv 0 3\nv x 5\n", 3, "invalid node id"),
            ("t # 0\nv 0 3\nv 1\n", 3, "missing node label"),
            ("t # 0\nv 0 3\nv 1 5\ne 0\n", 4, "missing edge target"),
            ("t # 0\nv 0 3\nv 1 5\ne 0 1 1e3\n", 4, "invalid edge label"),
            ("t # 0\nv 0 3\nv 1 5\ne 0 one 2\n", 4, "invalid edge target"),
            ("e 0 1 2\n", 1, "'e' before any 't' header"),
            ("t # 0\nw 0 3\n", 2, "unknown record type 'w'"),
            ("t # 0\nv 0 3\nv 3 5\n", 3, "node id 3 out of order"),
            ("t # 0\nv 0 3\ne 0 0 1\n", 3, "invalid or duplicate edge"),
        ];
        for (text, line, reason) in cases {
            let e = parse_transactions(text).expect_err(text);
            assert_eq!(e.line, *line, "fixture {text:?}");
            assert!(
                e.message.contains(reason),
                "fixture {text:?}: got {:?}, want substring {reason:?}",
                e.message
            );
        }
    }

    #[test]
    fn parse_error_converts_to_vqi_error() {
        let e = parse_transactions("t # 0\nv 0\n").unwrap_err();
        let v: vqi_runtime::VqiError = e.clone().into();
        assert_eq!(
            v,
            vqi_runtime::VqiError::Parse {
                line: 2,
                reason: e.message,
            }
        );
        assert_eq!(v.tag(), "parse");
    }

    #[test]
    fn load_transactions_surfaces_io_and_parse_failures() {
        let dir = std::env::temp_dir().join("vqi_io_corrupt_fixtures");
        std::fs::create_dir_all(&dir).unwrap();

        let missing = dir.join("does_not_exist.txt");
        let e = load_transactions(&missing).unwrap_err();
        match &e {
            vqi_runtime::VqiError::Parse { line, reason } => {
                assert_eq!(*line, 0);
                assert!(reason.contains("cannot read"), "{reason}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }

        let corrupt = dir.join("corrupt.txt");
        std::fs::write(&corrupt, "t # 0\nv 0 3\ne 0 1 2\n").unwrap();
        let e = load_transactions(&corrupt).unwrap_err();
        match &e {
            vqi_runtime::VqiError::Parse { line, .. } => assert_eq!(*line, 3),
            other => panic!("expected Parse, got {other:?}"),
        }

        let good = dir.join("good.txt");
        std::fs::write(&good, "t # 0\nv 0 3\nv 1 5\ne 0 1 2\n").unwrap();
        let graphs = load_transactions(&good).unwrap();
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].node_count(), 2);
    }
}
