//! Random-graph generators and canonical motif shapes.
//!
//! Two kinds of constructors live here:
//!
//! * random models — Erdős–Rényi `G(n, p)`, Barabási–Albert preferential
//!   attachment, and uniform random trees — standing in for the
//!   proprietary large networks (DBLP, Twitter, …) used by the surveyed
//!   systems (see DESIGN.md §3);
//! * deterministic motifs — chain, star, cycle, petal, flower, clique —
//!   the topology classes TATTOO derives from real-world query-log
//!   analyses and uses to guide candidate generation.

use crate::graph::{Graph, Label, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)` with all nodes labeled `label` and all edges
/// labeled 0. Use [`assign_labels`] afterwards for richer labelings.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, label: Label, rng: &mut R) -> Graph {
    let mut g = Graph::with_capacity(n, (p * (n * n) as f64 / 2.0) as usize);
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(label)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(nodes[i], nodes[j], 0);
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a small clique of
/// `m + 1` nodes, then each new node attaches to `m` distinct existing
/// nodes chosen proportionally to degree. Produces the heavy-tailed degree
/// distributions typical of social and citation networks.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, label: Label, rng: &mut R) -> Graph {
    assert!(m >= 1, "m must be at least 1");
    let seed = m + 1;
    assert!(n >= seed, "need at least m + 1 nodes");
    let mut g = Graph::with_capacity(n, n * m);
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let nodes: Vec<NodeId> = (0..seed).map(|_| g.add_node(label)).collect();
    for i in 0..seed {
        for j in (i + 1)..seed {
            g.add_edge(nodes[i], nodes[j], 0);
            endpoints.push(nodes[i]);
            endpoints.push(nodes[j]);
        }
    }
    for _ in seed..n {
        let v = g.add_node(label);
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let &t = endpoints.choose(rng).expect("endpoint pool is never empty");
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            g.add_edge(v, t, 0);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// A uniformly random labeled tree on `n` nodes via a random Prüfer-like
/// attachment (each new node attaches to a uniformly random earlier node).
pub fn random_tree<R: Rng>(n: usize, label: Label, rng: &mut R) -> Graph {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    if n == 0 {
        return g;
    }
    let mut nodes = vec![g.add_node(label)];
    for _ in 1..n {
        let v = g.add_node(label);
        let &parent = nodes.choose(rng).expect("nonempty");
        g.add_edge(v, parent, 0);
        nodes.push(v);
    }
    g
}

/// Assigns node labels drawn from `0..node_labels` and edge labels from
/// `0..edge_labels` with a Zipf-like skew (`s = 1`): label `i` has weight
/// `1 / (i + 1)`, matching the skewed label frequencies of real attribute
/// panels.
pub fn assign_labels<R: Rng>(g: &mut Graph, node_labels: u32, edge_labels: u32, rng: &mut R) {
    let pick = |k: u32, rng: &mut R| -> Label {
        if k <= 1 {
            return 0;
        }
        let total: f64 = (0..k).map(|i| 1.0 / (i + 1) as f64).sum();
        let mut x = rng.gen_range(0.0..total);
        for i in 0..k {
            let w = 1.0 / (i + 1) as f64;
            if x < w {
                return i;
            }
            x -= w;
        }
        k - 1
    };
    for n in g.nodes().collect::<Vec<_>>() {
        let l = pick(node_labels, rng);
        g.set_node_label(n, l);
    }
    for e in g.edges().collect::<Vec<_>>() {
        let l = pick(edge_labels, rng);
        g.set_edge_label(e, l);
    }
}

/// A chain (path) of `n ≥ 1` nodes.
pub fn chain(n: usize, node_label: Label, edge_label: Label) -> Graph {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    if n == 0 {
        return g;
    }
    let mut prev = g.add_node(node_label);
    for _ in 1..n {
        let cur = g.add_node(node_label);
        g.add_edge(prev, cur, edge_label);
        prev = cur;
    }
    g
}

/// A star with `leaves` leaves (total `leaves + 1` nodes).
pub fn star(leaves: usize, node_label: Label, edge_label: Label) -> Graph {
    let mut g = Graph::with_capacity(leaves + 1, leaves);
    let center = g.add_node(node_label);
    for _ in 0..leaves {
        let leaf = g.add_node(node_label);
        g.add_edge(center, leaf, edge_label);
    }
    g
}

/// A cycle of `n ≥ 3` nodes.
pub fn cycle(n: usize, node_label: Label, edge_label: Label) -> Graph {
    assert!(n >= 3, "cycles need at least 3 nodes");
    let mut g = Graph::with_capacity(n, n);
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(node_label)).collect();
    for i in 0..n {
        g.add_edge(nodes[i], nodes[(i + 1) % n], edge_label);
    }
    g
}

/// A clique on `n` nodes.
pub fn clique(n: usize, node_label: Label, edge_label: Label) -> Graph {
    let mut g = Graph::with_capacity(n, n * (n - 1) / 2);
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(node_label)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(nodes[i], nodes[j], edge_label);
        }
    }
    g
}

/// A *petal*: two endpoint nodes joined by `paths ≥ 2` internally-disjoint
/// paths, each with `inner ≥ 1` internal nodes. (With `paths = 2` and
/// `inner = 1` this is a 4-cycle.)
pub fn petal(paths: usize, inner: usize, node_label: Label, edge_label: Label) -> Graph {
    assert!(
        paths >= 2 && inner >= 1,
        "petal needs ≥2 paths and ≥1 inner node"
    );
    let mut g = Graph::new();
    let s = g.add_node(node_label);
    let t = g.add_node(node_label);
    for _ in 0..paths {
        let mut prev = s;
        for _ in 0..inner {
            let mid = g.add_node(node_label);
            g.add_edge(prev, mid, edge_label);
            prev = mid;
        }
        g.add_edge(prev, t, edge_label);
    }
    g
}

/// A *flower*: a center node with `petals ≥ 1` cycles of length
/// `cycle_len ≥ 3` all sharing the center.
pub fn flower(petals: usize, cycle_len: usize, node_label: Label, edge_label: Label) -> Graph {
    assert!(
        petals >= 1 && cycle_len >= 3,
        "flower needs ≥1 petal of length ≥3"
    );
    let mut g = Graph::new();
    let center = g.add_node(node_label);
    for _ in 0..petals {
        let mut prev = center;
        for _ in 0..(cycle_len - 1) {
            let v = g.add_node(node_label);
            g.add_edge(prev, v, edge_label);
            prev = v;
        }
        g.add_edge(prev, center, edge_label);
    }
    g
}

/// A triangle with a pendant path of `tail` extra nodes.
pub fn tailed_triangle(tail: usize, node_label: Label, edge_label: Label) -> Graph {
    let mut g = cycle(3, node_label, edge_label);
    let mut prev = NodeId(0);
    for _ in 0..tail {
        let v = g.add_node(node_label);
        g.add_edge(prev, v, edge_label);
        prev = v;
    }
    g
}

// ---------------------------------------------------------------------------
// Streamed synthetic networks (10⁷–10⁸ edges)
// ---------------------------------------------------------------------------

/// A seeded synthetic large network: `cliques` planted 5-cliques on
/// disjoint node blocks (so the truss decomposition has classes above 2
/// and the census sees every graphlet family) plus `uniform_edges`
/// uniform random pairs over the remaining nodes.
///
/// The whole network streams: [`SyntheticSpec::stream_edges`] emits the
/// edge list in a deterministic seeded order, twice identically, with
/// **O(1)** state — no `Vec` of the edge list, no adjacency
/// intermediate, no rejection bookkeeping. Duplicate-freedom is by
/// construction, not by hashing what was emitted: clique edges live on
/// disjoint blocks in the node-range *tail*, and uniform pairs are the
/// first `uniform_edges` values of a seeded Feistel permutation of the
/// pair-index space over the *head* nodes — injective, so no pair
/// repeats, and disjoint from every clique block. That is what lets
/// [`crate::storage::CsrGraph::from_synthetic`] build a 10⁸-edge CSR
/// with two passes over the stream, while [`synthetic_network`] builds
/// the bit-identical heap twin at sizes where both fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Total node count. The last `5 * cliques` nodes host the planted
    /// cliques; uniform pairs are drawn from the rest.
    pub nodes: usize,
    /// Number of uniform random edges over the non-clique nodes.
    pub uniform_edges: usize,
    /// Number of planted 5-cliques (10 edges each) on disjoint blocks.
    pub cliques: usize,
    /// Number of distinct node labels (≥ 1), assigned per node by hash.
    pub node_labels: u32,
    /// Number of distinct edge labels (≥ 1), assigned per edge by hash.
    pub edge_labels: u32,
    /// Seed for labels and the uniform-pair permutation.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Total edges the stream emits: `10 * cliques + uniform_edges`.
    pub fn edge_count(&self) -> usize {
        10 * self.cliques + self.uniform_edges
    }

    /// Head-node count: nodes eligible for uniform pairs.
    fn head(&self) -> usize {
        self.nodes - 5 * self.cliques
    }

    /// The label of node `v` — a pure hash of `(seed, v)`.
    pub fn node_label(&self, v: NodeId) -> Label {
        let h = crate::index::mix64(
            self.seed ^ 0x4E4F_4445 ^ (v.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        (h % self.node_labels.max(1) as u64) as Label
    }

    /// The label of the `k`-th emitted edge — a pure hash of `(seed, k)`.
    fn edge_label(&self, k: usize) -> Label {
        let h = crate::index::mix64(
            self.seed ^ 0x4544_4745 ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        (h % self.edge_labels.max(1) as u64) as Label
    }

    /// One Feistel pass over a `2^bits` domain (`bits` even): a seeded
    /// bijection, the standard way to permute an index space without
    /// materializing it. The round function is an arbitrary hash — any
    /// `F` yields a permutation; the network structure only needs
    /// injectivity.
    fn feistel(&self, x: u64, bits: u32) -> u64 {
        let half = bits / 2;
        let mask = (1u64 << half) - 1;
        let mut l = x >> half;
        let mut r = x & mask;
        for round in 0..4u64 {
            let f = crate::index::mix64(self.seed ^ (round << 56) ^ r) & mask;
            let next_r = l ^ f;
            l = r;
            r = next_r;
        }
        (l << half) | r
    }

    /// The `t`-th uniform pair `(i, j)` with `i < j < head`: cycle-walk
    /// the Feistel permutation until it lands inside the pair-index
    /// space `[0, head·(head−1)/2)`, then unrank colexicographically.
    /// Injective in `t`, so the emitted pairs are distinct.
    fn uniform_pair(&self, t: u64) -> (u32, u32) {
        let n = self.head() as u64;
        let pair_space = n * (n - 1) / 2;
        // even bit width covering the space; the walk re-applies the
        // permutation on out-of-range values (< 4 expected steps)
        let bits = (64 - (pair_space - 1).leading_zeros()).max(2).div_ceil(2) * 2;
        let mut x = t;
        loop {
            x = self.feistel(x, bits);
            if x < pair_space {
                break;
            }
        }
        // colexicographic unrank: x = j(j-1)/2 + i with i < j
        let mut j = ((1.0 + (1.0 + 8.0 * x as f64).sqrt()) / 2.0) as u64;
        // f64 rounding can land a step off near 2^53; correct exactly
        while j * (j - 1) / 2 > x {
            j -= 1;
        }
        while (j + 1) * j / 2 <= x {
            j += 1;
        }
        let i = x - j * (j - 1) / 2;
        (i as u32, j as u32)
    }

    /// Streams the edge list as `(u, v, label)` in the canonical order:
    /// the 10 edges of each planted clique (blocks ascending, pairs in
    /// `i < j` order), then the uniform pairs in permutation order. A
    /// pure function of the spec — every call emits the identical
    /// sequence, which is the two-pass contract of
    /// [`crate::storage::CsrGraph::from_edge_stream`].
    pub fn stream_edges(&self, f: &mut dyn FnMut(u32, u32, Label)) {
        assert!(
            self.nodes >= 5 * self.cliques + 2,
            "spec needs {} clique nodes plus at least 2 head nodes",
            5 * self.cliques
        );
        assert!(
            (self.uniform_edges as u128) <= {
                let n = self.head() as u128;
                n * (n - 1) / 2
            },
            "more uniform edges than head pairs"
        );
        let mut k = 0usize;
        let head = self.head() as u32;
        for c in 0..self.cliques {
            let base = head + 5 * c as u32;
            for i in 0..5u32 {
                for j in (i + 1)..5 {
                    f(base + i, base + j, self.edge_label(k));
                    k += 1;
                }
            }
        }
        for t in 0..self.uniform_edges as u64 {
            let (i, j) = self.uniform_pair(t);
            f(i, j, self.edge_label(k));
            k += 1;
        }
    }
}

/// The heap-[`Graph`] twin of a [`SyntheticSpec`]: same nodes, labels,
/// and edge stream, materialized through [`Graph::add_edge`]. At sizes
/// where it fits, `CsrGraph::from_graph(&synthetic_network(spec))`
/// equals `CsrGraph::from_synthetic(&spec)` field for field — the
/// equality the `exp_scale` bench asserts before trusting the streamed
/// build at sizes where only the CSR fits.
pub fn synthetic_network(spec: &SyntheticSpec) -> Graph {
    let mut g = Graph::with_capacity(spec.nodes, spec.edge_count());
    for v in 0..spec.nodes {
        g.add_node(spec.node_label(NodeId(v as u32)));
    }
    spec.stream_edges(&mut |u, v, l| {
        let added = g.add_edge(NodeId(u), NodeId(v), l);
        debug_assert!(added.is_some(), "synthetic stream emitted a duplicate");
    });
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty = erdos_renyi(10, 0.0, 0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, 0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100;
        let m = 3;
        let g = barabasi_albert(n, m, 0, &mut rng);
        assert_eq!(g.node_count(), n);
        // seed clique C(4,2)=6 edges + (n - 4) * 3
        assert_eq!(g.edge_count(), 6 + (n - m - 1) * m);
        assert!(is_connected(&g));
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = barabasi_albert(500, 2, 0, &mut rng);
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        // preferential attachment produces hubs far above the mean (~4)
        assert!(max_deg > 15, "max degree {max_deg}");
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = SmallRng::seed_from_u64(4);
        for n in [1usize, 2, 10, 50] {
            let g = random_tree(n, 0, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn assign_labels_in_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut g = clique(8, 0, 0);
        assign_labels(&mut g, 4, 3, &mut rng);
        for n in g.nodes() {
            assert!(g.node_label(n) < 4);
        }
        for e in g.edges() {
            assert!(g.edge_label(e) < 3);
        }
    }

    #[test]
    fn assign_labels_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut g = erdos_renyi(400, 0.02, 0, &mut rng);
        assign_labels(&mut g, 5, 1, &mut rng);
        let count0 = g.nodes().filter(|&n| g.node_label(n) == 0).count();
        let count4 = g.nodes().filter(|&n| g.node_label(n) == 4).count();
        assert!(
            count0 > count4,
            "label 0 ({count0}) should beat label 4 ({count4})"
        );
    }

    #[test]
    fn motif_shapes() {
        let c = chain(5, 1, 2);
        assert_eq!((c.node_count(), c.edge_count()), (5, 4));
        let s = star(4, 1, 2);
        assert_eq!((s.node_count(), s.edge_count()), (5, 4));
        assert_eq!(s.degree(NodeId(0)), 4);
        let cy = cycle(6, 1, 2);
        assert_eq!((cy.node_count(), cy.edge_count()), (6, 6));
        let k = clique(5, 1, 2);
        assert_eq!(k.edge_count(), 10);
        let p = petal(3, 2, 1, 2);
        // 2 hubs + 3 paths * 2 inner = 8 nodes; 3 paths * 3 edges = 9 edges
        assert_eq!((p.node_count(), p.edge_count()), (8, 9));
        assert!(is_connected(&p));
        let f = flower(3, 4, 1, 2);
        // center + 3 * 3 = 10 nodes; 3 * 4 = 12 edges
        assert_eq!((f.node_count(), f.edge_count()), (10, 12));
        assert!(is_connected(&f));
        let t = tailed_triangle(2, 1, 2);
        assert_eq!((t.node_count(), t.edge_count()), (5, 5));
    }

    #[test]
    fn petal_with_two_paths_is_cycle() {
        use crate::iso::are_isomorphic;
        let p = petal(2, 1, 0, 0);
        let c = cycle(4, 0, 0);
        assert!(are_isomorphic(&p, &c));
    }
}
