//! Random-graph generators and canonical motif shapes.
//!
//! Two kinds of constructors live here:
//!
//! * random models — Erdős–Rényi `G(n, p)`, Barabási–Albert preferential
//!   attachment, and uniform random trees — standing in for the
//!   proprietary large networks (DBLP, Twitter, …) used by the surveyed
//!   systems (see DESIGN.md §3);
//! * deterministic motifs — chain, star, cycle, petal, flower, clique —
//!   the topology classes TATTOO derives from real-world query-log
//!   analyses and uses to guide candidate generation.

use crate::graph::{Graph, Label, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)` with all nodes labeled `label` and all edges
/// labeled 0. Use [`assign_labels`] afterwards for richer labelings.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, label: Label, rng: &mut R) -> Graph {
    let mut g = Graph::with_capacity(n, (p * (n * n) as f64 / 2.0) as usize);
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(label)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(nodes[i], nodes[j], 0);
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a small clique of
/// `m + 1` nodes, then each new node attaches to `m` distinct existing
/// nodes chosen proportionally to degree. Produces the heavy-tailed degree
/// distributions typical of social and citation networks.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, label: Label, rng: &mut R) -> Graph {
    assert!(m >= 1, "m must be at least 1");
    let seed = m + 1;
    assert!(n >= seed, "need at least m + 1 nodes");
    let mut g = Graph::with_capacity(n, n * m);
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let nodes: Vec<NodeId> = (0..seed).map(|_| g.add_node(label)).collect();
    for i in 0..seed {
        for j in (i + 1)..seed {
            g.add_edge(nodes[i], nodes[j], 0);
            endpoints.push(nodes[i]);
            endpoints.push(nodes[j]);
        }
    }
    for _ in seed..n {
        let v = g.add_node(label);
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let &t = endpoints.choose(rng).expect("endpoint pool is never empty");
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            g.add_edge(v, t, 0);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// A uniformly random labeled tree on `n` nodes via a random Prüfer-like
/// attachment (each new node attaches to a uniformly random earlier node).
pub fn random_tree<R: Rng>(n: usize, label: Label, rng: &mut R) -> Graph {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    if n == 0 {
        return g;
    }
    let mut nodes = vec![g.add_node(label)];
    for _ in 1..n {
        let v = g.add_node(label);
        let &parent = nodes.choose(rng).expect("nonempty");
        g.add_edge(v, parent, 0);
        nodes.push(v);
    }
    g
}

/// Assigns node labels drawn from `0..node_labels` and edge labels from
/// `0..edge_labels` with a Zipf-like skew (`s = 1`): label `i` has weight
/// `1 / (i + 1)`, matching the skewed label frequencies of real attribute
/// panels.
pub fn assign_labels<R: Rng>(g: &mut Graph, node_labels: u32, edge_labels: u32, rng: &mut R) {
    let pick = |k: u32, rng: &mut R| -> Label {
        if k <= 1 {
            return 0;
        }
        let total: f64 = (0..k).map(|i| 1.0 / (i + 1) as f64).sum();
        let mut x = rng.gen_range(0.0..total);
        for i in 0..k {
            let w = 1.0 / (i + 1) as f64;
            if x < w {
                return i;
            }
            x -= w;
        }
        k - 1
    };
    for n in g.nodes().collect::<Vec<_>>() {
        let l = pick(node_labels, rng);
        g.set_node_label(n, l);
    }
    for e in g.edges().collect::<Vec<_>>() {
        let l = pick(edge_labels, rng);
        g.set_edge_label(e, l);
    }
}

/// A chain (path) of `n ≥ 1` nodes.
pub fn chain(n: usize, node_label: Label, edge_label: Label) -> Graph {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    if n == 0 {
        return g;
    }
    let mut prev = g.add_node(node_label);
    for _ in 1..n {
        let cur = g.add_node(node_label);
        g.add_edge(prev, cur, edge_label);
        prev = cur;
    }
    g
}

/// A star with `leaves` leaves (total `leaves + 1` nodes).
pub fn star(leaves: usize, node_label: Label, edge_label: Label) -> Graph {
    let mut g = Graph::with_capacity(leaves + 1, leaves);
    let center = g.add_node(node_label);
    for _ in 0..leaves {
        let leaf = g.add_node(node_label);
        g.add_edge(center, leaf, edge_label);
    }
    g
}

/// A cycle of `n ≥ 3` nodes.
pub fn cycle(n: usize, node_label: Label, edge_label: Label) -> Graph {
    assert!(n >= 3, "cycles need at least 3 nodes");
    let mut g = Graph::with_capacity(n, n);
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(node_label)).collect();
    for i in 0..n {
        g.add_edge(nodes[i], nodes[(i + 1) % n], edge_label);
    }
    g
}

/// A clique on `n` nodes.
pub fn clique(n: usize, node_label: Label, edge_label: Label) -> Graph {
    let mut g = Graph::with_capacity(n, n * (n - 1) / 2);
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(node_label)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(nodes[i], nodes[j], edge_label);
        }
    }
    g
}

/// A *petal*: two endpoint nodes joined by `paths ≥ 2` internally-disjoint
/// paths, each with `inner ≥ 1` internal nodes. (With `paths = 2` and
/// `inner = 1` this is a 4-cycle.)
pub fn petal(paths: usize, inner: usize, node_label: Label, edge_label: Label) -> Graph {
    assert!(
        paths >= 2 && inner >= 1,
        "petal needs ≥2 paths and ≥1 inner node"
    );
    let mut g = Graph::new();
    let s = g.add_node(node_label);
    let t = g.add_node(node_label);
    for _ in 0..paths {
        let mut prev = s;
        for _ in 0..inner {
            let mid = g.add_node(node_label);
            g.add_edge(prev, mid, edge_label);
            prev = mid;
        }
        g.add_edge(prev, t, edge_label);
    }
    g
}

/// A *flower*: a center node with `petals ≥ 1` cycles of length
/// `cycle_len ≥ 3` all sharing the center.
pub fn flower(petals: usize, cycle_len: usize, node_label: Label, edge_label: Label) -> Graph {
    assert!(
        petals >= 1 && cycle_len >= 3,
        "flower needs ≥1 petal of length ≥3"
    );
    let mut g = Graph::new();
    let center = g.add_node(node_label);
    for _ in 0..petals {
        let mut prev = center;
        for _ in 0..(cycle_len - 1) {
            let v = g.add_node(node_label);
            g.add_edge(prev, v, edge_label);
            prev = v;
        }
        g.add_edge(prev, center, edge_label);
    }
    g
}

/// A triangle with a pendant path of `tail` extra nodes.
pub fn tailed_triangle(tail: usize, node_label: Label, edge_label: Label) -> Graph {
    let mut g = cycle(3, node_label, edge_label);
    let mut prev = NodeId(0);
    for _ in 0..tail {
        let v = g.add_node(node_label);
        g.add_edge(prev, v, edge_label);
        prev = v;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty = erdos_renyi(10, 0.0, 0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, 0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100;
        let m = 3;
        let g = barabasi_albert(n, m, 0, &mut rng);
        assert_eq!(g.node_count(), n);
        // seed clique C(4,2)=6 edges + (n - 4) * 3
        assert_eq!(g.edge_count(), 6 + (n - m - 1) * m);
        assert!(is_connected(&g));
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = barabasi_albert(500, 2, 0, &mut rng);
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        // preferential attachment produces hubs far above the mean (~4)
        assert!(max_deg > 15, "max degree {max_deg}");
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = SmallRng::seed_from_u64(4);
        for n in [1usize, 2, 10, 50] {
            let g = random_tree(n, 0, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn assign_labels_in_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut g = clique(8, 0, 0);
        assign_labels(&mut g, 4, 3, &mut rng);
        for n in g.nodes() {
            assert!(g.node_label(n) < 4);
        }
        for e in g.edges() {
            assert!(g.edge_label(e) < 3);
        }
    }

    #[test]
    fn assign_labels_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut g = erdos_renyi(400, 0.02, 0, &mut rng);
        assign_labels(&mut g, 5, 1, &mut rng);
        let count0 = g.nodes().filter(|&n| g.node_label(n) == 0).count();
        let count4 = g.nodes().filter(|&n| g.node_label(n) == 4).count();
        assert!(
            count0 > count4,
            "label 0 ({count0}) should beat label 4 ({count4})"
        );
    }

    #[test]
    fn motif_shapes() {
        let c = chain(5, 1, 2);
        assert_eq!((c.node_count(), c.edge_count()), (5, 4));
        let s = star(4, 1, 2);
        assert_eq!((s.node_count(), s.edge_count()), (5, 4));
        assert_eq!(s.degree(NodeId(0)), 4);
        let cy = cycle(6, 1, 2);
        assert_eq!((cy.node_count(), cy.edge_count()), (6, 6));
        let k = clique(5, 1, 2);
        assert_eq!(k.edge_count(), 10);
        let p = petal(3, 2, 1, 2);
        // 2 hubs + 3 paths * 2 inner = 8 nodes; 3 paths * 3 edges = 9 edges
        assert_eq!((p.node_count(), p.edge_count()), (8, 9));
        assert!(is_connected(&p));
        let f = flower(3, 4, 1, 2);
        // center + 3 * 3 = 10 nodes; 3 * 4 = 12 edges
        assert_eq!((f.node_count(), f.edge_count()), (10, 12));
        assert!(is_connected(&f));
        let t = tailed_triangle(2, 1, 2);
        assert_eq!((t.node_count(), t.edge_count()), (5, 5));
    }

    #[test]
    fn petal_with_two_paths_is_cycle() {
        use crate::iso::are_isomorphic;
        let p = petal(2, 1, 0, 0);
        let c = cycle(4, 0, 0);
        assert!(are_isomorphic(&p, &c));
    }
}
