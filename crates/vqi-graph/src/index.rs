//! Per-graph matching indexes: CSR adjacency, label-partitioned
//! candidate lists, per-node invariant signatures, and graph-level
//! fingerprints.
//!
//! The VF2 and McGregor kernels in [`iso`](crate::iso) and
//! [`mcs`](crate::mcs) are the hottest code in every pipeline. A
//! [`GraphIndex`] compiles one immutable [`Graph`] into the three
//! structures those searches actually want:
//!
//! * **CSR adjacency** — one flat `(neighbor, edge)` array plus offsets,
//!   so neighbor scans are a contiguous slice instead of a
//!   `Vec<Vec<...>>` pointer chase;
//! * **label buckets** — node ids grouped by label (id-ascending within
//!   a bucket), so candidate enumeration for an unanchored pattern node
//!   touches only same-label nodes;
//! * **node signatures** — `(label, degree, neighborhood bloom)` per
//!   node; a pattern node can only map onto a target node whose
//!   signature dominates it, which prunes candidates before the
//!   backtracking search attempts a map.
//!
//! The embedded [`Fingerprint`] additionally supports two *graph-level*
//! constant-time checks: [`subgraph_feasible`] (a necessary condition
//! for any subgraph embedding to exist) and [`mcs_edge_upper_bound`] (an
//! upper bound on the common edge count of two graphs, used to
//! bound-and-skip MCS similarity searches).
//!
//! Every check here is a *necessary* condition only — the index never
//! changes an answer, it only lets the kernels refuse doomed work early.

use crate::graph::{EdgeId, Graph, Label, NodeId, WILDCARD_LABEL};

/// Compresses a sorted label sequence into `(label, count)` runs.
fn histogram(mut labels: Vec<Label>) -> Vec<(Label, u32)> {
    labels.sort_unstable();
    let mut out: Vec<(Label, u32)> = Vec::new();
    for l in labels {
        match out.last_mut() {
            Some((last, c)) if *last == l => *c += 1,
            _ => out.push((l, 1)),
        }
    }
    out
}

/// True if histogram `small` is a sub-multiset of histogram `big`
/// (both sorted by label).
fn sub_histogram(small: &[(Label, u32)], big: &[(Label, u32)]) -> bool {
    let mut bi = 0;
    for &(l, c) in small {
        while bi < big.len() && big[bi].0 < l {
            bi += 1;
        }
        if bi >= big.len() || big[bi].0 != l || big[bi].1 < c {
            return false;
        }
    }
    true
}

/// Graph-level summary supporting constant-time infeasibility checks.
///
/// Built once per graph (inside [`GraphIndex::build`] or standalone via
/// [`Fingerprint::of`]); all comparisons between two fingerprints are
/// linear in the number of distinct labels / the node count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    nodes: u32,
    edges: u32,
    /// `(label, count)` runs, sorted by label.
    node_hist: Vec<(Label, u32)>,
    /// `(label, count)` runs, sorted by label.
    edge_hist: Vec<(Label, u32)>,
    /// Node degrees, descending.
    degrees_desc: Vec<u32>,
    /// `((edge label, min endpoint label, max endpoint label), count)`
    /// runs, sorted by type.
    edge_types: Vec<((Label, Label, Label), u32)>,
    /// Any node or edge carries [`WILDCARD_LABEL`].
    has_wildcard: bool,
}

impl Fingerprint {
    /// Computes the fingerprint of `g`.
    pub fn of(g: &Graph) -> Fingerprint {
        let node_hist = histogram(g.node_label_multiset());
        let edge_hist = histogram(g.edge_label_multiset());
        let mut degrees_desc: Vec<u32> = g.nodes().map(|v| g.degree(v) as u32).collect();
        degrees_desc.sort_unstable_by(|a, b| b.cmp(a));
        let mut types: Vec<(Label, Label, Label)> = g
            .edges()
            .map(|e| {
                let (u, v) = g.endpoints(e);
                let (lu, lv) = (g.node_label(u), g.node_label(v));
                (g.edge_label(e), lu.min(lv), lu.max(lv))
            })
            .collect();
        types.sort_unstable();
        let mut edge_types: Vec<((Label, Label, Label), u32)> = Vec::new();
        for t in types {
            match edge_types.last_mut() {
                Some((last, c)) if *last == t => *c += 1,
                _ => edge_types.push((t, 1)),
            }
        }
        let has_wildcard = node_hist.iter().any(|&(l, _)| l == WILDCARD_LABEL)
            || edge_hist.iter().any(|&(l, _)| l == WILDCARD_LABEL);
        Fingerprint {
            nodes: g.node_count() as u32,
            edges: g.edge_count() as u32,
            node_hist,
            edge_hist,
            degrees_desc,
            edge_types,
            has_wildcard,
        }
    }

    /// True if any node or edge label is [`WILDCARD_LABEL`].
    pub fn has_wildcard(&self) -> bool {
        self.has_wildcard
    }

    /// A stable 64-bit digest of the fingerprint's contents.
    ///
    /// Deterministic across processes and platforms (pure splitmix64
    /// folding over the summarized data, no address- or seed-dependent
    /// state), so it can key persistent or cross-session memo tables —
    /// the per-dataset pattern-set cache in `vqi-serve` sorts and hashes
    /// collection members by this digest. Equal fingerprints always have
    /// equal digests; collisions are possible, so exact-match callers
    /// must still compare fingerprints with `==` after a digest hit.
    pub fn digest(&self) -> u64 {
        let mut h = mix64(0x5e59_13f1 ^ (((self.nodes as u64) << 32) | self.edges as u64));
        let mut fold = |v: u64| h = mix64(h ^ v);
        for &(l, c) in &self.node_hist {
            fold(0x01 ^ ((l as u64) << 32) ^ c as u64);
        }
        for &(l, c) in &self.edge_hist {
            fold(0x02 ^ ((l as u64) << 32) ^ c as u64);
        }
        for &d in &self.degrees_desc {
            fold(0x03 ^ ((d as u64) << 8));
        }
        for &((e, a, b), c) in &self.edge_types {
            fold(0x04 ^ ((e as u64) << 48) ^ ((a as u64) << 32) ^ ((b as u64) << 16) ^ c as u64);
        }
        fold(0x05 ^ self.has_wildcard as u64);
        h
    }
}

/// Necessary condition for a (non-induced or induced) subgraph embedding
/// of `pattern` into `target` to exist: `false` means no embedding can
/// exist, `true` means "maybe".
///
/// Size and degree-sequence dominance are label-free, so they hold under
/// wildcard matching too. The label-histogram sub-multiset checks are
/// only applied when `wildcard` matching cannot fire (neither side
/// carries a wildcard label, or wildcards are disabled).
pub fn subgraph_feasible(pattern: &Fingerprint, target: &Fingerprint, wildcard: bool) -> bool {
    if pattern.nodes > target.nodes || pattern.edges > target.edges {
        return false;
    }
    // an embedding maps the i-th highest-degree pattern node onto a
    // target node of at least that degree, so sorted-descending degree
    // sequences must dominate position-wise
    for (pd, td) in pattern.degrees_desc.iter().zip(target.degrees_desc.iter()) {
        if pd > td {
            return false;
        }
    }
    if wildcard && (pattern.has_wildcard || target.has_wildcard) {
        return true;
    }
    sub_histogram(&pattern.node_hist, &target.node_hist)
        && sub_histogram(&pattern.edge_hist, &target.edge_hist)
}

/// Upper bound on `|E(mcs(a, b))|` from the edge-type histograms: a
/// common edge subgraph maps each shared edge onto an edge with the same
/// edge label *and* the same (unordered) endpoint-label pair, so the
/// common count per type is at most the minimum of the two sides.
///
/// MCS matching is always exact-label (wildcards are a cover-semantics
/// concept), so the bound is unconditionally sound.
pub fn mcs_edge_upper_bound(a: &Fingerprint, b: &Fingerprint) -> usize {
    let (mut ai, mut bi, mut bound) = (0usize, 0usize, 0usize);
    while ai < a.edge_types.len() && bi < b.edge_types.len() {
        let (ta, ca) = a.edge_types[ai];
        let (tb, cb) = b.edge_types[bi];
        match ta.cmp(&tb) {
            std::cmp::Ordering::Less => ai += 1,
            std::cmp::Ordering::Greater => bi += 1,
            std::cmp::Ordering::Equal => {
                bound += ca.min(cb) as usize;
                ai += 1;
                bi += 1;
            }
        }
    }
    bound
}

/// Per-node invariant signature. For an embedding mapping pattern node
/// `p` onto target node `t` (exact labels): `label` must be equal,
/// `degree(p) <= degree(t)`, and every neighborhood kind present at `p`
/// must be present at `t` — approximated by bloom-bit containment of
/// `nbr_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSig {
    /// The node's own label.
    pub label: Label,
    /// The node's degree.
    pub degree: u32,
    /// 64-bit bloom of the incident `(neighbor label, edge label)` kinds.
    pub nbr_bits: u64,
}

/// The splitmix64 finalizer — shared with the graphlet sampler's
/// per-root seeding scheme.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[inline]
fn nbr_bit(nbr_label: Label, edge_label: Label) -> u64 {
    1u64 << (mix64(((nbr_label as u64) << 32) | edge_label as u64) & 63)
}

/// Computes the invariant signature of one node (used for pattern
/// graphs, which are too small and short-lived to index).
pub fn node_sig(g: &Graph, v: NodeId) -> NodeSig {
    let mut bits = 0u64;
    for (q, e) in g.neighbors(v) {
        bits |= nbr_bit(g.node_label(q), g.edge_label(e));
    }
    NodeSig {
        label: g.node_label(v),
        degree: g.degree(v) as u32,
        nbr_bits: bits,
    }
}

/// A compiled, immutable matching index over one [`Graph`].
///
/// Building is `O(n + m + n log n)`; the index holds no reference to the
/// graph, so the caller pairs them (an index is only valid for the exact
/// graph it was built from).
#[derive(Debug, Clone)]
pub struct GraphIndex {
    /// CSR offsets: node `v`'s neighbors live at `nbr[offsets[v]..offsets[v+1]]`.
    offsets: Vec<u32>,
    /// Flat neighbor array, same order as `Graph::neighbors`.
    nbr: Vec<(NodeId, EdgeId)>,
    /// Distinct node labels, sorted ascending.
    labels: Vec<Label>,
    /// Bucket `i` (for `labels[i]`) is `by_label[bucket_offsets[i]..bucket_offsets[i+1]]`.
    bucket_offsets: Vec<u32>,
    /// Node ids grouped by label, ascending within each bucket.
    by_label: Vec<NodeId>,
    /// Per-node invariant signatures.
    sigs: Vec<NodeSig>,
    /// Graph-level fingerprint.
    fingerprint: Fingerprint,
}

impl GraphIndex {
    /// Compiles `g` into an index. The CSR adjacency and label buckets
    /// come from the shared packers in [`crate::storage`]
    /// (`pack_adjacency` / `label_buckets`) — the same code that builds
    /// a [`crate::storage::CsrGraph`] — so there is exactly one CSR
    /// packing in the crate and the two layouts cannot drift apart.
    pub fn build(g: &Graph) -> GraphIndex {
        let (offsets, nbr) = crate::storage::pack_adjacency(g);
        let node_labels: Vec<Label> = g.nodes().map(|v| g.node_label(v)).collect();
        let (labels, bucket_offsets, by_label) = crate::storage::label_buckets(&node_labels);
        let sigs = g.nodes().map(|v| node_sig(g, v)).collect();
        GraphIndex {
            offsets,
            nbr,
            labels,
            bucket_offsets,
            by_label,
            sigs,
            fingerprint: Fingerprint::of(g),
        }
    }

    /// Compiles many graphs in parallel, order-stably: `out[i]` indexes
    /// `graphs[i]`. Index construction is per-graph deterministic, so
    /// the batch is identical to a sequential loop of [`Self::build`].
    pub fn build_many(graphs: &[&Graph]) -> Vec<GraphIndex> {
        let _s = vqi_observe::span("kernel.index.batch");
        vqi_observe::incr("kernel.index.batch.graphs", graphs.len() as u64);
        crate::par::map(graphs, |g| GraphIndex::build(g))
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// CSR neighbor slice of `v` (same contents and order as
    /// `Graph::neighbors`).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.nbr[lo..hi]
    }

    /// The edge between `u` and `v`, if any (scans the smaller CSR
    /// slice).
    #[inline]
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.neighbors(u).len() <= self.neighbors(v).len() {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a)
            .iter()
            .find(|&&(q, _)| q == b)
            .map(|&(_, e)| e)
    }

    /// Invariant signature of node `v`.
    #[inline]
    pub fn sig(&self, v: NodeId) -> NodeSig {
        self.sigs[v.index()]
    }

    /// The graph-level fingerprint.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Nodes carrying exactly label `l`, ascending by id.
    pub fn nodes_with_label(&self, l: Label) -> &[NodeId] {
        match self.labels.binary_search(&l) {
            Ok(i) => {
                let lo = self.bucket_offsets[i] as usize;
                let hi = self.bucket_offsets[i + 1] as usize;
                &self.by_label[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// Candidate target nodes for a pattern node labeled `label`,
    /// ascending by id — exactly the nodes the naive all-nodes scan
    /// would keep after the label-compatibility check. With `wildcard`
    /// matching, a wildcard pattern label admits every node, and any
    /// concrete label additionally admits wildcard-labeled target nodes.
    pub fn candidate_nodes(&self, label: Label, wildcard: bool) -> Vec<NodeId> {
        if !wildcard {
            return self.nodes_with_label(label).to_vec();
        }
        if label == WILDCARD_LABEL {
            return (0..self.node_count() as u32).map(NodeId).collect();
        }
        let bucket = self.nodes_with_label(label);
        let wild = self.nodes_with_label(WILDCARD_LABEL);
        if wild.is_empty() {
            return bucket.to_vec();
        }
        // merge two id-sorted buckets, preserving global id order
        let mut out = Vec::with_capacity(bucket.len() + wild.len());
        let (mut i, mut j) = (0, 0);
        while i < bucket.len() && j < wild.len() {
            if bucket[i].0 < wild[j].0 {
                out.push(bucket[i]);
                i += 1;
            } else {
                out.push(wild[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&bucket[i..]);
        out.extend_from_slice(&wild[j..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{assign_labels, chain, erdos_renyi};
    use crate::graph::GraphBuilder;
    use crate::iso::{is_subgraph_isomorphic, MatchOptions};
    use crate::mcs::mcs_edge_count;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The adjacency/bucket packing `build` inlined before it moved to
    /// the shared `crate::storage` packers — byte-for-byte the old
    /// code, kept as the reference the dedup must not drift from.
    fn legacy_packing(
        g: &Graph,
    ) -> (
        Vec<u32>,
        Vec<(NodeId, EdgeId)>,
        Vec<Label>,
        Vec<u32>,
        Vec<NodeId>,
    ) {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut nbr = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0u32);
        for v in g.nodes() {
            nbr.extend(g.neighbors(v));
            offsets.push(nbr.len() as u32);
        }
        let mut pairs: Vec<(Label, NodeId)> = g.nodes().map(|v| (g.node_label(v), v)).collect();
        pairs.sort_unstable_by_key(|&(l, v)| (l, v.0));
        let mut labels = Vec::new();
        let mut bucket_offsets = vec![0u32];
        let mut by_label = Vec::with_capacity(n);
        for (l, v) in pairs {
            if labels.last() != Some(&l) {
                if !labels.is_empty() {
                    bucket_offsets.push(by_label.len() as u32);
                }
                labels.push(l);
            }
            by_label.push(v);
        }
        if !labels.is_empty() {
            bucket_offsets.push(by_label.len() as u32);
        }
        (offsets, nbr, labels, bucket_offsets, by_label)
    }

    #[test]
    fn shared_packers_reproduce_the_legacy_packing_and_candidate_order() {
        // the empty graph exercises the degenerate [0] + [0] shape
        // (bucket_offsets always has exactly labels.len() + 1 entries,
        // the invariant the VQICSR01 image layout relies on)
        for g in [Graph::new(), random_graph(80, 0.1, 3, 2, 41)] {
            let (offsets, nbr, labels, bucket_offsets, by_label) = legacy_packing(&g);
            let idx = GraphIndex::build(&g);
            assert_eq!(idx.offsets, offsets);
            assert_eq!(idx.nbr, nbr);
            assert_eq!(idx.labels, labels);
            assert_eq!(idx.bucket_offsets, bucket_offsets);
            assert_eq!(idx.by_label, by_label);
            // VF2 candidate order is a pure function of the buckets:
            // equal buckets ⇒ identical candidate enumeration order
            for l in labels.iter().copied().chain([WILDCARD_LABEL]) {
                for wildcard in [false, true] {
                    let got = idx.candidate_nodes(l, wildcard);
                    let want: Vec<NodeId> = if wildcard {
                        g.nodes()
                            .filter(|&v| {
                                let nl = g.node_label(v);
                                nl == l || l == WILDCARD_LABEL || nl == WILDCARD_LABEL
                            })
                            .collect()
                    } else {
                        g.nodes().filter(|&v| g.node_label(v) == l).collect()
                    };
                    assert_eq!(got, want, "label {l} wildcard {wildcard}");
                }
            }
        }
    }

    fn random_graph(n: usize, p: f64, nl: u32, el: u32, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = erdos_renyi(n, p, 0, &mut rng);
        assign_labels(&mut g, nl, el, &mut rng);
        g
    }

    #[test]
    fn fingerprint_digest_is_stable_and_permutation_invariant() {
        for seed in 0..6u64 {
            let g = random_graph(14, 0.3, 3, 2, seed);
            let fp = Fingerprint::of(&g);
            // deterministic: same fingerprint, same digest
            assert_eq!(fp.digest(), Fingerprint::of(&g).digest());
            // node-relabeling invariant (fingerprints are order-free summaries)
            let perm: Vec<usize> = (0..g.node_count()).rev().collect();
            let gp = g.permuted(&perm);
            assert_eq!(Fingerprint::of(&gp), fp);
            assert_eq!(Fingerprint::of(&gp).digest(), fp.digest());
            // a changed graph changes the digest (no collision among these)
            let mut g2 = g.clone();
            g2.add_node(9);
            assert_ne!(Fingerprint::of(&g2).digest(), fp.digest());
        }
    }

    #[test]
    fn csr_neighbors_match_graph_neighbors() {
        for seed in 0..5u64 {
            let g = random_graph(12, 0.3, 3, 2, seed);
            let ix = GraphIndex::build(&g);
            assert_eq!(ix.node_count(), g.node_count());
            for v in g.nodes() {
                let direct: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
                assert_eq!(ix.neighbors(v), direct.as_slice());
                for u in g.nodes() {
                    assert_eq!(ix.edge_between(v, u), g.edge_between(v, u));
                }
            }
        }
    }

    #[test]
    fn label_buckets_partition_the_nodes() {
        let g = random_graph(20, 0.2, 4, 2, 42);
        let ix = GraphIndex::build(&g);
        let mut seen = 0;
        for l in 0..4u32 {
            let bucket = ix.nodes_with_label(l);
            assert!(bucket.windows(2).all(|w| w[0].0 < w[1].0), "ids ascending");
            for &v in bucket {
                assert_eq!(g.node_label(v), l);
            }
            seen += bucket.len();
        }
        assert_eq!(seen, g.node_count());
        assert!(ix.nodes_with_label(99).is_empty());
    }

    #[test]
    fn candidate_nodes_equal_naive_label_filter() {
        let mut g = random_graph(15, 0.25, 3, 2, 7);
        g.set_node_label(NodeId(3), WILDCARD_LABEL);
        let ix = GraphIndex::build(&g);
        for wildcard in [false, true] {
            for label in [0u32, 1, 2, WILDCARD_LABEL] {
                let naive: Vec<NodeId> = g
                    .nodes()
                    .filter(|&t| {
                        let tl = g.node_label(t);
                        label == tl
                            || (wildcard && (label == WILDCARD_LABEL || tl == WILDCARD_LABEL))
                    })
                    .collect();
                assert_eq!(
                    ix.candidate_nodes(label, wildcard),
                    naive,
                    "label {label} wildcard {wildcard}"
                );
            }
        }
    }

    #[test]
    fn node_sigs_are_containment_monotone_under_embedding() {
        // pattern node sig bits must be contained in the image's bits for
        // the identity embedding of a graph into itself
        let g = random_graph(10, 0.4, 2, 2, 9);
        let ix = GraphIndex::build(&g);
        for v in g.nodes() {
            let s = node_sig(&g, v);
            assert_eq!(s, ix.sig(v));
            assert_eq!(s.nbr_bits & ix.sig(v).nbr_bits, s.nbr_bits);
        }
    }

    #[test]
    fn fingerprint_feasibility_is_necessary() {
        // whenever an embedding exists, subgraph_feasible must say maybe
        for seed in 0..20u64 {
            let target = random_graph(10, 0.35, 3, 2, 100 + seed);
            let pattern = random_graph(4, 0.5, 3, 2, 200 + seed);
            let (pf, tf) = (Fingerprint::of(&pattern), Fingerprint::of(&target));
            for opts in [MatchOptions::default(), MatchOptions::with_wildcards()] {
                if is_subgraph_isomorphic(&pattern, &target, opts) {
                    assert!(
                        subgraph_feasible(&pf, &tf, opts.wildcard),
                        "fingerprint rejected an embeddable pattern (seed {seed})"
                    );
                }
            }
        }
        // and it does reject something obvious
        let small = Fingerprint::of(&chain(3, 1, 0));
        let big = Fingerprint::of(&chain(8, 1, 0));
        assert!(!subgraph_feasible(&big, &small, false));
    }

    #[test]
    fn degree_dominance_rejects_high_degree_patterns() {
        let hub = GraphBuilder::new()
            .nodes(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(0, 2, 0)
            .edge(0, 3, 0)
            .build(); // star: max degree 3
        let path = chain(5, 0, 0); // max degree 2, but more nodes/edges
        assert!(!subgraph_feasible(
            &Fingerprint::of(&hub),
            &Fingerprint::of(&path),
            false
        ));
    }

    #[test]
    fn mcs_upper_bound_dominates_true_mcs() {
        for seed in 0..25u64 {
            let a = random_graph(6, 0.5, 2, 2, 300 + seed);
            let b = random_graph(6, 0.5, 2, 2, 400 + seed);
            let ub = mcs_edge_upper_bound(&Fingerprint::of(&a), &Fingerprint::of(&b));
            let exact = mcs_edge_count(&a, &b);
            assert!(ub >= exact, "ub {ub} < mcs {exact} (seed {seed})");
        }
        // identical graphs: bound equals the edge count exactly
        let g = chain(6, 1, 0);
        let f = Fingerprint::of(&g);
        assert_eq!(mcs_edge_upper_bound(&f, &f), g.edge_count());
    }

    #[test]
    fn wildcard_graphs_skip_label_histogram_checks() {
        let mut p = chain(3, 7, 0);
        p.set_node_label(NodeId(0), WILDCARD_LABEL);
        let t = chain(4, 2, 0);
        // label histograms are disjoint, but wildcard matching may still
        // embed — the fingerprint must not reject
        let feasible = subgraph_feasible(&Fingerprint::of(&p), &Fingerprint::of(&t), true);
        assert!(feasible);
        // with wildcards disabled the histogram check applies and rejects
        assert!(!subgraph_feasible(
            &Fingerprint::of(&p),
            &Fingerprint::of(&t),
            false
        ));
    }
}
