//! VF2-style (sub)graph isomorphism with wildcard-label support.
//!
//! The pattern-selection systems use this module in three ways:
//!
//! * **coverage** — does canned pattern `p` occur in data graph `G`, and
//!   which edges of `G` do its embeddings touch;
//! * **results panel** — enumerate matches of a user query;
//! * **closure semantics** — cluster summary graphs carry
//!   [`WILDCARD_LABEL`](crate::graph::WILDCARD_LABEL) dummies that must
//!   match any label.
//!
//! The matcher is a classic VF2 backtracking search with a
//! most-constrained-first ordering of pattern nodes, label/degree
//! filtering, and an optional work budget so that adversarial inputs
//! degrade to "truncated" rather than "hung".
//!
//! ## Indexed matching
//!
//! Every entry point has an `_indexed` twin taking a pre-built
//! [`GraphIndex`] of the target. The indexed search (1) rejects the
//! whole pattern in constant time when the target's
//! [fingerprint](crate::index::Fingerprint) cannot host it (counted as
//! `kernel.iso.skip_fingerprint`), (2) enumerates unanchored candidates
//! from the target's label buckets instead of scanning every node,
//! (3) walks CSR neighbor slices instead of nested `Vec`s, and
//! (4) prunes candidates whose invariant signature cannot dominate the
//! pattern node's before attempting a map (counted as
//! `kernel.iso.pruned`). All four are necessary-condition filters, so
//! the indexed search reports **exactly the same embeddings in the same
//! order** as the naive one whenever the search runs to completion; a
//! `max_states`-truncated indexed search can only get *further* than
//! the naive one because pruned candidates don't spend budget.
//! Signature pruning switches itself off when wildcard matching is on
//! and either graph carries wildcard labels (bloom containment is not a
//! necessary condition under wildcards); the other three filters are
//! wildcard-safe.

use crate::graph::{EdgeId, Graph, Label, NodeId, WILDCARD_LABEL};
use crate::index::{node_sig, subgraph_feasible, Fingerprint, GraphIndex, NodeSig};
use vqi_runtime::{Budget, Meter, VqiError};

/// Options controlling a matching run.
#[derive(Debug, Clone, Copy)]
pub struct MatchOptions {
    /// Require induced embeddings (non-edges of the pattern must map to
    /// non-edges of the target). Subgraph *query* matching is non-induced.
    pub induced: bool,
    /// Treat [`WILDCARD_LABEL`] (on either side) as matching any label.
    pub wildcard: bool,
    /// Stop after this many embeddings have been reported.
    pub max_embeddings: usize,
    /// Backtracking-state budget; the search stops (possibly incomplete)
    /// once this many candidate pairs have been examined.
    pub max_states: u64,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            induced: false,
            wildcard: false,
            max_embeddings: usize::MAX,
            max_states: 50_000_000,
        }
    }
}

impl MatchOptions {
    /// Non-induced matching with wildcards enabled (closure-graph cover
    /// semantics).
    pub fn with_wildcards() -> Self {
        MatchOptions {
            wildcard: true,
            ..Default::default()
        }
    }

    /// Induced matching (used for isomorphism checks).
    pub fn induced() -> Self {
        MatchOptions {
            induced: true,
            ..Default::default()
        }
    }
}

#[inline]
fn labels_compatible(p: Label, t: Label, wildcard: bool) -> bool {
    p == t || (wildcard && (p == WILDCARD_LABEL || t == WILDCARD_LABEL))
}

/// The result of an embedding enumeration: whether the search space was
/// exhausted and how many embeddings were reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// False if the state budget or the embedding cap stopped the search.
    pub complete: bool,
    /// Number of embeddings reported to the visitor.
    pub embeddings: usize,
}

struct Vf2<'a, F: FnMut(&[NodeId]) -> bool> {
    pattern: &'a Graph,
    target: &'a Graph,
    /// compiled target index; `None` = naive scans
    idx: Option<&'a GraphIndex>,
    opts: MatchOptions,
    /// pattern-node visit order
    order: Vec<NodeId>,
    /// pattern-side invariant signatures (empty unless `use_sigs`)
    psigs: Vec<NodeSig>,
    /// signature pruning is sound (index present, wildcards can't fire)
    use_sigs: bool,
    /// mapping pattern -> target (u32::MAX = unmapped)
    core_p: Vec<u32>,
    /// reverse mapping target -> pattern
    core_t: Vec<u32>,
    states: u64,
    found: usize,
    /// candidates rejected by signature pruning (batched into the
    /// `kernel.iso.pruned` counter when the search returns)
    pruned: u64,
    /// optional budget meter, ticked once per examined candidate pair
    meter: Option<Meter>,
    /// set when the meter trips; the search stops and reports the error
    abort: Option<VqiError>,
    /// visitor; returns false to stop the whole search
    visit: F,
}

fn has_wildcard_labels(g: &Graph) -> bool {
    g.nodes().any(|v| g.node_label(v) == WILDCARD_LABEL)
        || g.edges().any(|e| g.edge_label(e) == WILDCARD_LABEL)
}

/// Computes a matching order for pattern nodes: start from the
/// highest-degree node of each component, then repeatedly take the
/// unvisited node with the most already-ordered neighbors (ties broken by
/// degree). Connected prefixes keep candidate sets small.
fn matching_order(pattern: &Graph) -> Vec<NodeId> {
    let n = pattern.node_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        // seed: unplaced node with max degree
        let seed = pattern
            .nodes()
            .filter(|v| !placed[v.index()])
            .max_by_key(|&v| pattern.degree(v))
            .expect("some node unplaced");
        placed[seed.index()] = true;
        order.push(seed);
        loop {
            let mut best: Option<(usize, usize, NodeId)> = None;
            for v in pattern.nodes() {
                if placed[v.index()] {
                    continue;
                }
                let connected = pattern
                    .neighbors(v)
                    .filter(|(m, _)| placed[m.index()])
                    .count();
                if connected == 0 {
                    continue;
                }
                let key = (connected, pattern.degree(v), v);
                if best.is_none_or(|b| (b.0, b.1, b.2) < key) {
                    best = Some(key);
                }
            }
            match best {
                Some((_, _, v)) => {
                    placed[v.index()] = true;
                    order.push(v);
                }
                None => break, // component exhausted; reseed
            }
        }
    }
    order
}

impl<'a, F: FnMut(&[NodeId]) -> bool> Vf2<'a, F> {
    fn new(
        pattern: &'a Graph,
        target: &'a Graph,
        idx: Option<&'a GraphIndex>,
        opts: MatchOptions,
        visit: F,
    ) -> Self {
        let use_sigs = match idx {
            Some(ix) => {
                !opts.wildcard
                    || (!ix.fingerprint().has_wildcard() && !has_wildcard_labels(pattern))
            }
            None => false,
        };
        let psigs = if use_sigs {
            pattern.nodes().map(|v| node_sig(pattern, v)).collect()
        } else {
            Vec::new()
        };
        Vf2 {
            pattern,
            target,
            idx,
            opts,
            order: matching_order(pattern),
            psigs,
            use_sigs,
            core_p: vec![u32::MAX; pattern.node_count()],
            core_t: vec![u32::MAX; target.node_count()],
            states: 0,
            found: 0,
            pruned: 0,
            meter: None,
            abort: None,
            visit,
        }
    }

    #[inline]
    fn target_edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        match self.idx {
            Some(ix) => ix.edge_between(u, v),
            None => self.target.edge_between(u, v),
        }
    }

    fn feasible(&self, p: NodeId, t: NodeId) -> bool {
        if !labels_compatible(
            self.pattern.node_label(p),
            self.target.node_label(t),
            self.opts.wildcard,
        ) {
            return false;
        }
        if self.pattern.degree(p) > self.target.degree(t) {
            return false;
        }
        // edges to already-mapped pattern neighbors must exist with
        // compatible labels
        for (q, pe) in self.pattern.neighbors(p) {
            let tq = self.core_p[q.index()];
            if tq == u32::MAX {
                continue;
            }
            match self.target_edge_between(t, NodeId(tq)) {
                Some(te) => {
                    if !labels_compatible(
                        self.pattern.edge_label(pe),
                        self.target.edge_label(te),
                        self.opts.wildcard,
                    ) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        if self.opts.induced {
            // mapped pattern nodes NOT adjacent to p must map to targets
            // not adjacent to t
            match self.idx {
                Some(ix) => {
                    for &(tn, _) in ix.neighbors(t) {
                        let pq = self.core_t[tn.index()];
                        if pq != u32::MAX && !self.pattern.has_edge(p, NodeId(pq)) {
                            return false;
                        }
                    }
                }
                None => {
                    for (tn, _) in self.target.neighbors(t) {
                        let pq = self.core_t[tn.index()];
                        if pq != u32::MAX && !self.pattern.has_edge(p, NodeId(pq)) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Signature check: `false` means mapping `p -> t` cannot be part of
    /// any full embedding (only invoked when `use_sigs` is sound).
    #[inline]
    fn sig_admits(&self, p: NodeId, ts: NodeSig) -> bool {
        let ps = self.psigs[p.index()];
        ps.label == ts.label && ps.degree <= ts.degree && ps.nbr_bits & ts.nbr_bits == ps.nbr_bits
    }

    /// Returns false if the search should stop entirely.
    fn search(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            self.found += 1;
            let mapping: Vec<NodeId> = self.core_p.iter().map(|&t| NodeId(t)).collect();
            if !(self.visit)(&mapping) || self.found >= self.opts.max_embeddings {
                return false;
            }
            return true;
        }
        let p = self.order[depth];
        // candidate targets: neighbors of the image of a mapped pattern
        // neighbor, or every unmapped target node if p starts a component
        let anchor = self
            .pattern
            .neighbors(p)
            .find(|(q, _)| self.core_p[q.index()] != u32::MAX)
            .map(|(q, _)| NodeId(self.core_p[q.index()]));
        let candidates: Vec<NodeId> = match (anchor, self.idx) {
            (Some(a), Some(ix)) => ix
                .neighbors(a)
                .iter()
                .map(|&(t, _)| t)
                .filter(|t| self.core_t[t.index()] == u32::MAX)
                .collect(),
            (Some(a), None) => self
                .target
                .neighbors(a)
                .map(|(t, _)| t)
                .filter(|t| self.core_t[t.index()] == u32::MAX)
                .collect(),
            // label buckets: same nodes the naive scan keeps after its
            // label check, in the same id order
            (None, Some(ix)) => ix
                .candidate_nodes(self.pattern.node_label(p), self.opts.wildcard)
                .into_iter()
                .filter(|t| self.core_t[t.index()] == u32::MAX)
                .collect(),
            (None, None) => self
                .target
                .nodes()
                .filter(|t| self.core_t[t.index()] == u32::MAX)
                .collect(),
        };
        for t in candidates {
            if self.use_sigs {
                if let Some(ix) = self.idx {
                    if !self.sig_admits(p, ix.sig(t)) {
                        // cannot complete any embedding: skip without
                        // spending search budget
                        self.pruned += 1;
                        continue;
                    }
                }
            }
            self.states += 1;
            if self.states > self.opts.max_states {
                return false;
            }
            if let Some(m) = &mut self.meter {
                if let Err(e) = m.tick() {
                    self.abort = Some(e);
                    return false;
                }
            }
            if self.feasible(p, t) {
                self.core_p[p.index()] = t.0;
                self.core_t[t.index()] = p.0;
                let cont = self.search(depth + 1);
                self.core_p[p.index()] = u32::MAX;
                self.core_t[t.index()] = u32::MAX;
                if !cont {
                    return false;
                }
            }
        }
        true
    }
}

fn enumerate_embeddings_full<F: FnMut(&[NodeId]) -> bool>(
    pattern: &Graph,
    target: &Graph,
    idx: Option<&GraphIndex>,
    opts: MatchOptions,
    meter: Option<Meter>,
    visit: F,
) -> Result<SearchOutcome, VqiError> {
    let trivially_empty = SearchOutcome {
        complete: true,
        embeddings: 0,
    };
    if pattern.node_count() == 0 {
        return Ok(trivially_empty);
    }
    if pattern.node_count() > target.node_count() || pattern.edge_count() > target.edge_count() {
        return Ok(trivially_empty);
    }
    if let Some(ix) = idx {
        // constant-time infeasibility: no embedding can exist, so the
        // (empty, complete) outcome is exact
        if !subgraph_feasible(&Fingerprint::of(pattern), ix.fingerprint(), opts.wildcard) {
            vqi_observe::incr("kernel.iso.skip_fingerprint", 1);
            return Ok(trivially_empty);
        }
    }
    let mut vf2 = Vf2::new(pattern, target, idx, opts, visit);
    vf2.meter = meter;
    let complete = vf2.search(0);
    if vf2.pruned > 0 {
        vqi_observe::incr("kernel.iso.pruned", vf2.pruned);
    }
    if let Some(e) = vf2.abort {
        return Err(e);
    }
    Ok(SearchOutcome {
        complete,
        embeddings: vf2.found,
    })
}

fn enumerate_embeddings_impl<F: FnMut(&[NodeId]) -> bool>(
    pattern: &Graph,
    target: &Graph,
    idx: Option<&GraphIndex>,
    opts: MatchOptions,
    visit: F,
) -> SearchOutcome {
    match enumerate_embeddings_full(pattern, target, idx, opts, None, visit) {
        Ok(out) => out,
        // unreachable: without a meter the search cannot abort
        Err(_) => SearchOutcome {
            complete: false,
            embeddings: 0,
        },
    }
}

/// Budget-aware embedding enumeration: a [`Meter`] from `budget` is
/// ticked once per examined candidate pair, so a tick quota trips at
/// the same state at any thread count, while a wall-clock deadline or
/// cancellation is observed within [`vqi_runtime::ctrl::POLL_INTERVAL`]
/// states. On a trip the error is returned and the embeddings visited
/// so far stand (the visitor has already seen them). With an unlimited
/// budget this is exactly [`enumerate_embeddings`] /
/// [`enumerate_embeddings_indexed`].
pub fn enumerate_embeddings_ctrl<F: FnMut(&[NodeId]) -> bool>(
    pattern: &Graph,
    target: &Graph,
    idx: Option<&GraphIndex>,
    opts: MatchOptions,
    budget: &Budget,
    visit: F,
) -> Result<SearchOutcome, VqiError> {
    enumerate_embeddings_full(
        pattern,
        target,
        idx,
        opts,
        Some(budget.meter("kernel.vf2")),
        visit,
    )
}

/// Budget-aware [`is_subgraph_isomorphic`]; `Err` when the budget
/// tripped before an embedding was found or the space was exhausted.
pub fn is_subgraph_isomorphic_ctrl(
    pattern: &Graph,
    target: &Graph,
    idx: Option<&GraphIndex>,
    opts: MatchOptions,
    budget: &Budget,
) -> Result<bool, VqiError> {
    let mut found = false;
    match enumerate_embeddings_ctrl(pattern, target, idx, opts, budget, |_| {
        found = true;
        false
    }) {
        Ok(_) => Ok(found),
        // an embedding seen before the trip still answers the question
        Err(_) if found => Ok(true),
        Err(e) => Err(e),
    }
}

/// Budget-aware [`count_embeddings`] / [`count_embeddings_indexed`].
pub fn count_embeddings_ctrl(
    pattern: &Graph,
    target: &Graph,
    idx: Option<&GraphIndex>,
    opts: MatchOptions,
    budget: &Budget,
) -> Result<usize, VqiError> {
    enumerate_embeddings_ctrl(pattern, target, idx, opts, budget, |_| true).map(|o| o.embeddings)
}

/// Budget-aware [`covered_edges`] / [`covered_edges_indexed`].
pub fn covered_edges_ctrl(
    pattern: &Graph,
    target: &Graph,
    idx: Option<&GraphIndex>,
    opts: MatchOptions,
    budget: &Budget,
) -> Result<Vec<EdgeId>, VqiError> {
    let mut covered = vec![false; target.edge_count()];
    enumerate_embeddings_ctrl(pattern, target, idx, opts, budget, |mapping| {
        for e in pattern.edges() {
            let (u, v) = pattern.endpoints(e);
            let te = match idx {
                Some(ix) => ix.edge_between(mapping[u.index()], mapping[v.index()]),
                None => target.edge_between(mapping[u.index()], mapping[v.index()]),
            };
            if let Some(te) = te {
                covered[te.index()] = true;
            }
        }
        true
    })?;
    Ok(covered
        .iter()
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(i, _)| EdgeId(i as u32))
        .collect())
}

/// Enumerates embeddings of `pattern` into `target`, invoking `visit` with
/// each mapping (`mapping[p.index()]` = target node). The visitor returns
/// `false` to stop early.
pub fn enumerate_embeddings<F: FnMut(&[NodeId]) -> bool>(
    pattern: &Graph,
    target: &Graph,
    opts: MatchOptions,
    visit: F,
) -> SearchOutcome {
    enumerate_embeddings_impl(pattern, target, None, opts, visit)
}

/// [`enumerate_embeddings`] against a pre-built index of `target`: same
/// embeddings in the same order (see the module docs), reached faster.
/// `idx` must have been built from this exact `target`.
pub fn enumerate_embeddings_indexed<F: FnMut(&[NodeId]) -> bool>(
    pattern: &Graph,
    target: &Graph,
    idx: &GraphIndex,
    opts: MatchOptions,
    visit: F,
) -> SearchOutcome {
    enumerate_embeddings_impl(pattern, target, Some(idx), opts, visit)
}

/// Collects up to `opts.max_embeddings` embeddings as mapping vectors.
pub fn find_embeddings(pattern: &Graph, target: &Graph, opts: MatchOptions) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    enumerate_embeddings(pattern, target, opts, |m| {
        out.push(m.to_vec());
        true
    });
    out
}

/// Finds one embedding if any exists.
pub fn find_embedding(pattern: &Graph, target: &Graph, opts: MatchOptions) -> Option<Vec<NodeId>> {
    let mut out = None;
    enumerate_embeddings(pattern, target, opts, |m| {
        out = Some(m.to_vec());
        false
    });
    out
}

/// True if `pattern` is subgraph-isomorphic to `target`.
///
/// ```
/// use vqi_graph::generate::{chain, cycle};
/// use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
///
/// let path = chain(3, 0, 0);
/// let hexagon = cycle(6, 0, 0);
/// assert!(is_subgraph_isomorphic(&path, &hexagon, MatchOptions::default()));
/// assert!(!is_subgraph_isomorphic(&hexagon, &path, MatchOptions::default()));
/// ```
pub fn is_subgraph_isomorphic(pattern: &Graph, target: &Graph, opts: MatchOptions) -> bool {
    find_embedding(pattern, target, opts).is_some()
}

/// [`is_subgraph_isomorphic`] against a pre-built index of `target`.
pub fn is_subgraph_isomorphic_indexed(
    pattern: &Graph,
    target: &Graph,
    idx: &GraphIndex,
    opts: MatchOptions,
) -> bool {
    let mut found = false;
    enumerate_embeddings_indexed(pattern, target, idx, opts, |_| {
        found = true;
        false
    });
    found
}

/// Counts embeddings (up to `opts.max_embeddings`).
pub fn count_embeddings(pattern: &Graph, target: &Graph, opts: MatchOptions) -> usize {
    enumerate_embeddings(pattern, target, opts, |_| true).embeddings
}

/// [`count_embeddings`] against a pre-built index of `target`.
pub fn count_embeddings_indexed(
    pattern: &Graph,
    target: &Graph,
    idx: &GraphIndex,
    opts: MatchOptions,
) -> usize {
    enumerate_embeddings_indexed(pattern, target, idx, opts, |_| true).embeddings
}

/// True if `a` and `b` are isomorphic as labeled graphs.
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.node_count() != b.node_count()
        || a.edge_count() != b.edge_count()
        || a.node_label_multiset() != b.node_label_multiset()
        || a.edge_label_multiset() != b.edge_label_multiset()
    {
        return false;
    }
    is_subgraph_isomorphic(a, b, MatchOptions::induced())
}

/// The set of target edge ids touched by any embedding of `pattern`
/// (deduplicated, sorted). Enumeration is capped by `opts`; with the
/// default caps this is exact for the small patterns used in practice.
pub fn covered_edges(pattern: &Graph, target: &Graph, opts: MatchOptions) -> Vec<EdgeId> {
    let mut covered = vec![false; target.edge_count()];
    enumerate_embeddings(pattern, target, opts, |mapping| {
        for e in pattern.edges() {
            let (u, v) = pattern.endpoints(e);
            if let Some(te) = target.edge_between(mapping[u.index()], mapping[v.index()]) {
                covered[te.index()] = true;
            }
        }
        true
    });
    covered
        .iter()
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(i, _)| EdgeId(i as u32))
        .collect()
}

/// [`covered_edges`] against a pre-built index of `target`.
pub fn covered_edges_indexed(
    pattern: &Graph,
    target: &Graph,
    idx: &GraphIndex,
    opts: MatchOptions,
) -> Vec<EdgeId> {
    let mut covered = vec![false; target.edge_count()];
    enumerate_embeddings_indexed(pattern, target, idx, opts, |mapping| {
        for e in pattern.edges() {
            let (u, v) = pattern.endpoints(e);
            if let Some(te) = idx.edge_between(mapping[u.index()], mapping[v.index()]) {
                covered[te.index()] = true;
            }
        }
        true
    });
    covered
        .iter()
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(i, _)| EdgeId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn triangle(l: Label) -> Graph {
        GraphBuilder::new()
            .nodes(&[l, l, l])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build()
    }

    fn path(n: usize, l: Label) -> Graph {
        let mut g = Graph::new();
        let mut prev = g.add_node(l);
        for _ in 1..n {
            let cur = g.add_node(l);
            g.add_edge(prev, cur, 0);
            prev = cur;
        }
        g
    }

    #[test]
    fn triangle_in_triangle() {
        let t = triangle(5);
        assert!(is_subgraph_isomorphic(&t, &t, MatchOptions::default()));
        // 6 automorphisms
        assert_eq!(count_embeddings(&t, &t, MatchOptions::default()), 6);
    }

    #[test]
    fn path_in_triangle_non_induced_only() {
        let p = path(3, 5);
        let t = triangle(5);
        assert!(is_subgraph_isomorphic(&p, &t, MatchOptions::default()));
        // induced P3 does not exist in a triangle
        assert!(!is_subgraph_isomorphic(&p, &t, MatchOptions::induced()));
    }

    #[test]
    fn labels_block_matches() {
        let p = triangle(1);
        let t = triangle(2);
        assert!(!is_subgraph_isomorphic(&p, &t, MatchOptions::default()));
        // wildcard pattern matches anything
        let mut w = triangle(WILDCARD_LABEL);
        w.set_edge_label(EdgeId(0), WILDCARD_LABEL);
        assert!(is_subgraph_isomorphic(
            &w,
            &t,
            MatchOptions::with_wildcards()
        ));
        assert!(!is_subgraph_isomorphic(&w, &t, MatchOptions::default()));
    }

    #[test]
    fn edge_labels_must_match() {
        let p = GraphBuilder::new().nodes(&[0, 0]).edge(0, 1, 7).build();
        let t = GraphBuilder::new().nodes(&[0, 0]).edge(0, 1, 8).build();
        assert!(!is_subgraph_isomorphic(&p, &t, MatchOptions::default()));
        let t2 = GraphBuilder::new().nodes(&[0, 0]).edge(0, 1, 7).build();
        assert!(is_subgraph_isomorphic(&p, &t2, MatchOptions::default()));
    }

    #[test]
    fn bigger_pattern_never_matches() {
        let p = path(4, 0);
        let t = path(3, 0);
        assert!(!is_subgraph_isomorphic(&p, &t, MatchOptions::default()));
    }

    #[test]
    fn empty_pattern_has_no_embeddings() {
        let t = triangle(0);
        assert_eq!(
            count_embeddings(&Graph::new(), &t, MatchOptions::default()),
            0
        );
    }

    #[test]
    fn disconnected_pattern_matches() {
        // two isolated labeled nodes as pattern
        let mut p = Graph::new();
        p.add_node(1);
        p.add_node(2);
        let mut t = Graph::new();
        let a = t.add_node(1);
        let b = t.add_node(2);
        t.add_edge(a, b, 0);
        assert!(is_subgraph_isomorphic(&p, &t, MatchOptions::default()));
        // induced: the two images must not be adjacent -> fails here
        assert!(!is_subgraph_isomorphic(&p, &t, MatchOptions::induced()));
    }

    #[test]
    fn embedding_mappings_are_valid() {
        let p = path(3, 5);
        let t = triangle(5);
        for m in find_embeddings(&p, &t, MatchOptions::default()) {
            assert_eq!(m.len(), 3);
            for e in p.edges() {
                let (u, v) = p.endpoints(e);
                assert!(t.has_edge(m[u.index()], m[v.index()]));
            }
        }
    }

    #[test]
    fn covered_edges_of_triangle_pattern() {
        // target: triangle plus a pendant edge; a triangle pattern covers
        // exactly the triangle edges
        let mut t = triangle(5);
        let x = t.add_node(5);
        t.add_edge(NodeId(0), x, 0);
        let covered = covered_edges(&triangle(5), &t, MatchOptions::default());
        assert_eq!(covered, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn isomorphism_is_permutation_invariant() {
        let g = GraphBuilder::new()
            .nodes(&[1, 2, 3, 4])
            .edge(0, 1, 9)
            .edge(1, 2, 8)
            .edge(2, 3, 7)
            .edge(3, 0, 6)
            .build();
        let h = g.permuted(&[3, 1, 0, 2]);
        assert!(are_isomorphic(&g, &h));
        // changing one edge label breaks it
        let mut h2 = h.clone();
        h2.set_edge_label(EdgeId(0), 99);
        assert!(!are_isomorphic(&g, &h2));
    }

    #[test]
    fn max_embeddings_caps_enumeration() {
        let t = triangle(0);
        let opts = MatchOptions {
            max_embeddings: 2,
            ..Default::default()
        };
        assert_eq!(count_embeddings(&t, &t, opts), 2);
    }

    #[test]
    fn indexed_matching_is_answer_identical_to_naive() {
        use crate::generate::{assign_labels, erdos_renyi};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut target = erdos_renyi(14, 0.3, 0, &mut rng);
            assign_labels(&mut target, 3, 2, &mut rng);
            let mut pattern = erdos_renyi(4, 0.6, 0, &mut rng);
            assign_labels(&mut pattern, 3, 2, &mut rng);
            if seed % 3 == 0 {
                // exercise the wildcard paths (sig pruning must bow out)
                target.set_node_label(NodeId(0), WILDCARD_LABEL);
                pattern.set_node_label(NodeId(1), WILDCARD_LABEL);
            }
            let idx = GraphIndex::build(&target);
            for opts in [
                MatchOptions::default(),
                MatchOptions::induced(),
                MatchOptions::with_wildcards(),
            ] {
                let naive = find_embeddings(&pattern, &target, opts);
                let mut indexed = Vec::new();
                enumerate_embeddings_indexed(&pattern, &target, &idx, opts, |m| {
                    indexed.push(m.to_vec());
                    true
                });
                assert_eq!(naive, indexed, "seed {seed}: embeddings (order included)");
                assert_eq!(
                    count_embeddings(&pattern, &target, opts),
                    count_embeddings_indexed(&pattern, &target, &idx, opts),
                    "seed {seed}: counts"
                );
                assert_eq!(
                    is_subgraph_isomorphic(&pattern, &target, opts),
                    is_subgraph_isomorphic_indexed(&pattern, &target, &idx, opts),
                    "seed {seed}: existence"
                );
                assert_eq!(
                    covered_edges(&pattern, &target, opts),
                    covered_edges_indexed(&pattern, &target, &idx, opts),
                    "seed {seed}: covered edges"
                );
            }
        }
    }

    #[test]
    fn indexed_matching_handles_disconnected_patterns() {
        // disconnected patterns re-seed the matching order, exercising
        // the unanchored label-bucket path at depth > 0
        let mut p = Graph::new();
        p.add_node(1);
        p.add_node(2);
        let mut t = Graph::new();
        let a = t.add_node(1);
        let b = t.add_node(2);
        t.add_edge(a, b, 0);
        let idx = GraphIndex::build(&t);
        for opts in [MatchOptions::default(), MatchOptions::induced()] {
            assert_eq!(
                is_subgraph_isomorphic(&p, &t, opts),
                is_subgraph_isomorphic_indexed(&p, &t, &idx, opts)
            );
        }
    }

    #[test]
    fn fingerprint_skip_reports_complete_empty_outcome() {
        // label histograms disjoint: the fingerprint rejects before any
        // search happens, and the outcome is exact
        let p = path(3, 1);
        let t = path(8, 2);
        let idx = GraphIndex::build(&t);
        let out = enumerate_embeddings_indexed(&p, &t, &idx, MatchOptions::default(), |_| true);
        assert!(out.complete);
        assert_eq!(out.embeddings, 0);
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        use crate::generate::{assign_labels, erdos_renyi};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let b = Budget::unlimited();
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut target = erdos_renyi(12, 0.3, 0, &mut rng);
            assign_labels(&mut target, 3, 2, &mut rng);
            let mut pattern = erdos_renyi(4, 0.6, 0, &mut rng);
            assign_labels(&mut pattern, 3, 2, &mut rng);
            let idx = GraphIndex::build(&target);
            let opts = MatchOptions::default();
            assert_eq!(
                count_embeddings(&pattern, &target, opts),
                count_embeddings_ctrl(&pattern, &target, None, opts, &b).unwrap()
            );
            assert_eq!(
                covered_edges_indexed(&pattern, &target, &idx, opts),
                covered_edges_ctrl(&pattern, &target, Some(&idx), opts, &b).unwrap()
            );
            assert_eq!(
                is_subgraph_isomorphic(&pattern, &target, opts),
                is_subgraph_isomorphic_ctrl(&pattern, &target, None, opts, &b).unwrap()
            );
        }
    }

    #[test]
    fn tick_quota_trips_deterministically_mid_search() {
        let t = triangle(0);
        // enumerate the 6 automorphisms with a quota that trips midway;
        // the prefix of embeddings seen before the trip must be stable
        let run = |ticks: u64| -> (Vec<Vec<NodeId>>, Result<SearchOutcome, VqiError>) {
            let b = Budget::unlimited().with_kernel_ticks(ticks);
            let mut seen = Vec::new();
            let r = enumerate_embeddings_ctrl(&t, &t, None, MatchOptions::default(), &b, |m| {
                seen.push(m.to_vec());
                true
            });
            (seen, r)
        };
        let full = find_embeddings(&t, &t, MatchOptions::default());
        let (seen_a, ra) = run(5);
        let (seen_b, rb) = run(5);
        assert_eq!(seen_a, seen_b, "same quota, same prefix");
        assert_eq!(ra, rb);
        assert!(matches!(ra, Err(VqiError::QuotaExceeded { .. })));
        assert!(seen_a.len() < full.len());
        assert_eq!(seen_a[..], full[..seen_a.len()], "prefix of full order");
        // a generous quota completes with the plain result
        let (seen_full, r_full) = run(1_000);
        assert_eq!(seen_full, full);
        assert!(r_full.unwrap().complete);
    }

    #[test]
    fn canceled_budget_stops_the_search() {
        let token = vqi_runtime::CancelToken::new();
        token.cancel();
        let b = Budget::unlimited().with_cancel(token);
        // large search so the poll interval is reached
        let mut t = Graph::new();
        let nodes: Vec<NodeId> = (0..18).map(|_| t.add_node(0)).collect();
        for i in 0..18 {
            for j in (i + 1)..18 {
                t.add_edge(nodes[i], nodes[j], 0);
            }
        }
        let p = path(6, 0);
        let r = count_embeddings_ctrl(&p, &t, None, MatchOptions::default(), &b);
        assert!(matches!(r, Err(VqiError::Canceled { .. })));
    }

    #[test]
    fn state_budget_truncates() {
        let p = path(6, 0);
        let mut t = Graph::new();
        // a 20-clique with uniform labels: many embeddings
        let nodes: Vec<NodeId> = (0..20).map(|_| t.add_node(0)).collect();
        for i in 0..20 {
            for j in (i + 1)..20 {
                t.add_edge(nodes[i], nodes[j], 0);
            }
        }
        let opts = MatchOptions {
            max_states: 100,
            ..Default::default()
        };
        let out = enumerate_embeddings(&p, &t, opts, |_| true);
        assert!(!out.complete);
    }
}
