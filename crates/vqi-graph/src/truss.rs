//! k-truss decomposition.
//!
//! The *k-truss* of a graph is the maximal subgraph in which every edge is
//! contained in at least `k - 2` triangles of the subgraph. The
//! *trussness* of an edge is the largest `k` for which the edge survives
//! in the k-truss. TATTOO uses the decomposition to split a large network
//! into a dense *truss-infested* region `G_T` (edges with trussness ≥ k,
//! i.e. triangle-rich) and a sparse *truss-oblivious* region `G_O` (the
//! remaining edges), mirroring the triangle-like vs. non-triangle-like
//! substructures observed in real query logs.
//!
//! Implemented with the standard peeling algorithm: compute edge supports
//! (triangle counts), then repeatedly remove the edge of minimum support,
//! decrementing the supports of the edges it formed triangles with.
//!
//! **Parallelism.** [`edge_supports`] counts triangles in parallel:
//! root nodes are split into contiguous chunks, each worker accumulates a
//! private `Vec<u32>` of per-edge counts, and the partials are summed in
//! chunk index order. Every triangle `u < v < w` is attributed to its
//! minimum node `u` exactly once, so the per-chunk counts partition the
//! total and the `u32` sums are exactly associative — the result is
//! bit-identical to [`edge_supports_seq`] at any thread count. The peel
//! itself is inherently sequential, but [`trussness`] materializes every
//! triangle once up front (a second mark-trick pass, laid out as a
//! per-edge CSR of partner-edge pairs) so each removal just walks its
//! edge's triangle list — no adjacency lookups at all, instead of the
//! baseline's linear `edge_between` scan per neighbor of the removed
//! edge (`O(deg a · deg)` per removal). [`trussness_baseline`] keeps the
//! pre-optimization path for regression tests and benchmarks. Trussness
//! values are unique whatever the peel's tie-breaking, so both paths
//! agree exactly.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::par;
use vqi_runtime::{Budget, Meter, VqiError};

/// Per-edge triangle counts ("support") — single-threaded reference.
pub fn edge_supports_seq(g: &Graph) -> Vec<u32> {
    supports_of_roots(g, 0..g.node_count())
}

/// Triangle counts attributed to root nodes in `roots` only: the
/// mark[] trick per root `u`, counting triangles `u < v < w`. With the
/// full range this is the classic sequential algorithm; with a subrange
/// it is one parallel worker's partial.
fn supports_of_roots(g: &Graph, roots: std::ops::Range<usize>) -> Vec<u32> {
    let mut support = vec![0u32; g.edge_count()];
    let mut mark = vec![u32::MAX; g.node_count()];
    for u in roots.map(|i| NodeId(i as u32)) {
        for (v, e) in g.neighbors(u) {
            mark[v.index()] = e.0;
        }
        for (v, uv) in g.neighbors(u) {
            if v <= u {
                continue;
            }
            for (w, vw) in g.neighbors(v) {
                if w <= v {
                    continue;
                }
                let uw = mark[w.index()];
                if uw != u32::MAX && w != u {
                    support[uv.index()] += 1;
                    support[vw.index()] += 1;
                    support[uw as usize] += 1;
                }
            }
        }
        for (v, _) in g.neighbors(u) {
            mark[v.index()] = u32::MAX;
        }
    }
    support
}

/// Per-edge triangle counts ("support").
///
/// Runs the parallel chunked count when the [`par`] executor has more
/// than one thread available, and the sequential reference otherwise —
/// the outputs are bit-identical either way (exact `u32` sums merged in
/// chunk index order).
pub fn edge_supports(g: &Graph) -> Vec<u32> {
    // the span covers both paths so span counts stay thread-count
    // invariant; only the .chunks counter is parallel-path specific
    let _s = vqi_observe::span("kernel.truss.supports");
    if par::num_threads() <= 1 || g.node_count() < 2 {
        return edge_supports_seq(g);
    }
    let partials = par::map_chunks(g.node_count(), |roots| supports_of_roots(g, roots));
    vqi_observe::incr("kernel.truss.supports.chunks", partials.len() as u64);
    let mut support = vec![0u32; g.edge_count()];
    // merge per-worker accumulators in chunk index order
    for part in partials {
        for (s, p) in support.iter_mut().zip(part) {
            *s += p;
        }
    }
    support
}

/// The bucket-queue peel, generic over the triangle-partner enumeration
/// so the optimized and baseline paths share every other instruction.
/// `partners(e, a, b, removed, f)` must call `f(aw, bw)` once for every
/// live pair of edges `a--w`, `b--w` completing a triangle with
/// `e = a--b` (`a` is the lower-degree endpoint).
fn peel(
    g: &Graph,
    mut support: Vec<u32>,
    partners: impl Fn(EdgeId, NodeId, NodeId, &[bool], &mut dyn FnMut(EdgeId, EdgeId)),
    mut meter: Option<Meter>,
) -> Result<Vec<u32>, VqiError> {
    let m = g.edge_count();
    let mut truss = vec![0u32; m];
    let mut removed = vec![false; m];

    // bucket queue over supports
    let max_sup = support.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<EdgeId>> = vec![Vec::new(); max_sup + 1];
    for e in g.edges() {
        buckets[support[e.index()] as usize].push(e);
    }
    let mut k = 2u32;
    let mut processed = 0usize;
    let mut cursor = 0usize;
    while processed < m {
        // one budget tick per peeled edge
        if let Some(mt) = &mut meter {
            mt.tick()?;
        }
        // find the lowest non-empty bucket at or below the current level
        let mut e_opt = None;
        while cursor < buckets.len() {
            // lazily skip stale entries (support decreased since insertion)
            while let Some(&e) = buckets[cursor].last() {
                if removed[e.index()] || support[e.index()] as usize != cursor {
                    buckets[cursor].pop();
                } else {
                    break;
                }
            }
            if buckets[cursor].is_empty() {
                cursor += 1;
            } else {
                e_opt = Some(buckets[cursor].pop().unwrap());
                break;
            }
        }
        let e = match e_opt {
            Some(e) => e,
            None => break,
        };
        let sup_e = support[e.index()];
        k = k.max(sup_e + 2);
        truss[e.index()] = k;
        removed[e.index()] = true;
        processed += 1;

        // decrement supports of edges forming triangles with e
        let (u, v) = g.endpoints(e);
        let (a, b) = if g.degree(u) <= g.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        partners(e, a, b, &removed, &mut |aw, bw| {
            for &f in &[aw, bw] {
                if support[f.index()] > 0 {
                    support[f.index()] -= 1;
                    let s = support[f.index()] as usize;
                    buckets[s].push(f);
                    if s < cursor {
                        cursor = s;
                    }
                }
            }
        });
    }
    Ok(truss)
}

/// The trussness of every edge: the largest `k` such that the edge belongs
/// to the k-truss. Edges in no triangle have trussness 2.
///
/// Per-edge triangle lists in CSR layout: `pairs[offsets[e]..offsets[e+1]]`
/// are the `(f1, f2)` partner-edge pairs of every triangle containing
/// edge `e`. Sized exactly by the supports (each triangle contributes
/// one entry to each of its three edges).
struct TriangleLists {
    offsets: Vec<usize>,
    pairs: Vec<(EdgeId, EdgeId)>,
}

impl TriangleLists {
    fn build(g: &Graph, support: &[u32]) -> TriangleLists {
        let m = g.edge_count();
        let mut offsets = vec![0usize; m + 1];
        for e in 0..m {
            offsets[e + 1] = offsets[e] + support[e] as usize;
        }
        let mut pairs = vec![(EdgeId(0), EdgeId(0)); offsets[m]];
        let mut cursor = offsets.clone();
        let mut push = |e: EdgeId, f1: EdgeId, f2: EdgeId| {
            pairs[cursor[e.index()]] = (f1, f2);
            cursor[e.index()] += 1;
        };
        // the same mark-trick enumeration as supports_of_roots, recording
        // each triangle u < v < w on all three of its edges
        let mut mark = vec![u32::MAX; g.node_count()];
        for u in g.nodes() {
            for (v, e) in g.neighbors(u) {
                mark[v.index()] = e.0;
            }
            for (v, uv) in g.neighbors(u) {
                if v <= u {
                    continue;
                }
                for (w, vw) in g.neighbors(v) {
                    if w <= v {
                        continue;
                    }
                    let uw = mark[w.index()];
                    if uw != u32::MAX && w != u {
                        let uw = EdgeId(uw);
                        push(uv, vw, uw);
                        push(vw, uv, uw);
                        push(uw, uv, vw);
                    }
                }
            }
            for (v, _) in g.neighbors(u) {
                mark[v.index()] = u32::MAX;
            }
        }
        TriangleLists { offsets, pairs }
    }

    #[inline]
    fn of(&self, e: EdgeId) -> &[(EdgeId, EdgeId)] {
        &self.pairs[self.offsets[e.index()]..self.offsets[e.index() + 1]]
    }
}

/// Supports come from the (parallel) [`edge_supports`]; the peel walks
/// precomputed per-edge [`TriangleLists`] instead of probing adjacency.
/// Output is identical to [`trussness_baseline`]: both enumerate exactly
/// the live triangles of the removed edge, supports reach the same
/// values whatever the decrement order, and trussness is unique
/// regardless of tie-breaks among equal-support edges.
pub fn trussness(g: &Graph) -> Vec<u32> {
    match trussness_full(g, None) {
        Ok(t) => t,
        // unreachable: without a meter the peel cannot abort
        Err(_) => Vec::new(),
    }
}

/// Budget-aware [`trussness`]: one [`Meter`] tick per peeled edge. A
/// deterministic tick quota trips at the same edge regardless of
/// thread count; deadlines and cancellation are observed within
/// [`vqi_runtime::ctrl::POLL_INTERVAL`] peels. With an unlimited
/// budget the result equals [`trussness`] exactly.
pub fn trussness_ctrl(g: &Graph, ctrl: &Budget) -> Result<Vec<u32>, VqiError> {
    ctrl.check("kernel.truss")?;
    trussness_full(g, Some(ctrl.meter("kernel.truss")))
}

fn trussness_full(g: &Graph, meter: Option<Meter>) -> Result<Vec<u32>, VqiError> {
    let _s = vqi_observe::span("kernel.truss.peel");
    vqi_observe::incr("kernel.truss.peel.edges", g.edge_count() as u64);
    let support = edge_supports(g);
    let tri = TriangleLists::build(g, &support);
    vqi_observe::incr("kernel.truss.triangles", (tri.pairs.len() / 3) as u64);
    peel(
        g,
        support,
        |e, _a, _b, removed, f| {
            for &(f1, f2) in tri.of(e) {
                if !removed[f1.index()] && !removed[f2.index()] {
                    f(f1, f2);
                }
            }
        },
        meter,
    )
}

/// The pre-optimization trussness path: sequential supports and linear
/// `edge_between` scans in the peel. Kept as the reference for the
/// regression tests and the `exp_pipelines` benchmark baseline.
pub fn trussness_baseline(g: &Graph) -> Vec<u32> {
    let support = edge_supports_seq(g);
    let peeled = peel(
        g,
        support,
        |_e, a, b, removed, f| {
            for (w, aw) in g.neighbors(a) {
                if removed[aw.index()] || w == b {
                    continue;
                }
                if let Some(bw) = g.edge_between(b, w) {
                    if !removed[bw.index()] {
                        f(aw, bw);
                    }
                }
            }
        },
        None,
    );
    // unreachable Err: without a meter the peel cannot abort
    peeled.unwrap_or_default()
}

/// The decomposition TATTOO operates on.
#[derive(Debug, Clone)]
pub struct TrussDecomposition {
    /// Trussness per edge of the original graph.
    pub trussness: Vec<u32>,
    /// Threshold used for the split.
    pub k: u32,
    /// Edges of the truss-infested region (trussness ≥ k).
    pub infested_edges: Vec<EdgeId>,
    /// Edges of the truss-oblivious region (trussness < k).
    pub oblivious_edges: Vec<EdgeId>,
}

impl TrussDecomposition {
    /// Materializes the truss-infested region `G_T` as a graph, returning
    /// it with the node mapping back to the original graph.
    pub fn infested_graph(&self, g: &Graph) -> (Graph, Vec<NodeId>) {
        g.edge_subgraph(&self.infested_edges)
    }

    /// Materializes the truss-oblivious region `G_O`.
    pub fn oblivious_graph(&self, g: &Graph) -> (Graph, Vec<NodeId>) {
        g.edge_subgraph(&self.oblivious_edges)
    }
}

/// Splits `g` into truss-infested (trussness ≥ k) and truss-oblivious
/// regions. `k = 3` separates "in at least one triangle of the 3-truss"
/// from the rest and is TATTOO's default.
///
/// ```
/// use vqi_graph::generate::{clique, chain};
/// use vqi_graph::truss::decompose;
/// use vqi_graph::NodeId;
///
/// // a K4 with a pendant edge: the clique is 4-truss, the tail is not
/// let mut g = clique(4, 0, 0);
/// let tail = g.add_node(0);
/// g.add_edge(NodeId(0), tail, 0);
/// let d = decompose(&g, 3);
/// assert_eq!(d.infested_edges.len(), 6);
/// assert_eq!(d.oblivious_edges.len(), 1);
/// ```
pub fn decompose(g: &Graph, k: u32) -> TrussDecomposition {
    split(g, k, trussness(g))
}

/// Budget-aware [`decompose`]; see [`trussness_ctrl`] for the budget
/// semantics. With an unlimited budget the result equals
/// [`decompose`] exactly.
pub fn decompose_ctrl(g: &Graph, k: u32, ctrl: &Budget) -> Result<TrussDecomposition, VqiError> {
    Ok(split(g, k, trussness_ctrl(g, ctrl)?))
}

fn split(g: &Graph, k: u32, t: Vec<u32>) -> TrussDecomposition {
    let mut infested = Vec::new();
    let mut oblivious = Vec::new();
    for e in g.edges() {
        if t[e.index()] >= k {
            infested.push(e);
        } else {
            oblivious.push(e);
        }
    }
    TrussDecomposition {
        trussness: t,
        k,
        infested_edges: infested,
        oblivious_edges: oblivious,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn clique(n: usize) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(0)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(nodes[i], nodes[j], 0);
            }
        }
        g
    }

    #[test]
    fn supports_of_triangle() {
        let g = clique(3);
        assert_eq!(edge_supports(&g), vec![1, 1, 1]);
    }

    #[test]
    fn supports_of_path_are_zero() {
        let g = GraphBuilder::new()
            .nodes(&[0; 3])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        assert_eq!(edge_supports(&g), vec![0, 0]);
    }

    #[test]
    fn trussness_of_clique_is_n() {
        for n in [3usize, 4, 5, 6] {
            let g = clique(n);
            let t = trussness(&g);
            assert!(t.iter().all(|&x| x == n as u32), "K{n} trussness {t:?}");
        }
    }

    #[test]
    fn trussness_of_tree_is_two() {
        let g = GraphBuilder::new()
            .nodes(&[0; 5])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(1, 3, 0)
            .edge(3, 4, 0)
            .build();
        assert!(trussness(&g).iter().all(|&x| x == 2));
    }

    #[test]
    fn mixed_graph_trussness() {
        // K4 (nodes 0-3) with a pendant path 3-4-5
        let mut g = clique(4);
        let n4 = g.add_node(0);
        let n5 = g.add_node(0);
        g.add_edge(NodeId(3), n4, 0);
        g.add_edge(n4, n5, 0);
        let t = trussness(&g);
        // 6 clique edges are 4-truss, 2 path edges are 2-truss
        assert_eq!(t.iter().filter(|&&x| x == 4).count(), 6);
        assert_eq!(t.iter().filter(|&&x| x == 2).count(), 2);
    }

    #[test]
    fn decompose_partitions_edges() {
        let mut g = clique(4);
        let n4 = g.add_node(0);
        g.add_edge(NodeId(0), n4, 0);
        let d = decompose(&g, 3);
        assert_eq!(
            d.infested_edges.len() + d.oblivious_edges.len(),
            g.edge_count()
        );
        let mut all: Vec<EdgeId> = d
            .infested_edges
            .iter()
            .chain(d.oblivious_edges.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), g.edge_count());
        assert_eq!(d.infested_edges.len(), 6);
        assert_eq!(d.oblivious_edges.len(), 1);
        let (gt, _) = d.infested_graph(&g);
        assert_eq!(gt.node_count(), 4);
        let (go, _) = d.oblivious_graph(&g);
        assert_eq!(go.edge_count(), 1);
    }

    #[test]
    fn empty_graph_decomposes() {
        let g = Graph::new();
        let d = decompose(&g, 3);
        assert!(d.infested_edges.is_empty());
        assert!(d.oblivious_edges.is_empty());
    }

    #[test]
    fn two_triangles_sharing_edge() {
        // diamond: 4 nodes, 5 edges, the shared edge is in 2 triangles
        let g = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(1, 3, 0)
            .edge(2, 3, 0)
            .build();
        let s = edge_supports(&g);
        // edge 1-2 (id 1) supports 2 triangles
        assert_eq!(s[1], 2);
        let t = trussness(&g);
        assert!(t.iter().all(|&x| x == 3), "diamond is a 3-truss: {t:?}");
    }

    #[test]
    fn triangle_list_peel_matches_baseline_on_fixtures() {
        // the clique/tree/mixed fixtures of this module, plus the diamond
        let tree = GraphBuilder::new()
            .nodes(&[0; 5])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(1, 3, 0)
            .edge(3, 4, 0)
            .build();
        let mut mixed = clique(4);
        let n4 = mixed.add_node(0);
        let n5 = mixed.add_node(0);
        mixed.add_edge(NodeId(3), n4, 0);
        mixed.add_edge(n4, n5, 0);
        let diamond = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(1, 3, 0)
            .edge(2, 3, 0)
            .build();
        for (name, g) in [
            ("K5", &clique(5)),
            ("tree", &tree),
            ("mixed", &mixed),
            ("diamond", &diamond),
        ] {
            assert_eq!(trussness(g), trussness_baseline(g), "{name}");
        }
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        use crate::generate::{assign_labels, erdos_renyi};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let b = Budget::unlimited();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut g = erdos_renyi(40, 0.15, 0, &mut rng);
        assign_labels(&mut g, 3, 2, &mut rng);
        assert_eq!(trussness(&g), trussness_ctrl(&g, &b).unwrap());
        let plain = decompose(&g, 3);
        let ctrl = decompose_ctrl(&g, 3, &b).unwrap();
        assert_eq!(plain.trussness, ctrl.trussness);
        assert_eq!(plain.infested_edges, ctrl.infested_edges);
        assert_eq!(plain.oblivious_edges, ctrl.oblivious_edges);
    }

    #[test]
    fn truss_tick_quota_trips_deterministically() {
        let g = clique(8); // 28 edges to peel
        let run = || {
            let b = Budget::unlimited().with_kernel_ticks(10);
            trussness_ctrl(&g, &b)
        };
        let a = run();
        assert_eq!(a, run());
        assert!(matches!(a, Err(VqiError::QuotaExceeded { .. })));
    }

    #[test]
    fn parallel_supports_and_trussness_match_reference_across_thread_counts() {
        use crate::generate::{assign_labels, erdos_renyi};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let _guard = crate::kernel_test_lock();
        let prev = par::thread_cap();
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut g = erdos_renyi(60, 0.12, 0, &mut rng);
            assign_labels(&mut g, 3, 2, &mut rng);
            let expect_sup = edge_supports_seq(&g);
            let expect_truss = trussness_baseline(&g);
            for cap in [1usize, 2, 4] {
                par::set_thread_cap(cap);
                assert_eq!(edge_supports(&g), expect_sup, "seed {seed} cap {cap}");
                assert_eq!(trussness(&g), expect_truss, "seed {seed} cap {cap}");
            }
            par::set_thread_cap(prev);
        }
    }
}
