//! k-truss decomposition.
//!
//! The *k-truss* of a graph is the maximal subgraph in which every edge is
//! contained in at least `k - 2` triangles of the subgraph. The
//! *trussness* of an edge is the largest `k` for which the edge survives
//! in the k-truss. TATTOO uses the decomposition to split a large network
//! into a dense *truss-infested* region `G_T` (edges with trussness ≥ k,
//! i.e. triangle-rich) and a sparse *truss-oblivious* region `G_O` (the
//! remaining edges), mirroring the triangle-like vs. non-triangle-like
//! substructures observed in real query logs.
//!
//! Implemented with the standard peeling algorithm: compute edge supports
//! (triangle counts), then repeatedly remove the edge of minimum support,
//! decrementing the supports of the edges it formed triangles with.

use crate::graph::{EdgeId, Graph, NodeId};

/// Per-edge triangle counts ("support").
pub fn edge_supports(g: &Graph) -> Vec<u32> {
    let mut support = vec![0u32; g.edge_count()];
    // mark[] trick: for each node u, mark neighbors, then for each
    // neighbor v > u, count common neighbors w with v
    let mut mark = vec![u32::MAX; g.node_count()];
    for u in g.nodes() {
        for (v, e) in g.neighbors(u) {
            mark[v.index()] = e.0;
        }
        for (v, uv) in g.neighbors(u) {
            if v <= u {
                continue;
            }
            for (w, vw) in g.neighbors(v) {
                if w <= v {
                    continue;
                }
                let uw = mark[w.index()];
                if uw != u32::MAX && w != u {
                    support[uv.index()] += 1;
                    support[vw.index()] += 1;
                    support[uw as usize] += 1;
                }
            }
        }
        for (v, _) in g.neighbors(u) {
            mark[v.index()] = u32::MAX;
        }
    }
    support
}

/// The trussness of every edge: the largest `k` such that the edge belongs
/// to the k-truss. Edges in no triangle have trussness 2.
pub fn trussness(g: &Graph) -> Vec<u32> {
    let m = g.edge_count();
    let mut support = edge_supports(g);
    let mut truss = vec![0u32; m];
    let mut removed = vec![false; m];

    // bucket queue over supports
    let max_sup = support.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<EdgeId>> = vec![Vec::new(); max_sup + 1];
    for e in g.edges() {
        buckets[support[e.index()] as usize].push(e);
    }
    let mut k = 2u32;
    let mut processed = 0usize;
    let mut cursor = 0usize;
    while processed < m {
        // find the lowest non-empty bucket at or below the current level
        let mut e_opt = None;
        while cursor < buckets.len() {
            // lazily skip stale entries (support decreased since insertion)
            while let Some(&e) = buckets[cursor].last() {
                if removed[e.index()] || support[e.index()] as usize != cursor {
                    buckets[cursor].pop();
                } else {
                    break;
                }
            }
            if buckets[cursor].is_empty() {
                cursor += 1;
            } else {
                e_opt = Some(buckets[cursor].pop().unwrap());
                break;
            }
        }
        let e = match e_opt {
            Some(e) => e,
            None => break,
        };
        let sup_e = support[e.index()];
        k = k.max(sup_e + 2);
        truss[e.index()] = k;
        removed[e.index()] = true;
        processed += 1;

        // decrement supports of edges forming triangles with e
        let (u, v) = g.endpoints(e);
        let (a, b) = if g.degree(u) <= g.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        for (w, aw) in g.neighbors(a) {
            if removed[aw.index()] || w == b {
                continue;
            }
            if let Some(bw) = g.edge_between(b, w) {
                if removed[bw.index()] {
                    continue;
                }
                for &f in &[aw, bw] {
                    if support[f.index()] > 0 {
                        support[f.index()] -= 1;
                        let s = support[f.index()] as usize;
                        buckets[s].push(f);
                        if s < cursor {
                            cursor = s;
                        }
                    }
                }
            }
        }
    }
    truss
}

/// The decomposition TATTOO operates on.
#[derive(Debug, Clone)]
pub struct TrussDecomposition {
    /// Trussness per edge of the original graph.
    pub trussness: Vec<u32>,
    /// Threshold used for the split.
    pub k: u32,
    /// Edges of the truss-infested region (trussness ≥ k).
    pub infested_edges: Vec<EdgeId>,
    /// Edges of the truss-oblivious region (trussness < k).
    pub oblivious_edges: Vec<EdgeId>,
}

impl TrussDecomposition {
    /// Materializes the truss-infested region `G_T` as a graph, returning
    /// it with the node mapping back to the original graph.
    pub fn infested_graph(&self, g: &Graph) -> (Graph, Vec<NodeId>) {
        g.edge_subgraph(&self.infested_edges)
    }

    /// Materializes the truss-oblivious region `G_O`.
    pub fn oblivious_graph(&self, g: &Graph) -> (Graph, Vec<NodeId>) {
        g.edge_subgraph(&self.oblivious_edges)
    }
}

/// Splits `g` into truss-infested (trussness ≥ k) and truss-oblivious
/// regions. `k = 3` separates "in at least one triangle of the 3-truss"
/// from the rest and is TATTOO's default.
///
/// ```
/// use vqi_graph::generate::{clique, chain};
/// use vqi_graph::truss::decompose;
/// use vqi_graph::NodeId;
///
/// // a K4 with a pendant edge: the clique is 4-truss, the tail is not
/// let mut g = clique(4, 0, 0);
/// let tail = g.add_node(0);
/// g.add_edge(NodeId(0), tail, 0);
/// let d = decompose(&g, 3);
/// assert_eq!(d.infested_edges.len(), 6);
/// assert_eq!(d.oblivious_edges.len(), 1);
/// ```
pub fn decompose(g: &Graph, k: u32) -> TrussDecomposition {
    let t = trussness(g);
    let mut infested = Vec::new();
    let mut oblivious = Vec::new();
    for e in g.edges() {
        if t[e.index()] >= k {
            infested.push(e);
        } else {
            oblivious.push(e);
        }
    }
    TrussDecomposition {
        trussness: t,
        k,
        infested_edges: infested,
        oblivious_edges: oblivious,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn clique(n: usize) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(0)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(nodes[i], nodes[j], 0);
            }
        }
        g
    }

    #[test]
    fn supports_of_triangle() {
        let g = clique(3);
        assert_eq!(edge_supports(&g), vec![1, 1, 1]);
    }

    #[test]
    fn supports_of_path_are_zero() {
        let g = GraphBuilder::new()
            .nodes(&[0; 3])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        assert_eq!(edge_supports(&g), vec![0, 0]);
    }

    #[test]
    fn trussness_of_clique_is_n() {
        for n in [3usize, 4, 5, 6] {
            let g = clique(n);
            let t = trussness(&g);
            assert!(t.iter().all(|&x| x == n as u32), "K{n} trussness {t:?}");
        }
    }

    #[test]
    fn trussness_of_tree_is_two() {
        let g = GraphBuilder::new()
            .nodes(&[0; 5])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(1, 3, 0)
            .edge(3, 4, 0)
            .build();
        assert!(trussness(&g).iter().all(|&x| x == 2));
    }

    #[test]
    fn mixed_graph_trussness() {
        // K4 (nodes 0-3) with a pendant path 3-4-5
        let mut g = clique(4);
        let n4 = g.add_node(0);
        let n5 = g.add_node(0);
        g.add_edge(NodeId(3), n4, 0);
        g.add_edge(n4, n5, 0);
        let t = trussness(&g);
        // 6 clique edges are 4-truss, 2 path edges are 2-truss
        assert_eq!(t.iter().filter(|&&x| x == 4).count(), 6);
        assert_eq!(t.iter().filter(|&&x| x == 2).count(), 2);
    }

    #[test]
    fn decompose_partitions_edges() {
        let mut g = clique(4);
        let n4 = g.add_node(0);
        g.add_edge(NodeId(0), n4, 0);
        let d = decompose(&g, 3);
        assert_eq!(
            d.infested_edges.len() + d.oblivious_edges.len(),
            g.edge_count()
        );
        let mut all: Vec<EdgeId> = d
            .infested_edges
            .iter()
            .chain(d.oblivious_edges.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), g.edge_count());
        assert_eq!(d.infested_edges.len(), 6);
        assert_eq!(d.oblivious_edges.len(), 1);
        let (gt, _) = d.infested_graph(&g);
        assert_eq!(gt.node_count(), 4);
        let (go, _) = d.oblivious_graph(&g);
        assert_eq!(go.edge_count(), 1);
    }

    #[test]
    fn empty_graph_decomposes() {
        let g = Graph::new();
        let d = decompose(&g, 3);
        assert!(d.infested_edges.is_empty());
        assert!(d.oblivious_edges.is_empty());
    }

    #[test]
    fn two_triangles_sharing_edge() {
        // diamond: 4 nodes, 5 edges, the shared edge is in 2 triangles
        let g = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(1, 3, 0)
            .edge(2, 3, 0)
            .build();
        let s = edge_supports(&g);
        // edge 1-2 (id 1) supports 2 triangles
        assert_eq!(s[1], 2);
        let t = trussness(&g);
        assert!(t.iter().all(|&x| x == 3), "diamond is a 3-truss: {t:?}");
    }
}
