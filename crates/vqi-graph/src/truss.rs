//! k-truss decomposition.
//!
//! The *k-truss* of a graph is the maximal subgraph in which every edge is
//! contained in at least `k - 2` triangles of the subgraph. The
//! *trussness* of an edge is the largest `k` for which the edge survives
//! in the k-truss. TATTOO uses the decomposition to split a large network
//! into a dense *truss-infested* region `G_T` (edges with trussness ≥ k,
//! i.e. triangle-rich) and a sparse *truss-oblivious* region `G_O` (the
//! remaining edges), mirroring the triangle-like vs. non-triangle-like
//! substructures observed in real query logs.
//!
//! Implemented with the standard peeling algorithm: compute edge supports
//! (triangle counts), then repeatedly remove the edge of minimum support,
//! decrementing the supports of the edges it formed triangles with.
//!
//! **Parallelism.** [`edge_supports`] counts triangles in parallel:
//! root nodes are split into contiguous chunks, each worker accumulates a
//! private `Vec<u32>` of per-edge counts, and the partials are summed in
//! chunk index order. Every triangle `u < v < w` is attributed to its
//! minimum node `u` exactly once, so the per-chunk counts partition the
//! total and the `u32` sums are exactly associative — the result is
//! bit-identical to [`edge_supports_seq`] at any thread count. The peel
//! itself is inherently sequential, but [`trussness`] materializes every
//! triangle once up front (a second mark-trick pass, laid out as a
//! per-edge CSR of partner-edge pairs) so each removal just walks its
//! edge's triangle list — no adjacency lookups at all, instead of the
//! baseline's linear `edge_between` scan per neighbor of the removed
//! edge (`O(deg a · deg)` per removal). [`trussness_baseline`] keeps the
//! pre-optimization path for regression tests and benchmarks. Trussness
//! values are unique whatever the peel's tie-breaking, so both paths
//! agree exactly.
//!
//! **Storage.** Every kernel here is generic over
//! [`crate::storage::GraphStorage`], so the same code peels a heap
//! [`Graph`] or a packed [`crate::storage::CsrGraph`]. Both backends
//! present adjacency rows in identical (insertion) order, and the
//! kernels only ever walk rows in that order — so outputs are
//! bit-identical across backends, at any thread cap.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::par;
use crate::storage::GraphStorage;
use vqi_runtime::{Budget, Meter, VqiError};

/// Per-edge triangle counts ("support") — single-threaded reference.
pub fn edge_supports_seq<S: GraphStorage + ?Sized>(g: &S) -> Vec<u32> {
    supports_of_roots(g, 0..g.node_count())
}

/// Triangle counts attributed to root nodes in `roots` only: the
/// mark[] trick per root `u`, counting triangles `u < v < w`. With the
/// full range this is the classic sequential algorithm; with a subrange
/// it is one parallel worker's partial.
fn supports_of_roots<S: GraphStorage + ?Sized>(g: &S, roots: std::ops::Range<usize>) -> Vec<u32> {
    let mut support = vec![0u32; g.edge_count()];
    let mut mark = vec![u32::MAX; g.node_count()];
    for u in roots.map(|i| NodeId(i as u32)) {
        for &(v, e) in g.neighbor_slice(u) {
            mark[v.index()] = e.0;
        }
        for &(v, uv) in g.neighbor_slice(u) {
            if v <= u {
                continue;
            }
            for &(w, vw) in g.neighbor_slice(v) {
                if w <= v {
                    continue;
                }
                let uw = mark[w.index()];
                if uw != u32::MAX && w != u {
                    support[uv.index()] += 1;
                    support[vw.index()] += 1;
                    support[uw as usize] += 1;
                }
            }
        }
        for &(v, _) in g.neighbor_slice(u) {
            mark[v.index()] = u32::MAX;
        }
    }
    support
}

/// Per-edge triangle counts ("support").
///
/// Runs the parallel chunked count when the [`par`] executor has more
/// than one thread available, and the sequential reference otherwise —
/// the outputs are bit-identical either way (exact `u32` sums merged in
/// chunk index order).
pub fn edge_supports<S: GraphStorage + ?Sized>(g: &S) -> Vec<u32> {
    // the span covers both paths so span counts stay thread-count
    // invariant; only the .chunks counter is parallel-path specific
    let _s = vqi_observe::span("kernel.truss.supports");
    if par::num_threads() <= 1 || g.node_count() < 2 {
        return edge_supports_seq(g);
    }
    let partials = par::map_chunks(g.node_count(), |roots| supports_of_roots(g, roots));
    vqi_observe::incr("kernel.truss.supports.chunks", partials.len() as u64);
    let mut support = vec![0u32; g.edge_count()];
    // merge per-worker accumulators in chunk index order
    for part in partials {
        for (s, p) in support.iter_mut().zip(part) {
            *s += p;
        }
    }
    support
}

/// The bucket-queue peel, generic over the triangle-partner enumeration
/// so the optimized and baseline paths share every other instruction.
/// `partners(e, a, b, removed, f)` must call `f(aw, bw)` once for every
/// live pair of edges `a--w`, `b--w` completing a triangle with
/// `e = a--b` (`a` is the lower-degree endpoint).
fn peel<S: GraphStorage + ?Sized>(
    g: &S,
    mut support: Vec<u32>,
    partners: impl Fn(EdgeId, NodeId, NodeId, &[bool], &mut dyn FnMut(EdgeId, EdgeId)),
    mut meter: Option<Meter>,
) -> Result<Vec<u32>, VqiError> {
    let m = g.edge_count();
    let mut truss = vec![0u32; m];
    let mut removed = vec![false; m];

    // bucket queue over supports
    let max_sup = support.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<EdgeId>> = vec![Vec::new(); max_sup + 1];
    for e in (0..m).map(|i| EdgeId(i as u32)) {
        buckets[support[e.index()] as usize].push(e);
    }
    let mut k = 2u32;
    let mut processed = 0usize;
    let mut cursor = 0usize;
    while processed < m {
        // one budget tick per peeled edge
        if let Some(mt) = &mut meter {
            mt.tick()?;
        }
        // find the lowest non-empty bucket at or below the current level
        let mut e_opt = None;
        while cursor < buckets.len() {
            // lazily skip stale entries (support decreased since insertion)
            while let Some(&e) = buckets[cursor].last() {
                if removed[e.index()] || support[e.index()] as usize != cursor {
                    buckets[cursor].pop();
                } else {
                    break;
                }
            }
            if buckets[cursor].is_empty() {
                cursor += 1;
            } else {
                e_opt = Some(buckets[cursor].pop().unwrap());
                break;
            }
        }
        let e = match e_opt {
            Some(e) => e,
            None => break,
        };
        let sup_e = support[e.index()];
        k = k.max(sup_e + 2);
        truss[e.index()] = k;
        removed[e.index()] = true;
        processed += 1;

        // decrement supports of edges forming triangles with e
        let (u, v) = g.endpoints(e);
        let (a, b) = if g.degree(u) <= g.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        partners(e, a, b, &removed, &mut |aw, bw| {
            for &f in &[aw, bw] {
                if support[f.index()] > 0 {
                    support[f.index()] -= 1;
                    let s = support[f.index()] as usize;
                    buckets[s].push(f);
                    if s < cursor {
                        cursor = s;
                    }
                }
            }
        });
    }
    Ok(truss)
}

/// The trussness of every edge: the largest `k` such that the edge belongs
/// to the k-truss. Edges in no triangle have trussness 2.
///
/// Per-edge triangle lists in CSR layout: `pairs[offsets[e]..offsets[e+1]]`
/// are the `(f1, f2)` partner-edge pairs of every triangle containing
/// edge `e`. Sized exactly by the supports (each triangle contributes
/// one entry to each of its three edges).
struct TriangleLists {
    offsets: Vec<usize>,
    pairs: Vec<(EdgeId, EdgeId)>,
}

impl TriangleLists {
    fn build<S: GraphStorage + ?Sized>(g: &S, support: &[u32]) -> TriangleLists {
        let m = g.edge_count();
        let mut offsets = vec![0usize; m + 1];
        for e in 0..m {
            offsets[e + 1] = offsets[e] + support[e] as usize;
        }
        let mut pairs = vec![(EdgeId(0), EdgeId(0)); offsets[m]];
        let mut cursor = offsets.clone();
        let mut push = |e: EdgeId, f1: EdgeId, f2: EdgeId| {
            pairs[cursor[e.index()]] = (f1, f2);
            cursor[e.index()] += 1;
        };
        // the same mark-trick enumeration as supports_of_roots, recording
        // each triangle u < v < w on all three of its edges
        let mut mark = vec![u32::MAX; g.node_count()];
        for u in (0..g.node_count()).map(|i| NodeId(i as u32)) {
            for &(v, e) in g.neighbor_slice(u) {
                mark[v.index()] = e.0;
            }
            for &(v, uv) in g.neighbor_slice(u) {
                if v <= u {
                    continue;
                }
                for &(w, vw) in g.neighbor_slice(v) {
                    if w <= v {
                        continue;
                    }
                    let uw = mark[w.index()];
                    if uw != u32::MAX && w != u {
                        let uw = EdgeId(uw);
                        push(uv, vw, uw);
                        push(vw, uv, uw);
                        push(uw, uv, vw);
                    }
                }
            }
            for &(v, _) in g.neighbor_slice(u) {
                mark[v.index()] = u32::MAX;
            }
        }
        TriangleLists { offsets, pairs }
    }

    #[inline]
    fn of(&self, e: EdgeId) -> &[(EdgeId, EdgeId)] {
        &self.pairs[self.offsets[e.index()]..self.offsets[e.index() + 1]]
    }
}

/// Supports come from the (parallel) [`edge_supports`]; the peel walks
/// precomputed per-edge [`TriangleLists`] instead of probing adjacency.
/// Output is identical to [`trussness_baseline`]: both enumerate exactly
/// the live triangles of the removed edge, supports reach the same
/// values whatever the decrement order, and trussness is unique
/// regardless of tie-breaks among equal-support edges.
pub fn trussness<S: GraphStorage + ?Sized>(g: &S) -> Vec<u32> {
    match trussness_full(g, None) {
        Ok(t) => t,
        // unreachable: without a meter the peel cannot abort
        Err(_) => Vec::new(),
    }
}

/// Budget-aware [`trussness`]: one [`Meter`] tick per peeled edge. A
/// deterministic tick quota trips at the same edge regardless of
/// thread count; deadlines and cancellation are observed within
/// [`vqi_runtime::ctrl::POLL_INTERVAL`] peels. With an unlimited
/// budget the result equals [`trussness`] exactly.
pub fn trussness_ctrl<S: GraphStorage + ?Sized>(
    g: &S,
    ctrl: &Budget,
) -> Result<Vec<u32>, VqiError> {
    ctrl.check("kernel.truss")?;
    trussness_full(g, Some(ctrl.meter("kernel.truss")))
}

fn trussness_full<S: GraphStorage + ?Sized>(
    g: &S,
    meter: Option<Meter>,
) -> Result<Vec<u32>, VqiError> {
    let _s = vqi_observe::span("kernel.truss.peel");
    vqi_observe::incr("kernel.truss.peel.edges", g.edge_count() as u64);
    let support = edge_supports(g);
    let tri = TriangleLists::build(g, &support);
    vqi_observe::incr("kernel.truss.triangles", (tri.pairs.len() / 3) as u64);
    peel(
        g,
        support,
        |e, _a, _b, removed, f| {
            for &(f1, f2) in tri.of(e) {
                if !removed[f1.index()] && !removed[f2.index()] {
                    f(f1, f2);
                }
            }
        },
        meter,
    )
}

/// The pre-optimization trussness path: sequential supports and linear
/// `edge_between` scans in the peel. Kept as the reference for the
/// regression tests and the `exp_pipelines` benchmark baseline.
pub fn trussness_baseline(g: &Graph) -> Vec<u32> {
    let support = edge_supports_seq(g);
    let peeled = peel(
        g,
        support,
        |_e, a, b, removed, f| {
            for (w, aw) in g.neighbors(a) {
                if removed[aw.index()] || w == b {
                    continue;
                }
                if let Some(bw) = g.edge_between(b, w) {
                    if !removed[bw.index()] {
                        f(aw, bw);
                    }
                }
            }
        },
        None,
    );
    // unreachable Err: without a meter the peel cannot abort
    peeled.unwrap_or_default()
}

/// The decomposition TATTOO operates on.
#[derive(Debug, Clone)]
pub struct TrussDecomposition {
    /// Trussness per edge of the original graph.
    pub trussness: Vec<u32>,
    /// Threshold used for the split.
    pub k: u32,
    /// Edges of the truss-infested region (trussness ≥ k).
    pub infested_edges: Vec<EdgeId>,
    /// Edges of the truss-oblivious region (trussness < k).
    pub oblivious_edges: Vec<EdgeId>,
}

impl TrussDecomposition {
    /// Materializes the truss-infested region `G_T` as a graph, returning
    /// it with the node mapping back to the original graph.
    pub fn infested_graph(&self, g: &Graph) -> (Graph, Vec<NodeId>) {
        g.edge_subgraph(&self.infested_edges)
    }

    /// Materializes the truss-oblivious region `G_O`.
    pub fn oblivious_graph(&self, g: &Graph) -> (Graph, Vec<NodeId>) {
        g.edge_subgraph(&self.oblivious_edges)
    }
}

/// Splits `g` into truss-infested (trussness ≥ k) and truss-oblivious
/// regions. `k = 3` separates "in at least one triangle of the 3-truss"
/// from the rest and is TATTOO's default.
///
/// ```
/// use vqi_graph::generate::{clique, chain};
/// use vqi_graph::truss::decompose;
/// use vqi_graph::NodeId;
///
/// // a K4 with a pendant edge: the clique is 4-truss, the tail is not
/// let mut g = clique(4, 0, 0);
/// let tail = g.add_node(0);
/// g.add_edge(NodeId(0), tail, 0);
/// let d = decompose(&g, 3);
/// assert_eq!(d.infested_edges.len(), 6);
/// assert_eq!(d.oblivious_edges.len(), 1);
/// ```
pub fn decompose<S: GraphStorage + ?Sized>(g: &S, k: u32) -> TrussDecomposition {
    split(g, k, trussness(g))
}

/// Budget-aware [`decompose`]; see [`trussness_ctrl`] for the budget
/// semantics. With an unlimited budget the result equals
/// [`decompose`] exactly.
pub fn decompose_ctrl<S: GraphStorage + ?Sized>(
    g: &S,
    k: u32,
    ctrl: &Budget,
) -> Result<TrussDecomposition, VqiError> {
    Ok(split(g, k, trussness_ctrl(g, ctrl)?))
}

fn split<S: GraphStorage + ?Sized>(g: &S, k: u32, t: Vec<u32>) -> TrussDecomposition {
    let mut infested = Vec::new();
    let mut oblivious = Vec::new();
    for e in (0..g.edge_count()).map(|i| EdgeId(i as u32)) {
        if t[e.index()] >= k {
            infested.push(e);
        } else {
            oblivious.push(e);
        }
    }
    TrussDecomposition {
        trussness: t,
        k,
        infested_edges: infested,
        oblivious_edges: oblivious,
    }
}

// ---------------------------------------------------------------------------
// Incremental maintenance
// ---------------------------------------------------------------------------

/// Per-batch statistics of a [`TrussMaintainer::apply`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrussDeltaStats {
    /// Edge inserts actually applied (duplicates/self-loops skipped).
    pub inserts: usize,
    /// Edge deletes actually applied (missing edges skipped).
    pub deletes: usize,
    /// Mutations skipped as no-ops.
    pub skipped: usize,
    /// Edges in the affected region at fixpoint (the repeel working set).
    pub region_edges: usize,
    /// Local peel rounds until the cascade frontier closed.
    pub peel_rounds: usize,
    /// Edges whose trussness changed (including fresh inserts).
    pub changed: usize,
}

/// Incremental k-truss maintenance: owns supports and trussness across
/// edge insert/delete batches and repeels only the *affected region*
/// instead of the whole graph.
///
/// **Affected region.** Deletes and inserts first touch the edges whose
/// support changed (the triangle partners of every mutated edge) — the
/// seeds. Insert batches additionally pull in every edge whose trussness
/// could *rise*: trussness grows by at most 1 per inserted edge, and a
/// rise propagates only along triangle-connected chains, so a
/// breadth-first closure adds any exterior edge `y` sharing a triangle
/// `(x, y, z)` with a region edge `x` when `truss(y) < ub(x)` and
/// `truss(z) + I ≥ truss(y) + 1` (with `I` the batch's insert count and
/// `ub(x) = min(truss(x) + I, support(x) + 2)` the rise ceiling).
///
/// **Local repeel.** The region is peeled with the same bucket-queue
/// discipline as [`trussness`], with exterior triangle members *frozen*
/// at their old trussness: a triangle with exterior members dies when
/// the peel level reaches the minimum exterior trussness. Deletions only
/// lower trussness, so the frozen exterior is exact unless a region
/// edge's value actually changes — in which case the cascade frontier
/// (exterior triangle partners of changed edges) is folded into the
/// region and the peel reruns until no frontier remains. At fixpoint the
/// old values form a valid truss certificate outside the region, so the
/// committed result equals a from-scratch peel exactly (property-tested
/// against [`trussness`] across insert/delete/mixed batches).
#[derive(Debug, Clone)]
pub struct TrussMaintainer {
    adj: crate::delta::DynamicAdjacency,
    /// Endpoints per edge slot (slots are recycled through `free`).
    endpoints: Vec<(NodeId, NodeId)>,
    alive: Vec<bool>,
    free: Vec<u32>,
    support: Vec<u32>,
    truss: Vec<u32>,
    live_edges: usize,
}

impl TrussMaintainer {
    /// Seeds the maintainer from `g` with a full (parallel) support count
    /// and peel.
    pub fn new(g: &Graph) -> Self {
        let m = g.edge_count();
        Self {
            adj: crate::delta::DynamicAdjacency::from_graph(g),
            endpoints: g.edges().map(|e| g.endpoints(e)).collect(),
            alive: vec![true; m],
            free: Vec::new(),
            support: edge_supports(g),
            truss: trussness(g),
            live_edges: m,
        }
    }

    /// Nodes in the maintained universe.
    pub fn node_count(&self) -> usize {
        self.adj.node_count()
    }

    /// Live (non-deleted) edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Grows the node universe to at least `n` nodes.
    pub fn grow_nodes(&mut self, n: usize) {
        self.adj.grow(n);
    }

    /// The maintained trussness of edge `u -- v`, if present.
    pub fn trussness_of(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return None;
        }
        self.adj.edge_between(u, v).map(|e| self.truss[e.index()])
    }

    /// The maintained support (triangle count) of edge `u -- v`.
    pub fn support_of(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return None;
        }
        self.adj.edge_between(u, v).map(|e| self.support[e.index()])
    }

    /// Maintained trussness re-indexed by `g`'s edge ids (matched on
    /// endpoints). Returns `None` if some edge of `g` is unknown to the
    /// maintainer — the caller's graph has drifted out of sync.
    pub fn trussness_for(&self, g: &Graph) -> Option<Vec<u32>> {
        if g.node_count() > self.node_count() {
            return None;
        }
        g.edges()
            .map(|e| {
                let (u, v) = g.endpoints(e);
                self.trussness_of(u, v)
            })
            .collect()
    }

    /// Live edges as `(u, v, trussness)` triples in slot order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        self.endpoints
            .iter()
            .zip(self.alive.iter())
            .zip(self.truss.iter())
            .filter(|((_, &alive), _)| alive)
            .map(|((&(u, v), _), &t)| (u, v, t))
    }

    /// Applies one edge-churn batch (deletes first, then inserts) and
    /// restores exact trussness by repeeling only the affected region.
    pub fn apply(&mut self, delta: &crate::delta::EdgeDelta) -> TrussDeltaStats {
        let _s = vqi_observe::span("kernel.truss.delta");
        vqi_observe::incr("kernel.truss.delta.batches", 1);
        if let Some(mx) = delta.max_node() {
            self.grow_nodes(mx as usize + 1);
        }

        let mut stats = TrussDeltaStats::default();
        let mut seeded = vec![false; self.endpoints.len()];
        let mut seeds: Vec<u32> = Vec::new();
        fn seed(seeded: &mut [bool], seeds: &mut Vec<u32>, s: u32) {
            if !seeded[s as usize] {
                seeded[s as usize] = true;
                seeds.push(s);
            }
        }

        // deletes first: enumerate the dying triangles while the edge is
        // still present, decrement partner supports, then drop the edge
        for &(a, b) in &delta.deletes {
            let (u, v) = (NodeId(a), NodeId(b));
            if a == b || self.adj.edge_between(u, v).is_none() {
                stats.skipped += 1;
                continue;
            }
            let Self { adj, support, .. } = self;
            adj.common_neighbors(u, v, |_w, uw, vw| {
                for f in [uw, vw] {
                    support[f.index()] -= 1;
                    seed(&mut seeded, &mut seeds, f.0);
                }
            });
            let slot = self.adj.remove(u, v).expect("checked present").0;
            self.alive[slot as usize] = false;
            self.support[slot as usize] = 0;
            self.truss[slot as usize] = 0;
            self.free.push(slot);
            self.live_edges -= 1;
            stats.deletes += 1;
        }

        // inserts: count the new edge's support against the current
        // adjacency (the edge itself is added after), increment partners
        for &(a, b) in &delta.inserts {
            let (u, v) = (NodeId(a), NodeId(b));
            if a == b || self.adj.has_edge(u, v) {
                stats.skipped += 1;
                continue;
            }
            let slot = match self.free.pop() {
                Some(s) => s,
                None => {
                    let s = self.endpoints.len() as u32;
                    self.endpoints.push((u, v));
                    self.alive.push(false);
                    self.support.push(0);
                    self.truss.push(0);
                    seeded.push(false);
                    s
                }
            };
            let mut sup = 0u32;
            let Self { adj, support, .. } = self;
            adj.common_neighbors(u, v, |_w, uw, vw| {
                sup += 1;
                for f in [uw, vw] {
                    support[f.index()] += 1;
                    seed(&mut seeded, &mut seeds, f.0);
                }
            });
            self.adj.insert(u, v, EdgeId(slot));
            self.endpoints[slot as usize] = (u, v);
            self.alive[slot as usize] = true;
            self.support[slot as usize] = sup;
            // trussness 0 marks "fresh insert, not yet peeled"
            self.truss[slot as usize] = 0;
            seed(&mut seeded, &mut seeds, slot);
            self.live_edges += 1;
            stats.inserts += 1;
        }
        vqi_observe::incr("kernel.truss.delta.inserts", stats.inserts as u64);
        vqi_observe::incr("kernel.truss.delta.deletes", stats.deletes as u64);

        // the affected region starts from the surviving seeds
        let mut region: Vec<u32> = seeds
            .into_iter()
            .filter(|&s| self.alive[s as usize])
            .collect();
        if region.is_empty() {
            return stats;
        }
        let mut in_region = vec![false; self.endpoints.len()];
        for &s in &region {
            in_region[s as usize] = true;
        }

        // insert batches can raise trussness along triangle-connected
        // chains; pull in every edge that could co-rise (see type docs)
        let rises = stats.inserts as u32;
        if rises > 0 {
            let ub = |m: &Self, x: u32| -> u32 {
                let s2 = m.support[x as usize] + 2;
                if m.truss[x as usize] == 0 {
                    s2 // fresh insert: support bound only
                } else {
                    s2.min(m.truss[x as usize] + rises)
                }
            };
            let mut queue: Vec<(u32, u32)> = region.iter().map(|&x| (x, ub(self, x))).collect();
            while let Some((x, ubx)) = queue.pop() {
                let (u, v) = self.endpoints[x as usize];
                let mut pulled: Vec<u32> = Vec::new();
                let Self { adj, truss, .. } = self;
                adj.common_neighbors(u, v, |_w, uw, vw| {
                    for (f, z) in [(uw, vw), (vw, uw)] {
                        let (f, z) = (f.0, z.0);
                        if !in_region[f as usize]
                            && truss[f as usize] < ubx
                            && truss[z as usize] + rises > truss[f as usize]
                        {
                            in_region[f as usize] = true;
                            pulled.push(f);
                        }
                    }
                });
                for f in pulled {
                    region.push(f);
                    queue.push((f, ub(self, f)));
                }
            }
        }

        // repeel the region until the cascade frontier closes
        let final_vals = loop {
            stats.peel_rounds += 1;
            let vals = self.local_peel(&region, &in_region);
            let mut frontier: Vec<u32> = Vec::new();
            for (i, &x) in region.iter().enumerate() {
                if vals[i] == self.truss[x as usize] {
                    continue;
                }
                let (u, v) = self.endpoints[x as usize];
                self.adj.common_neighbors(u, v, |_w, uw, vw| {
                    for f in [uw.0, vw.0] {
                        if !in_region[f as usize] {
                            in_region[f as usize] = true;
                            frontier.push(f);
                        }
                    }
                });
            }
            if frontier.is_empty() {
                break vals;
            }
            region.extend(frontier);
        };
        for (i, &x) in region.iter().enumerate() {
            if self.truss[x as usize] != final_vals[i] {
                stats.changed += 1;
                self.truss[x as usize] = final_vals[i];
            }
        }
        stats.region_edges = region.len();
        vqi_observe::incr("kernel.truss.delta.region", region.len() as u64);
        vqi_observe::incr("kernel.truss.delta.rounds", stats.peel_rounds as u64);
        vqi_observe::incr("kernel.truss.delta.changed", stats.changed as u64);
        stats
    }

    /// Bucket-queue peel restricted to `region`, with exterior triangle
    /// members frozen at their old trussness: a triangle holding exterior
    /// edges dies when the peel level reaches their minimum trussness.
    /// Returns the new trussness per region position.
    fn local_peel(&self, region: &[u32], in_region: &[bool]) -> Vec<u32> {
        let r = region.len();
        let mut pos = vec![u32::MAX; self.endpoints.len()];
        for (i, &x) in region.iter().enumerate() {
            pos[x as usize] = i as u32;
        }

        // enumerate each triangle touching the region exactly once,
        // anchored at its minimum interior edge slot
        let mut tri_members: Vec<[u32; 3]> = Vec::new(); // positions, u32::MAX pad
        let mut tri_dead: Vec<bool> = Vec::new();
        let mut events: Vec<(u32, u32)> = Vec::new(); // (death level, tri)
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); r];
        for (i, &x) in region.iter().enumerate() {
            let (u, v) = self.endpoints[x as usize];
            self.adj.common_neighbors(u, v, |_w, uw, vw| {
                let (a, b) = (uw.0, vw.0);
                // anchored elsewhere if a smaller interior slot exists
                if (in_region[a as usize] && a < x) || (in_region[b as usize] && b < x) {
                    return;
                }
                let t = tri_members.len() as u32;
                let mut members = [i as u32, u32::MAX, u32::MAX];
                let mut n = 1;
                let mut ext_level = u32::MAX;
                for f in [a, b] {
                    if in_region[f as usize] {
                        members[n] = pos[f as usize];
                        n += 1;
                    } else {
                        ext_level = ext_level.min(self.truss[f as usize]);
                    }
                }
                for &p in &members[..n] {
                    lists[p as usize].push(t);
                }
                tri_members.push(members);
                tri_dead.push(false);
                if ext_level != u32::MAX {
                    events.push((ext_level, t));
                }
            });
        }
        events.sort_unstable();

        let mut eff: Vec<u32> = region.iter().map(|&x| self.support[x as usize]).collect();
        debug_assert!(eff
            .iter()
            .zip(lists.iter())
            .all(|(&s, l)| s as usize == l.len()));
        let mut vals = vec![0u32; r];
        let mut removed = vec![false; r];
        let max_eff = eff.iter().copied().max().unwrap_or(0) as usize;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_eff + 1];
        for (i, &s) in eff.iter().enumerate() {
            buckets[s as usize].push(i as u32);
        }

        // kills triangle `t` (first member death wins) and rebuckets the
        // surviving interior members
        fn kill(
            t: u32,
            tri_members: &[[u32; 3]],
            tri_dead: &mut [bool],
            removed: &[bool],
            eff: &mut [u32],
            buckets: &mut [Vec<u32>],
            cursor: &mut usize,
        ) {
            if tri_dead[t as usize] {
                return;
            }
            tri_dead[t as usize] = true;
            for &p in &tri_members[t as usize] {
                if p == u32::MAX || removed[p as usize] {
                    continue;
                }
                let s = &mut eff[p as usize];
                if *s > 0 {
                    *s -= 1;
                    buckets[*s as usize].push(p);
                    if (*s as usize) < *cursor {
                        *cursor = *s as usize;
                    }
                }
            }
        }

        let mut k = 2u32;
        let mut cursor = 0usize;
        let mut done = 0usize;
        let mut ev = 0usize;
        while done < r {
            // peek the minimum-support live entry (lazy stale skipping)
            let mut s_min = None;
            while cursor < buckets.len() {
                while let Some(&j) = buckets[cursor].last() {
                    if removed[j as usize] || eff[j as usize] as usize != cursor {
                        buckets[cursor].pop();
                    } else {
                        break;
                    }
                }
                if buckets[cursor].is_empty() {
                    cursor += 1;
                } else {
                    s_min = Some(cursor as u32);
                    break;
                }
            }
            let target = match s_min {
                Some(s) => k.max(s + 2),
                None => u32::MAX,
            };
            // frozen exterior deaths scheduled at or below the next level
            // fire first: removing a level-k casualty early within level k
            // never drags a higher-truss edge down
            if ev < events.len() && events[ev].0 <= target {
                k = k.max(events[ev].0);
                while ev < events.len() && events[ev].0 <= k {
                    kill(
                        events[ev].1,
                        &tri_members,
                        &mut tri_dead,
                        &removed,
                        &mut eff,
                        &mut buckets,
                        &mut cursor,
                    );
                    ev += 1;
                }
                continue;
            }
            let j = match s_min {
                Some(_) => buckets[cursor].pop().expect("peeked entry"),
                None => break,
            };
            k = target;
            vals[j as usize] = k;
            removed[j as usize] = true;
            done += 1;
            for t in std::mem::take(&mut lists[j as usize]) {
                kill(
                    t,
                    &tri_members,
                    &mut tri_dead,
                    &removed,
                    &mut eff,
                    &mut buckets,
                    &mut cursor,
                );
            }
        }
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn clique(n: usize) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(0)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(nodes[i], nodes[j], 0);
            }
        }
        g
    }

    #[test]
    fn supports_of_triangle() {
        let g = clique(3);
        assert_eq!(edge_supports(&g), vec![1, 1, 1]);
    }

    #[test]
    fn supports_of_path_are_zero() {
        let g = GraphBuilder::new()
            .nodes(&[0; 3])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        assert_eq!(edge_supports(&g), vec![0, 0]);
    }

    #[test]
    fn trussness_of_clique_is_n() {
        for n in [3usize, 4, 5, 6] {
            let g = clique(n);
            let t = trussness(&g);
            assert!(t.iter().all(|&x| x == n as u32), "K{n} trussness {t:?}");
        }
    }

    #[test]
    fn trussness_of_tree_is_two() {
        let g = GraphBuilder::new()
            .nodes(&[0; 5])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(1, 3, 0)
            .edge(3, 4, 0)
            .build();
        assert!(trussness(&g).iter().all(|&x| x == 2));
    }

    #[test]
    fn mixed_graph_trussness() {
        // K4 (nodes 0-3) with a pendant path 3-4-5
        let mut g = clique(4);
        let n4 = g.add_node(0);
        let n5 = g.add_node(0);
        g.add_edge(NodeId(3), n4, 0);
        g.add_edge(n4, n5, 0);
        let t = trussness(&g);
        // 6 clique edges are 4-truss, 2 path edges are 2-truss
        assert_eq!(t.iter().filter(|&&x| x == 4).count(), 6);
        assert_eq!(t.iter().filter(|&&x| x == 2).count(), 2);
    }

    #[test]
    fn decompose_partitions_edges() {
        let mut g = clique(4);
        let n4 = g.add_node(0);
        g.add_edge(NodeId(0), n4, 0);
        let d = decompose(&g, 3);
        assert_eq!(
            d.infested_edges.len() + d.oblivious_edges.len(),
            g.edge_count()
        );
        let mut all: Vec<EdgeId> = d
            .infested_edges
            .iter()
            .chain(d.oblivious_edges.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), g.edge_count());
        assert_eq!(d.infested_edges.len(), 6);
        assert_eq!(d.oblivious_edges.len(), 1);
        let (gt, _) = d.infested_graph(&g);
        assert_eq!(gt.node_count(), 4);
        let (go, _) = d.oblivious_graph(&g);
        assert_eq!(go.edge_count(), 1);
    }

    #[test]
    fn empty_graph_decomposes() {
        let g = Graph::new();
        let d = decompose(&g, 3);
        assert!(d.infested_edges.is_empty());
        assert!(d.oblivious_edges.is_empty());
    }

    #[test]
    fn two_triangles_sharing_edge() {
        // diamond: 4 nodes, 5 edges, the shared edge is in 2 triangles
        let g = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(1, 3, 0)
            .edge(2, 3, 0)
            .build();
        let s = edge_supports(&g);
        // edge 1-2 (id 1) supports 2 triangles
        assert_eq!(s[1], 2);
        let t = trussness(&g);
        assert!(t.iter().all(|&x| x == 3), "diamond is a 3-truss: {t:?}");
    }

    #[test]
    fn triangle_list_peel_matches_baseline_on_fixtures() {
        // the clique/tree/mixed fixtures of this module, plus the diamond
        let tree = GraphBuilder::new()
            .nodes(&[0; 5])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(1, 3, 0)
            .edge(3, 4, 0)
            .build();
        let mut mixed = clique(4);
        let n4 = mixed.add_node(0);
        let n5 = mixed.add_node(0);
        mixed.add_edge(NodeId(3), n4, 0);
        mixed.add_edge(n4, n5, 0);
        let diamond = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(1, 3, 0)
            .edge(2, 3, 0)
            .build();
        for (name, g) in [
            ("K5", &clique(5)),
            ("tree", &tree),
            ("mixed", &mixed),
            ("diamond", &diamond),
        ] {
            assert_eq!(trussness(g), trussness_baseline(g), "{name}");
        }
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        use crate::generate::{assign_labels, erdos_renyi};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let b = Budget::unlimited();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut g = erdos_renyi(40, 0.15, 0, &mut rng);
        assign_labels(&mut g, 3, 2, &mut rng);
        assert_eq!(trussness(&g), trussness_ctrl(&g, &b).unwrap());
        let plain = decompose(&g, 3);
        let ctrl = decompose_ctrl(&g, 3, &b).unwrap();
        assert_eq!(plain.trussness, ctrl.trussness);
        assert_eq!(plain.infested_edges, ctrl.infested_edges);
        assert_eq!(plain.oblivious_edges, ctrl.oblivious_edges);
    }

    #[test]
    fn truss_tick_quota_trips_deterministically() {
        let g = clique(8); // 28 edges to peel
        let run = || {
            let b = Budget::unlimited().with_kernel_ticks(10);
            trussness_ctrl(&g, &b)
        };
        let a = run();
        assert_eq!(a, run());
        assert!(matches!(a, Err(VqiError::QuotaExceeded { .. })));
    }

    fn graph_of(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_node(0);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v), 0)
                .expect("test edge list must be simple");
        }
        g
    }

    #[track_caller]
    fn assert_matches_fresh(m: &TrussMaintainer, edges: &[(u32, u32)], ctx: &str) {
        let g = graph_of(m.node_count(), edges);
        let expect = trussness(&g);
        assert_eq!(m.edge_count(), g.edge_count(), "{ctx}: edge count");
        assert_eq!(
            m.trussness_for(&g),
            Some(expect),
            "{ctx}: maintained trussness != fresh peel"
        );
    }

    #[test]
    fn maintainer_matches_fresh_peel_across_batches() {
        use crate::delta::EdgeDelta;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use std::collections::BTreeSet;
        let _guard = crate::kernel_test_lock();
        let prev = par::thread_cap();
        for cap in [1usize, 2, 4] {
            par::set_thread_cap(cap);
            for seed in 0..12u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let n = 40;
                let g = crate::generate::erdos_renyi(n, 0.12, 0, &mut rng);
                let mut set: BTreeSet<(u32, u32)> = g
                    .edges()
                    .map(|e| {
                        let (u, v) = g.endpoints(e);
                        (u.0.min(v.0), u.0.max(v.0))
                    })
                    .collect();
                let mut m = TrussMaintainer::new(&g);
                // round 0: delete-only, round 1: insert-only, 2-3: mixed
                for round in 0..4 {
                    let mut delta = EdgeDelta::new();
                    if round != 1 {
                        let pool: Vec<(u32, u32)> = set.iter().copied().collect();
                        for _ in 0..4 {
                            if pool.is_empty() {
                                break;
                            }
                            let (u, v) = pool[rng.gen_range(0..pool.len())];
                            delta.deletes.push((u, v));
                            set.remove(&(u, v));
                        }
                    }
                    if round != 0 {
                        // a couple of node indices beyond the current
                        // universe exercise node growth
                        let span = n as u32 + 2;
                        for _ in 0..4 {
                            let u = rng.gen_range(0..span);
                            let v = rng.gen_range(0..span);
                            delta.inserts.push((u, v));
                            if u != v {
                                set.insert((u.min(v), u.max(v)));
                            }
                        }
                    }
                    m.apply(&delta);
                    let edges: Vec<(u32, u32)> = set.iter().copied().collect();
                    assert_matches_fresh(
                        &m,
                        &edges,
                        &format!("seed {seed} cap {cap} round {round}"),
                    );
                }
            }
        }
        par::set_thread_cap(prev);
    }

    #[test]
    fn insert_raises_a_whole_truss_class() {
        use crate::delta::EdgeDelta;
        // diamond (K4 minus a chord): every edge is 3-truss; inserting the
        // missing chord must raise the *entire* class to 4 even though the
        // old edges' supports along the far side never change — the
        // regression case for the co-rise closure
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)];
        let g = graph_of(4, &edges);
        let mut m = TrussMaintainer::new(&g);
        assert_eq!(m.trussness_of(NodeId(0), NodeId(1)), Some(3));
        let stats = m.apply(&EdgeDelta::inserting(vec![(1, 3)]));
        assert_eq!(stats.inserts, 1);
        let all = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)];
        assert_matches_fresh(&m, &all, "K4 completion");
        for &(u, v) in &all {
            assert_eq!(m.trussness_of(NodeId(u), NodeId(v)), Some(4), "{u}-{v}");
        }
    }

    #[test]
    fn deletion_edge_cases_match_fresh_peel() {
        use crate::delta::EdgeDelta;
        // two triangles joined by a bridge edge 2-3
        let start = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        let g = graph_of(6, &start);
        let mut m = TrussMaintainer::new(&g);
        let before: Vec<u32> = trussness(&g);
        assert_eq!(before.iter().filter(|&&t| t == 3).count(), 6);

        // removing the bridge leaves both triangles intact
        let stats = m.apply(&EdgeDelta::deleting(vec![(2, 3)]));
        assert_eq!((stats.deletes, stats.inserts), (1, 0));
        let no_bridge = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)];
        assert_matches_fresh(&m, &no_bridge, "bridge removal");
        assert_eq!(m.trussness_of(NodeId(0), NodeId(1)), Some(3));

        // removing one edge of a triangle kills the class's last triangle:
        // the two survivors drop from 3-truss to 2-truss
        m.apply(&EdgeDelta::deleting(vec![(0, 1)]));
        let last_tri = [(1, 2), (0, 2), (3, 4), (4, 5), (3, 5)];
        assert_matches_fresh(&m, &last_tri, "last triangle of a class");
        assert_eq!(m.trussness_of(NodeId(1), NodeId(2)), Some(2));
        assert_eq!(m.trussness_of(NodeId(3), NodeId(4)), Some(3));

        // duplicate inserts and self-loops are skipped, not double-counted
        let stats = m.apply(&EdgeDelta::inserting(vec![(0, 1), (0, 1), (1, 1), (1, 2)]));
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.skipped, 3);
        assert_matches_fresh(&m, &start[..6], "duplicate inserts");

        // delete-then-reinsert round-trips back to the fresh peel
        let snapshot: Vec<Option<u32>> = start
            .iter()
            .map(|&(u, v)| m.trussness_of(NodeId(u), NodeId(v)))
            .collect();
        m.apply(&EdgeDelta::deleting(vec![(0, 2), (4, 5)]));
        m.apply(&EdgeDelta::inserting(vec![(0, 2), (4, 5)]));
        assert_matches_fresh(&m, &start[..6], "delete-then-reinsert");
        let after: Vec<Option<u32>> = start
            .iter()
            .map(|&(u, v)| m.trussness_of(NodeId(u), NodeId(v)))
            .collect();
        assert_eq!(snapshot, after, "round trip restores every value");
    }

    #[test]
    fn maintainer_empty_batch_is_noop() {
        use crate::delta::EdgeDelta;
        let g = clique(4);
        let mut m = TrussMaintainer::new(&g);
        let stats = m.apply(&EdgeDelta::new());
        assert_eq!(stats.region_edges, 0);
        assert_eq!(stats.changed, 0);
        let edges: Vec<(u32, u32)> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (i as u32, j as u32)))
            .collect();
        assert_matches_fresh(&m, &edges, "empty batch");
    }

    #[test]
    fn parallel_supports_and_trussness_match_reference_across_thread_counts() {
        use crate::generate::{assign_labels, erdos_renyi};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let _guard = crate::kernel_test_lock();
        let prev = par::thread_cap();
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut g = erdos_renyi(60, 0.12, 0, &mut rng);
            assign_labels(&mut g, 3, 2, &mut rng);
            let expect_sup = edge_supports_seq(&g);
            let expect_truss = trussness_baseline(&g);
            for cap in [1usize, 2, 4] {
                par::set_thread_cap(cap);
                assert_eq!(edge_supports(&g), expect_sup, "seed {seed} cap {cap}");
                assert_eq!(trussness(&g), expect_truss, "seed {seed} cap {cap}");
            }
            par::set_thread_cap(prev);
        }
    }
}
