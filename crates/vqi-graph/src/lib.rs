//! Labeled-graph substrate for data-driven visual query interfaces.
//!
//! This crate provides everything the pattern-selection systems
//! (CATAPULT, TATTOO, MIDAS) need from a graph library, implemented from
//! scratch:
//!
//! * [`graph::Graph`] — an undirected, node- and edge-labeled graph with
//!   append-only construction and cheap subgraph extraction;
//! * [`iso`] — VF2-style subgraph-isomorphism search with wildcard labels,
//!   embedding enumeration, and coverage helpers;
//! * [`canon`] — canonical codes for small graphs (pattern deduplication);
//! * [`truss`] — k-truss decomposition and the truss-infested /
//!   truss-oblivious split used by TATTOO;
//! * [`delta`] — edge-churn batches ([`delta::EdgeDelta`]) consumed by the
//!   incremental maintainers in [`truss`] and [`graphlet`];
//! * [`graphlet`] — exact and sampled connected-graphlet counting (ESU /
//!   RAND-ESU) and graphlet frequency distributions used by MIDAS;
//! * [`traversal`] — BFS/DFS, components, weighted random walks, and
//!   connected-subgraph sampling;
//! * [`generate`] — random-graph generators and the small "motif" shapes
//!   (chain, star, cycle, petal, flower) that mirror real query-log
//!   topologies;
//! * [`mcs`] — maximum-common-edge-subgraph search (exact with a node
//!   budget, plus a greedy fallback) for diversity measures;
//! * [`index`] — compiled per-graph matching indexes (CSR adjacency,
//!   label-partitioned candidate buckets, invariant signatures) and
//!   graph fingerprints for constant-time infeasibility checks and MCS
//!   upper bounds;
//! * [`par`] — deterministic fork-join helpers (order-stable chunked
//!   maps over scoped threads) used by every parallel kernel path, with
//!   a global sequential toggle, thread-count controls, and the
//!   [`par::ShardExecutor`] shard/retry harness;
//! * [`storage`] — the [`storage::GraphStorage`] backend trait with the
//!   compact u32-packed [`storage::CsrGraph`] (streamed construction,
//!   little-endian on-disk images) behind the large-network kernels;
//! * [`cache`] — sharded, capacity-bounded memoization of the expensive
//!   kernels (MCS similarity, coverage) keyed by canonical codes;
//! * [`io`] — a line-oriented text format compatible with the classic
//!   `t # / v / e` graph-transaction files;
//! * [`metrics`] — simple structural statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canon;
pub mod delta;
pub mod generate;
pub mod graph;
pub mod graphlet;
pub mod index;
pub mod io;
pub mod iso;
pub mod mcs;
pub mod metrics;
pub mod par;
pub mod storage;
pub mod traversal;
pub mod truss;
pub mod wal;

pub use delta::EdgeDelta;
pub use graph::{EdgeId, Graph, Label, NodeId, WILDCARD_LABEL};

/// Serializes tests that flip crate-global switches (the kernel cache
/// and the MCS bound-and-skip toggle): value-level assertions about
/// skipped searches are only meaningful while no other test races the
/// switch.
#[cfg(test)]
pub(crate) fn kernel_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
