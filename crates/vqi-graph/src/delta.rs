//! Edge-churn batches for the incremental maintenance kernels.
//!
//! [`EdgeDelta`] is the shared input type of [`crate::truss::TrussMaintainer`]
//! and [`crate::graphlet::CensusMaintainer`]: a batch of undirected edge
//! inserts and deletes against a growing node universe. The maintainers
//! apply deletes first, then inserts, and both skip no-ops (deleting a
//! missing edge, inserting a duplicate or a self-loop) so a delta can be
//! replayed against any graph that already absorbed part of it.
//!
//! `DynamicAdjacency` is the crate-private mutable counterpart of
//! [`crate::graph::SortedAdjacency`]: the same sorted rows, but kept live
//! across batches so maintainers never rebuild adjacency from scratch.

use crate::graph::{EdgeId, Graph, NodeId, SortedAdjacency};

/// A batch of undirected edge mutations: `deletes` are applied first,
/// then `inserts`. Endpoint pairs are raw node indices; order within a
/// pair does not matter.
#[derive(Debug, Clone, Default)]
pub struct EdgeDelta {
    /// Edges to remove, as endpoint pairs.
    pub deletes: Vec<(u32, u32)>,
    /// Edges to add, as endpoint pairs.
    pub inserts: Vec<(u32, u32)>,
}

impl EdgeDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// A delta that only inserts.
    pub fn inserting(inserts: Vec<(u32, u32)>) -> Self {
        Self {
            deletes: Vec::new(),
            inserts,
        }
    }

    /// A delta that only deletes.
    pub fn deleting(deletes: Vec<(u32, u32)>) -> Self {
        Self {
            deletes,
            inserts: Vec::new(),
        }
    }

    /// Total number of mutations in the batch.
    pub fn len(&self) -> usize {
        self.deletes.len() + self.inserts.len()
    }

    /// True when the batch carries no mutations.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty()
    }

    /// Largest node index mentioned by the batch, if any.
    pub fn max_node(&self) -> Option<u32> {
        self.deletes
            .iter()
            .chain(self.inserts.iter())
            .map(|&(u, v)| u.max(v))
            .max()
    }
}

/// A sorted adjacency that tracks edge inserts and deletes in place.
///
/// Rows stay sorted by neighbor id, so lookups keep the
/// [`SortedAdjacency`] cost model and the ESU census can run directly on
/// [`Self::view`] with bit-identical traversal order.
#[derive(Debug, Clone)]
pub(crate) struct DynamicAdjacency {
    view: SortedAdjacency,
}

impl DynamicAdjacency {
    /// Snapshots `g` into a mutable adjacency. Edge ids mirror `g`'s.
    pub(crate) fn from_graph(g: &Graph) -> Self {
        Self {
            view: g.sorted_adjacency(),
        }
    }

    /// The read-only sorted view (always current).
    #[inline]
    pub(crate) fn view(&self) -> &SortedAdjacency {
        &self.view
    }

    /// Number of nodes.
    #[inline]
    pub(crate) fn node_count(&self) -> usize {
        self.view.node_count()
    }

    /// Grows the node universe to `n` nodes.
    pub(crate) fn grow(&mut self, n: usize) {
        self.view.grow_rows(n);
    }

    /// Neighbors of `v`, sorted by neighbor id.
    #[inline]
    pub(crate) fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        self.view.neighbors(v)
    }

    /// The edge between `u` and `v`, if present.
    #[inline]
    pub(crate) fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.view.edge_between(u, v)
    }

    /// True if `u -- v` exists.
    #[inline]
    pub(crate) fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.view.has_edge(u, v)
    }

    /// Inserts edge `e` between `u` and `v`; false if it already exists.
    pub(crate) fn insert(&mut self, u: NodeId, v: NodeId, e: EdgeId) -> bool {
        self.view.insert_sorted(u, v, e)
    }

    /// Removes the edge between `u` and `v`, returning its id.
    pub(crate) fn remove(&mut self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.view.remove_sorted(u, v)
    }

    /// Calls `f(w, uw, vw)` for every common neighbor `w` of `u` and `v`,
    /// where `uw`/`vw` are the edge ids of `u -- w` / `v -- w`. Sorted-merge
    /// intersection, so triangles are visited in ascending `w` order.
    pub(crate) fn common_neighbors(
        &self,
        u: NodeId,
        v: NodeId,
        mut f: impl FnMut(NodeId, EdgeId, EdgeId),
    ) {
        let ru = self.view.neighbors(u);
        let rv = self.view.neighbors(v);
        let (mut i, mut j) = (0, 0);
        while i < ru.len() && j < rv.len() {
            let (a, ea) = ru[i];
            let (b, eb) = rv[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a != u && a != v {
                        f(a, ea, eb);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn diamond() -> Graph {
        // a-b-c-d with chords a-c and b-d missing: the 4-cycle plus a-c
        GraphBuilder::new()
            .nodes(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .edge(3, 0, 0)
            .edge(0, 2, 0)
            .build()
    }

    #[test]
    fn insert_and_remove_keep_rows_sorted() {
        let g = diamond();
        let mut adj = DynamicAdjacency::from_graph(&g);
        assert!(adj.has_edge(NodeId(0), NodeId(2)));
        assert!(!adj.insert(NodeId(0), NodeId(2), EdgeId(9)), "duplicate");
        assert!(!adj.insert(NodeId(1), NodeId(1), EdgeId(9)), "self-loop");
        assert!(adj.insert(NodeId(1), NodeId(3), EdgeId(5)));
        for v in 0..4 {
            let row = adj.neighbors(NodeId(v));
            assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "row {v} sorted");
        }
        assert_eq!(adj.remove(NodeId(3), NodeId(1)), Some(EdgeId(5)));
        assert_eq!(adj.remove(NodeId(3), NodeId(1)), None);
        assert!(!adj.has_edge(NodeId(1), NodeId(3)));
    }

    #[test]
    fn common_neighbors_enumerates_triangles() {
        let g = diamond();
        let adj = DynamicAdjacency::from_graph(&g);
        let mut seen = Vec::new();
        adj.common_neighbors(NodeId(0), NodeId(2), |w, _, _| seen.push(w.0));
        assert_eq!(seen, vec![1, 3]);
        let mut none = Vec::new();
        adj.common_neighbors(NodeId(1), NodeId(3), |w, _, _| none.push(w.0));
        assert_eq!(none, vec![0, 2]);
    }

    #[test]
    fn delta_accessors() {
        let d = EdgeDelta {
            deletes: vec![(0, 1)],
            inserts: vec![(2, 7), (3, 4)],
        };
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.max_node(), Some(7));
        assert!(EdgeDelta::new().is_empty());
        assert_eq!(EdgeDelta::new().max_node(), None);
    }
}
