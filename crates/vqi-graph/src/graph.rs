//! Core labeled, undirected graph type.
//!
//! Graphs here are simple (no self-loops, no parallel edges), undirected,
//! and labeled on both nodes and edges. Construction is append-only:
//! systems that need deletion (e.g. repository maintenance) operate at the
//! granularity of whole graphs or derive subgraphs instead of mutating in
//! place, which keeps indices stable and the representation compact.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node identifier, dense in `0..graph.node_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// An edge identifier, dense in `0..graph.edge_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Compact label type. Applications intern their label strings elsewhere;
/// the substrate only compares labels for equality.
pub type Label = u32;

/// A wildcard label that matches any label under wildcard-aware matching.
///
/// Closure graphs (cluster summary graphs) insert dummy vertices/edges with
/// this special label so that every constituent graph remains represented.
pub const WILDCARD_LABEL: Label = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub(crate) struct EdgeData {
    pub u: NodeId,
    pub v: NodeId,
    pub label: Label,
}

/// An undirected, simple, labeled graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    node_labels: Vec<Label>,
    edges: Vec<EdgeData>,
    /// adjacency: for each node, (neighbor, edge id) pairs.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            node_labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            adj: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node with the given label and returns its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = NodeId(self.node_labels.len() as u32);
        self.node_labels.push(label);
        self.adj.push(Vec::new());
        id
    }

    /// Adds `n` nodes all carrying `label`; returns the id of the first.
    pub fn add_nodes(&mut self, n: usize, label: Label) -> NodeId {
        let first = NodeId(self.node_labels.len() as u32);
        for _ in 0..n {
            self.add_node(label);
        }
        first
    }

    /// Adds an undirected edge `u -- v` with the given label.
    ///
    /// Returns `None` (and leaves the graph unchanged) for self-loops,
    /// out-of-range endpoints, or duplicate edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, label: Label) -> Option<EdgeId> {
        if u == v
            || u.index() >= self.node_labels.len()
            || v.index() >= self.node_labels.len()
            || self.has_edge(u, v)
        {
            return None;
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { u, v, label });
        self.adj[u.index()].push((v, id));
        self.adj[v.index()].push((u, id));
        Some(id)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_labels.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_labels.len() as u32).map(NodeId)
    }

    /// All edge ids.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// The label of `n`. Panics if out of range.
    #[inline]
    pub fn node_label(&self, n: NodeId) -> Label {
        self.node_labels[n.index()]
    }

    /// The label of edge `e`. Panics if out of range.
    #[inline]
    pub fn edge_label(&self, e: EdgeId) -> Label {
        self.edges[e.index()].label
    }

    /// The endpoints `(u, v)` of edge `e`, with `u < v` not guaranteed.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let d = &self.edges[e.index()];
        (d.u, d.v)
    }

    /// Neighbors of `n` with the connecting edge ids.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> impl ExactSizeIterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[n.index()].iter().copied()
    }

    /// The contiguous `(neighbor, edge id)` row of `n` in insertion
    /// order — the zero-copy slice twin of [`Graph::neighbors`], and the
    /// access path the [`crate::storage::GraphStorage`] trait abstracts.
    #[inline]
    pub fn neighbor_slice(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[n.index()]
    }

    /// Degree of `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// True if an edge `u -- v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // scan the smaller adjacency list
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a.index()].iter().any(|&(n, _)| n == b)
    }

    /// The edge id between `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a.index()]
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, e)| e)
    }

    /// Freezes a [`SortedAdjacency`] view of the current graph for
    /// O(log degree) edge lookups. Rows are built in parallel
    /// (order-stable); the view is a snapshot and does not track edges
    /// added afterwards.
    pub fn sorted_adjacency(&self) -> SortedAdjacency {
        SortedAdjacency {
            rows: crate::par::map_range(self.node_count(), |u| {
                let mut row: Vec<(NodeId, EdgeId)> = self.adj[u].clone();
                row.sort_unstable_by_key(|&(n, _)| n);
                row
            }),
        }
    }

    /// Replaces the label of node `n`.
    pub fn set_node_label(&mut self, n: NodeId, label: Label) {
        self.node_labels[n.index()] = label;
    }

    /// Replaces the label of edge `e`.
    pub fn set_edge_label(&mut self, e: EdgeId, label: Label) {
        self.edges[e.index()].label = label;
    }

    /// The multiset of node labels.
    pub fn node_label_multiset(&self) -> Vec<Label> {
        let mut v = self.node_labels.clone();
        v.sort_unstable();
        v
    }

    /// The multiset of edge labels.
    pub fn edge_label_multiset(&self) -> Vec<Label> {
        let mut v: Vec<Label> = self.edges.iter().map(|e| e.label).collect();
        v.sort_unstable();
        v
    }

    /// Edge density `2m / (n (n-1))`; zero for graphs with < 2 nodes.
    pub fn density(&self) -> f64 {
        let n = self.node_count() as f64;
        if n < 2.0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / (n * (n - 1.0))
        }
    }

    /// Builds the subgraph induced by `nodes`.
    ///
    /// Returns the subgraph and, for each new node id `i`, the original node
    /// id it came from (`mapping[i]`). Nodes are renumbered densely in the
    /// order given; duplicate input nodes are ignored after the first.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut index = vec![u32::MAX; self.node_count()];
        let mut mapping = Vec::with_capacity(nodes.len());
        let mut g = Graph::with_capacity(nodes.len(), nodes.len());
        for &n in nodes {
            if index[n.index()] == u32::MAX {
                index[n.index()] = g.add_node(self.node_label(n)).0;
                mapping.push(n);
            }
        }
        for &n in &mapping {
            for (m, e) in self.neighbors(n) {
                if index[m.index()] != u32::MAX && n < m {
                    g.add_edge(
                        NodeId(index[n.index()]),
                        NodeId(index[m.index()]),
                        self.edge_label(e),
                    );
                }
            }
        }
        (g, mapping)
    }

    /// Builds the subgraph consisting of exactly `edge_ids` (plus their
    /// endpoints). Returns the subgraph and the node mapping back to `self`.
    pub fn edge_subgraph(&self, edge_ids: &[EdgeId]) -> (Graph, Vec<NodeId>) {
        let mut index = vec![u32::MAX; self.node_count()];
        let mut mapping = Vec::new();
        let mut g = Graph::new();
        let intern = |g: &mut Graph,
                      mapping: &mut Vec<NodeId>,
                      index: &mut Vec<u32>,
                      n: NodeId,
                      label: Label| {
            if index[n.index()] == u32::MAX {
                index[n.index()] = g.add_node(label).0;
                mapping.push(n);
            }
            NodeId(index[n.index()])
        };
        for &e in edge_ids {
            let (u, v) = self.endpoints(e);
            let nu = intern(&mut g, &mut mapping, &mut index, u, self.node_label(u));
            let nv = intern(&mut g, &mut mapping, &mut index, v, self.node_label(v));
            g.add_edge(nu, nv, self.edge_label(e));
        }
        (g, mapping)
    }

    /// Returns a copy of this graph with node ids permuted by `perm`
    /// (`perm[old] = new`). Used by permutation-invariance tests.
    pub fn permuted(&self, perm: &[usize]) -> Graph {
        assert_eq!(perm.len(), self.node_count());
        let mut g = Graph::with_capacity(self.node_count(), self.edge_count());
        let mut labels = vec![0 as Label; self.node_count()];
        for n in self.nodes() {
            labels[perm[n.index()]] = self.node_label(n);
        }
        for l in labels {
            g.add_node(l);
        }
        for e in self.edges() {
            let (u, v) = self.endpoints(e);
            g.add_edge(
                NodeId(perm[u.index()] as u32),
                NodeId(perm[v.index()] as u32),
                self.edge_label(e),
            );
        }
        g
    }

    /// A short human-readable summary, e.g. `Graph(n=5, m=6)`.
    pub fn summary(&self) -> String {
        format!("Graph(n={}, m={})", self.node_count(), self.edge_count())
    }
}

/// A frozen adjacency view with every row sorted by neighbor id, so edge
/// lookups are binary searches instead of the linear scans of
/// [`Graph::edge_between`] — the difference between an O(deg²) and an
/// O(deg·log deg) truss peel on dense regions. Answers are identical to
/// the `Graph` methods; only the lookup cost changes.
#[derive(Debug, Clone)]
pub struct SortedAdjacency {
    rows: Vec<Vec<(NodeId, EdgeId)>>,
}

impl SortedAdjacency {
    /// The neighbors of `v` as (neighbor, edge id) pairs sorted by
    /// neighbor id.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.rows[v.index()]
    }

    /// The edge between `u` and `v`, if any, by binary search over the
    /// smaller row.
    #[inline]
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.rows[u.index()].len() <= self.rows[v.index()].len() {
            (u, v)
        } else {
            (v, u)
        };
        let row = &self.rows[a.index()];
        row.binary_search_by_key(&b, |&(n, _)| n)
            .ok()
            .map(|i| row[i].1)
    }

    /// True if an edge `u -- v` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Number of rows (nodes) in the view.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    // The mutation hooks below exist for `delta::DynamicAdjacency`, which
    // keeps a SortedAdjacency live across edge insert/delete batches. They
    // are crate-private: the public contract of SortedAdjacency stays "a
    // frozen snapshot" everywhere else.

    /// Grows the view to `n` rows (new rows empty).
    pub(crate) fn grow_rows(&mut self, n: usize) {
        if n > self.rows.len() {
            self.rows.resize(n, Vec::new());
        }
    }

    /// Inserts edge `e` between `u` and `v`, keeping both rows sorted.
    /// Returns false (and changes nothing) if the edge already exists.
    pub(crate) fn insert_sorted(&mut self, u: NodeId, v: NodeId, e: EdgeId) -> bool {
        if u == v || self.has_edge(u, v) {
            return false;
        }
        for (a, b) in [(u, v), (v, u)] {
            let row = &mut self.rows[a.index()];
            let at = row.partition_point(|&(n, _)| n < b);
            row.insert(at, (b, e));
        }
        true
    }

    /// Removes the edge between `u` and `v`, keeping both rows sorted.
    /// Returns the removed edge id, or None if no such edge exists.
    pub(crate) fn remove_sorted(&mut self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let e = self.edge_between(u, v)?;
        for (a, b) in [(u, v), (v, u)] {
            let row = &mut self.rows[a.index()];
            if let Ok(at) = row.binary_search_by_key(&b, |&(n, _)| n) {
                row.remove(at);
            }
        }
        Some(e)
    }
}

/// Convenience builder for small graphs in tests and examples.
///
/// ```
/// use vqi_graph::graph::GraphBuilder;
/// let g = GraphBuilder::new()
///     .nodes(&[0, 0, 1])
///     .edge(0, 1, 7)
///     .edge(1, 2, 7)
///     .build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    g: Graph,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one node per label.
    pub fn nodes(mut self, labels: &[Label]) -> Self {
        for &l in labels {
            self.g.add_node(l);
        }
        self
    }

    /// Adds an edge by raw indices. Panics on invalid or duplicate edges so
    /// test graphs can't silently drop structure.
    pub fn edge(mut self, u: u32, v: u32, label: Label) -> Self {
        self.g
            .add_edge(NodeId(u), NodeId(v), label)
            .expect("GraphBuilder::edge: invalid or duplicate edge");
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Graph {
        self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        GraphBuilder::new()
            .nodes(&[1, 2, 3])
            .edge(0, 1, 10)
            .edge(1, 2, 11)
            .build()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let g = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_label(NodeId(0)), 1);
        assert_eq!(g.edge_label(EdgeId(1)), 11);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = path3();
        assert!(g.add_edge(NodeId(0), NodeId(0), 0).is_none());
        assert!(g.add_edge(NodeId(0), NodeId(1), 99).is_none());
        assert!(g.add_edge(NodeId(1), NodeId(0), 99).is_none());
        assert!(g.add_edge(NodeId(0), NodeId(9), 0).is_none());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_between_finds_edge() {
        let g = path3();
        assert_eq!(g.edge_between(NodeId(2), NodeId(1)), Some(EdgeId(1)));
        assert_eq!(g.edge_between(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = GraphBuilder::new()
            .nodes(&[0, 0, 0, 0])
            .edge(0, 1, 1)
            .edge(1, 2, 1)
            .edge(2, 3, 1)
            .edge(3, 0, 1)
            .edge(0, 2, 2)
            .build();
        let (sub, mapping) = g.induced_subgraph(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 3); // 0-1, 1-2, 0-2
        assert_eq!(mapping, vec![NodeId(0), NodeId(1), NodeId(2)]);
        // duplicate inputs are deduped
        let (sub2, _) = g.induced_subgraph(&[NodeId(0), NodeId(0), NodeId(1)]);
        assert_eq!(sub2.node_count(), 2);
        assert_eq!(sub2.edge_count(), 1);
    }

    #[test]
    fn edge_subgraph_collects_endpoints() {
        let g = GraphBuilder::new()
            .nodes(&[5, 6, 7])
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .build();
        let (sub, mapping) = g.edge_subgraph(&[EdgeId(1)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.edge_label(EdgeId(0)), 2);
        assert_eq!(mapping.len(), 2);
        let labels: Vec<Label> = mapping.iter().map(|&n| g.node_label(n)).collect();
        assert_eq!(labels, vec![6, 7]);
    }

    #[test]
    fn density_of_triangle_is_one() {
        let g = GraphBuilder::new()
            .nodes(&[0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_preserves_structure() {
        let g = path3();
        let p = g.permuted(&[2, 0, 1]);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
        // old node 0 (label 1) is now node 2
        assert_eq!(p.node_label(NodeId(2)), 1);
        assert!(p.has_edge(NodeId(2), NodeId(0))); // old 0-1
        assert!(p.has_edge(NodeId(0), NodeId(1))); // old 1-2
    }

    #[test]
    fn label_multisets_are_sorted() {
        let g = GraphBuilder::new()
            .nodes(&[9, 1, 5])
            .edge(0, 1, 3)
            .edge(1, 2, 1)
            .build();
        assert_eq!(g.node_label_multiset(), vec![1, 5, 9]);
        assert_eq!(g.edge_label_multiset(), vec![1, 3]);
    }

    #[test]
    fn sorted_adjacency_agrees_with_linear_lookups() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let mut g = Graph::new();
        let n = 40;
        for _ in 0..n {
            g.add_node(rng.gen_range(0..3));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.15) {
                    g.add_edge(NodeId(i), NodeId(j), rng.gen_range(0..2));
                }
            }
        }
        let sorted = g.sorted_adjacency();
        for u in g.nodes() {
            let mut row: Vec<(NodeId, EdgeId)> = g.neighbors(u).collect();
            row.sort_unstable_by_key(|&(v, _)| v);
            assert_eq!(sorted.neighbors(u), row.as_slice());
            for v in g.nodes() {
                assert_eq!(sorted.edge_between(u, v), g.edge_between(u, v));
                assert_eq!(sorted.has_edge(u, v), g.has_edge(u, v));
            }
        }
    }
}
