//! Connected-graphlet enumeration and graphlet frequency distributions.
//!
//! MIDAS detects how much a repository changed by comparing the *graphlet
//! frequency distribution* (GFD) of the repository before and after a
//! batch update: a large Euclidean distance between the distributions
//! signals a "major" modification that warrants pattern maintenance.
//!
//! Graphlets here are the 8 connected unlabeled graphs on 3 and 4 nodes:
//!
//! | index | graphlet |
//! |---|---|
//! | 0 | path P3 |
//! | 1 | triangle K3 |
//! | 2 | path P4 |
//! | 3 | star S4 (claw) |
//! | 4 | cycle C4 |
//! | 5 | tailed triangle |
//! | 6 | diamond |
//! | 7 | clique K4 |
//!
//! Enumeration uses the ESU algorithm (Wernicke's FANMOD); sampling uses
//! RAND-ESU, which descends each branch with a per-depth probability and
//! reweights counts by the inverse product, giving unbiased estimates.
//!
//! **Parallelism & determinism.** ESU's per-root recursions are
//! independent, so [`count_graphlets_par`] and [`sample_graphlets_seeded`]
//! fan out over root nodes with [`par`]. Determinism is by construction:
//! every root's counts are computed in full on one worker, collected into
//! a per-root vector, and folded **in root index order** — since f64
//! addition is order-sensitive, fixing the fold order (not just the set
//! of addends) is what makes even sampled, fractional counts
//! bit-identical at any thread count. The sampler is re-seeded *per
//! root* with a self-contained splitmix64 stream
//! (`mix64(seed ⊕ φ·root)`), so the sample is a pure function of
//! `(graph, retention, seed)` — independent of thread count, of
//! scheduling, and of the `rand` crate's stream layout. The legacy
//! [`sample_graphlets`] keeps the caller-supplied-RNG stream for
//! backward compatibility.
//!
//! Exact counting additionally uses an arena-backed recursion with a
//! leaf short-circuit ([`count_root_exact`]): extension sets are ranges
//! of one scratch vector instead of per-branch `Vec` clones, and the
//! final extension level classifies directly instead of building
//! extension sets it will never descend into — the single-thread win
//! over the reference [`count_graphlets`], since almost every call of
//! the generic recursion is such a leaf.

use crate::graph::{Graph, NodeId};
use crate::index::mix64;
use crate::par;
use crate::storage::{GraphStorage, NeighborView, SortedCsr};
use rand::Rng;
use vqi_runtime::{Budget, Meter, VqiError};

/// Number of tracked graphlet classes.
pub const GRAPHLET_CLASSES: usize = 8;

/// Raw graphlet counts (possibly fractional when estimated by sampling).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GraphletCounts {
    /// Counts per class, indexed per the module-level table.
    pub counts: [f64; GRAPHLET_CLASSES],
}

impl GraphletCounts {
    /// Sum of all counts.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Element-wise accumulation (for repository-level distributions).
    pub fn add(&mut self, other: &GraphletCounts) {
        for i in 0..GRAPHLET_CLASSES {
            self.counts[i] += other.counts[i];
        }
    }

    /// The normalized frequency distribution; all zeros if no graphlets.
    pub fn distribution(&self) -> [f64; GRAPHLET_CLASSES] {
        let total = self.total();
        let mut d = [0.0; GRAPHLET_CLASSES];
        if total > 0.0 {
            for (out, c) in d.iter_mut().zip(self.counts.iter()) {
                *out = c / total;
            }
        }
        d
    }
}

/// Euclidean distance between two distributions (MIDAS's drift measure).
pub fn euclidean_distance(a: &[f64; GRAPHLET_CLASSES], b: &[f64; GRAPHLET_CLASSES]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Classifies a connected induced subgraph on `nodes` (3 or 4 nodes) into
/// its graphlet class index, given any edge predicate that answers like
/// [`Graph::has_edge`].
fn classify_by(has_edge: impl Fn(NodeId, NodeId) -> bool, nodes: &[NodeId]) -> usize {
    let k = nodes.len();
    let mut edges = 0usize;
    let mut degs = [0usize; 4];
    for i in 0..k {
        for j in (i + 1)..k {
            if has_edge(nodes[i], nodes[j]) {
                edges += 1;
                degs[i] += 1;
                degs[j] += 1;
            }
        }
    }
    let maxd = *degs[..k].iter().max().unwrap();
    match (k, edges) {
        (3, 2) => 0,              // P3
        (3, 3) => 1,              // K3
        (4, 3) if maxd == 3 => 3, // star
        (4, 3) => 2,              // P4
        (4, 4) if maxd == 3 => 5, // tailed triangle
        (4, 4) => 4,              // C4
        (4, 5) => 6,              // diamond
        (4, 6) => 7,              // K4
        _ => unreachable!("disconnected or wrong-size subgraph"),
    }
}

/// [`classify_by`] over the graph's linear-scan adjacency.
fn classify(g: &Graph, nodes: &[NodeId]) -> usize {
    classify_by(|a, b| g.has_edge(a, b), nodes)
}

/// The branch-descent decision source of RAND-ESU, abstracted so exact
/// enumeration, the legacy `rand`-driven sampler, and the seeded
/// splitmix64 sampler share one recursion.
trait Descend {
    /// Whether to descend a branch retained with probability `pd < 1`.
    fn descend(&mut self, pd: f64) -> bool;
}

/// Exact enumeration: every branch is taken.
struct Always;

impl Descend for Always {
    fn descend(&mut self, _pd: f64) -> bool {
        true
    }
}

/// Adapter over a caller-supplied RNG — stream-compatible with the
/// pre-parallel sampler (same `gen_bool` calls in the same order).
struct RandDescend<'a, R: Rng>(&'a mut R);

impl<R: Rng> Descend for RandDescend<'_, R> {
    fn descend(&mut self, pd: f64) -> bool {
        self.0.gen_bool(pd.clamp(0.0, 1.0))
    }
}

/// Self-contained splitmix64 stream. Deliberately independent of the
/// `rand` crate so seeded samples are identical under every build of
/// this workspace.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }
}

impl Descend for SplitMix64 {
    fn descend(&mut self, pd: f64) -> bool {
        // 53-bit uniform draw in [0, 1)
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < pd.clamp(0.0, 1.0)
    }
}

/// The per-root RNG seed: splitmix64 finalizer over the run seed xored
/// with the golden-ratio multiple of the root id.
fn root_seed(seed: u64, root: NodeId) -> u64 {
    mix64(seed ^ (root.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Runs the (RAND-)ESU recursion for one root node. `blocked` must be
/// all-false on entry and is restored before returning, so callers can
/// reuse one buffer across roots.
fn esu_root<F: FnMut(&[NodeId], f64), D: Descend>(
    g: &Graph,
    v: NodeId,
    k: usize,
    probs: Option<&[f64]>,
    d: &mut D,
    blocked: &mut Vec<bool>,
    visit: &mut F,
) {
    let mut sub = vec![v];
    let ext: Vec<NodeId> = g.neighbors(v).map(|(u, _)| u).filter(|&u| u > v).collect();
    blocked[v.index()] = true;
    for &u in &ext {
        blocked[u.index()] = true;
    }
    extend(g, v, &mut sub, ext, k, blocked, visit, 1.0, probs, d);
    blocked[v.index()] = false;
    for u in g.neighbors(v).map(|(u, _)| u) {
        blocked[u.index()] = false;
    }
}

/// Runs the (RAND-)ESU recursion for every root node. When `probs` is
/// `Some`, each branch at depth `d` descends with probability `probs[d]`
/// and visited subgraphs carry the inverse probability product as weight.
fn esu<F: FnMut(&[NodeId], f64), D: Descend>(
    g: &Graph,
    k: usize,
    probs: Option<&[f64]>,
    d: &mut D,
    mut visit: F,
) {
    if k == 0 || g.node_count() < k {
        return;
    }
    // blocked[u]: u is in the subgraph or already in some extension set
    let mut blocked = vec![false; g.node_count()];
    for v in g.nodes() {
        esu_root(g, v, k, probs, d, &mut blocked, &mut visit);
    }
}

#[allow(clippy::too_many_arguments)]
fn extend<F: FnMut(&[NodeId], f64), D: Descend>(
    g: &Graph,
    root: NodeId,
    sub: &mut Vec<NodeId>,
    ext: Vec<NodeId>,
    k: usize,
    blocked: &mut Vec<bool>,
    visit: &mut F,
    weight: f64,
    probs: Option<&[f64]>,
    d: &mut D,
) {
    if sub.len() == k {
        visit(sub, weight);
        return;
    }
    let depth = sub.len();
    let mut remaining = ext;
    while let Some(w) = remaining.pop() {
        let mut branch_weight = weight;
        if let Some(p) = probs {
            let pd = p.get(depth).copied().unwrap_or(1.0);
            if pd < 1.0 {
                if !d.descend(pd) {
                    continue;
                }
                branch_weight /= pd;
            }
        }
        // extension' = remaining ∪ exclusive neighbors of w (greater than root)
        let newly: Vec<NodeId> = g
            .neighbors(w)
            .map(|(u, _)| u)
            .filter(|&u| u > root && !blocked[u.index()])
            .collect();
        let mut next_ext = remaining.clone();
        next_ext.extend_from_slice(&newly);
        sub.push(w);
        for &u in &newly {
            blocked[u.index()] = true;
        }
        extend(
            g,
            root,
            sub,
            next_ext,
            k,
            blocked,
            visit,
            branch_weight,
            probs,
            d,
        );
        for &u in &newly {
            blocked[u.index()] = false;
        }
        sub.pop();
    }
}

/// ESU enumeration of all connected induced subgraphs with exactly `k`
/// nodes; `visit` receives each node set once.
pub fn enumerate_connected_subgraphs<F: FnMut(&[NodeId])>(g: &Graph, k: usize, mut visit: F) {
    esu(g, k, None, &mut Always, |nodes, _| visit(nodes));
}

/// Exact ESU for one root over an id-sorted neighbor freeze (any
/// [`NeighborView`] — a heap [`crate::graph::SortedAdjacency`] or a
/// packed [`SortedCsr`]), optimized for counting: extension sets live
/// in one shared `arena` (ranges instead of per-branch `Vec` clones),
/// and the last level short-circuits — when one node completes the
/// subgraph there is no point building its extension set, which in the
/// generic recursion is the dominant cost since almost every `extend`
/// call is a leaf. Enumerates the same subgraph sets as [`esu_root`]
/// with `Always` (extension *order* differs, which counting is
/// insensitive to).
fn count_root_exact<V: NeighborView + ?Sized>(
    v: NodeId,
    k: usize,
    sorted: &V,
    blocked: &mut [bool],
    arena: &mut Vec<NodeId>,
    sub: &mut Vec<NodeId>,
    counts: &mut GraphletCounts,
    meter: &mut Option<Meter>,
) -> Result<(), VqiError> {
    sub.clear();
    sub.push(v);
    let base = arena.len();
    for &(u, _) in sorted.neighbors(v) {
        if u > v {
            arena.push(u);
        }
    }
    blocked[v.index()] = true;
    for i in base..arena.len() {
        blocked[arena[i].index()] = true;
    }
    let end = arena.len();
    let r = extend_exact(v, base, end, k, sorted, blocked, arena, sub, counts, meter);
    blocked[v.index()] = false;
    for &(u, _) in sorted.neighbors(v) {
        blocked[u.index()] = false;
    }
    arena.truncate(base);
    r
}

#[allow(clippy::too_many_arguments)]
fn extend_exact<V: NeighborView + ?Sized>(
    root: NodeId,
    ext_start: usize,
    ext_end: usize,
    k: usize,
    sorted: &V,
    blocked: &mut [bool],
    arena: &mut Vec<NodeId>,
    sub: &mut Vec<NodeId>,
    counts: &mut GraphletCounts,
    meter: &mut Option<Meter>,
) -> Result<(), VqiError> {
    if sub.len() + 1 == k {
        // leaf level: every extension node completes one subgraph
        for i in ext_start..ext_end {
            if let Some(m) = meter.as_mut() {
                m.tick()?;
            }
            sub.push(arena[i]);
            counts.counts[classify_by(|a, b| sorted.has_edge(a, b), sub)] += 1.0;
            sub.pop();
        }
        return Ok(());
    }
    let mut end = ext_end;
    while end > ext_start {
        if let Some(m) = meter.as_mut() {
            m.tick()?;
        }
        end -= 1;
        let w = arena[end];
        // child extension = remaining siblings ∪ exclusive neighbors of w
        let child_start = arena.len();
        arena.extend_from_within(ext_start..end);
        let newly_start = arena.len();
        for &(u, _) in sorted.neighbors(w) {
            if u > root && !blocked[u.index()] {
                arena.push(u);
            }
        }
        let child_end = arena.len();
        for i in newly_start..child_end {
            blocked[arena[i].index()] = true;
        }
        sub.push(w);
        let r = extend_exact(
            root,
            child_start,
            child_end,
            k,
            sorted,
            blocked,
            arena,
            sub,
            counts,
            meter,
        );
        sub.pop();
        for i in newly_start..child_end {
            blocked[arena[i].index()] = false;
        }
        arena.truncate(child_start);
        r?;
    }
    Ok(())
}

/// Meterless wrapper over [`count_root_exact`] for the plain (budget-
/// free) paths: with no meter armed the enumeration cannot trip a
/// quota, so the `Result` is vacuously `Ok` and is dropped here.
fn count_root_plain<V: NeighborView + ?Sized>(
    v: NodeId,
    k: usize,
    sorted: &V,
    blocked: &mut [bool],
    arena: &mut Vec<NodeId>,
    sub: &mut Vec<NodeId>,
    counts: &mut GraphletCounts,
) {
    let _ = count_root_exact(v, k, sorted, blocked, arena, sub, counts, &mut None);
}

/// Exact graphlet counts of `g` (sizes 3 and 4) — single-threaded
/// reference implementation.
pub fn count_graphlets(g: &Graph) -> GraphletCounts {
    let mut counts = GraphletCounts::default();
    enumerate_connected_subgraphs(g, 3, |nodes| {
        counts.counts[classify(g, nodes)] += 1.0;
    });
    enumerate_connected_subgraphs(g, 4, |nodes| {
        counts.counts[classify(g, nodes)] += 1.0;
    });
    counts
}

/// Exact graphlet counts of `g`, fanned out over ESU root nodes.
///
/// Each worker enumerates a contiguous range of roots (reusing one
/// `blocked` buffer and one extension arena) and produces per-root
/// counts; the per-root counts are folded in root index order. Exact
/// counts are integer-valued, so the result equals [`count_graphlets`]
/// bit for bit at any thread count. The per-root enumeration is
/// [`count_root_exact`] — arena-backed extension sets with a leaf
/// short-circuit instead of per-branch `Vec` clones — which is also the
/// single-thread speedup over the reference.
pub fn count_graphlets_par(g: &Graph) -> GraphletCounts {
    if g.node_count() < 3 {
        return GraphletCounts::default();
    }
    let _s = vqi_observe::span("kernel.graphlet.count");
    vqi_observe::incr("kernel.graphlet.count.roots", g.node_count() as u64);
    let sorted = g.sorted_adjacency();
    census_over(g.node_count(), &sorted)
}

/// Exact graphlet counts over any [`GraphStorage`] backend: freezes a
/// packed [`SortedCsr`] view and runs the same root-chunked census as
/// [`count_graphlets_par`]. Per-root exact counts are integers, so the
/// result equals [`count_graphlets`] — and the heap-backed
/// [`count_graphlets_par`] — bit for bit on any backend, at any thread
/// count.
pub fn count_graphlets_storage<S: GraphStorage + ?Sized>(g: &S) -> GraphletCounts {
    if g.node_count() < 3 {
        return GraphletCounts::default();
    }
    let _s = vqi_observe::span("kernel.graphlet.count");
    vqi_observe::incr("kernel.graphlet.count.roots", g.node_count() as u64);
    let sorted = SortedCsr::from_storage(g);
    census_over(g.node_count(), &sorted)
}

/// Shared body of the exact parallel census: chunked roots, per-worker
/// scratch, per-root counts folded in root index order.
fn census_over<V: NeighborView>(n: usize, sorted: &V) -> GraphletCounts {
    let per_root: Vec<GraphletCounts> = par::map_chunks(n, |roots| {
        let mut blocked = vec![false; n];
        let mut arena = Vec::new();
        let mut sub = Vec::with_capacity(4);
        let mut out = Vec::with_capacity(roots.len());
        for u in roots {
            let v = NodeId(u as u32);
            let mut counts = GraphletCounts::default();
            count_root_plain(
                v,
                3,
                sorted,
                &mut blocked,
                &mut arena,
                &mut sub,
                &mut counts,
            );
            count_root_plain(
                v,
                4,
                sorted,
                &mut blocked,
                &mut arena,
                &mut sub,
                &mut counts,
            );
            out.push(counts);
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    let mut total = GraphletCounts::default();
    for c in &per_root {
        total.add(c);
    }
    total
}

/// RAND-ESU estimate of graphlet counts. `retention` in `(0, 1]` is the
/// per-depth descent probability (1.0 reproduces exact counts); smaller
/// values trade accuracy for speed on large networks. Legacy entry
/// point: consumes the caller's RNG stream and is therefore tied to its
/// state — prefer [`sample_graphlets_seeded`] for reproducible runs.
pub fn sample_graphlets<R: Rng>(g: &Graph, retention: f64, rng: &mut R) -> GraphletCounts {
    let mut counts = GraphletCounts::default();
    let mut d = RandDescend(rng);
    for k in [3usize, 4] {
        let probs = vec![retention; k];
        esu(g, k, Some(&probs), &mut d, |nodes, weight| {
            counts.counts[classify(g, nodes)] += weight;
        });
    }
    counts
}

/// Deterministic RAND-ESU estimate, fanned out over root nodes: a pure
/// function of `(g, retention, seed)`.
///
/// Every root descends with its own splitmix64 stream seeded by
/// [`root_seed`], and per-root weighted counts are folded in root index
/// order — so the estimate is bit-identical at any thread count, and
/// identical whether roots are processed forwards, chunked, or spread
/// across machines. `retention = 1.0` never consults the RNG and
/// reproduces [`count_graphlets`] exactly (and takes the
/// [`count_root_exact`] fast path, since per-root exact integer counts
/// are identical however they are enumerated).
pub fn sample_graphlets_seeded(g: &Graph, retention: f64, seed: u64) -> GraphletCounts {
    // no meter is armed, so the metered variant cannot fail
    sample_graphlets_seeded_full(g, retention, seed, None).unwrap_or_default()
}

/// Budget-aware [`sample_graphlets_seeded`]: the census honors
/// `ctrl`'s cancel flag, deadline, and per-stage tick quota.
///
/// Every root gets a **fresh meter** from the budget, so whether a
/// given root trips its quota is a pure function of `(g, retention,
/// seed, quota)` — independent of the thread count — and the first
/// error in root index order is the one returned. With an unlimited
/// budget the result is bit-identical to the plain entry point.
pub fn sample_graphlets_seeded_ctrl(
    g: &Graph,
    retention: f64,
    seed: u64,
    ctrl: &Budget,
) -> Result<GraphletCounts, VqiError> {
    ctrl.check("kernel.graphlet")?;
    sample_graphlets_seeded_full(g, retention, seed, Some(ctrl))
}

/// Budget-aware exact census (sizes 3 and 4): [`count_graphlets_par`]
/// with per-root quota metering. Equals [`count_graphlets`] bit for bit
/// under an unlimited budget.
pub fn count_graphlets_ctrl(g: &Graph, ctrl: &Budget) -> Result<GraphletCounts, VqiError> {
    // retention 1.0 takes the exact fast path and never consults the RNG
    sample_graphlets_seeded_ctrl(g, 1.0, 0, ctrl)
}

/// Shared body of the seeded census. `ctrl: None` is the plain
/// (infallible) path; `Some` arms one fresh [`Meter`] per root.
fn sample_graphlets_seeded_full(
    g: &Graph,
    retention: f64,
    seed: u64,
    ctrl: Option<&Budget>,
) -> Result<GraphletCounts, VqiError> {
    if g.node_count() < 3 {
        return Ok(GraphletCounts::default());
    }
    let _s = vqi_observe::span("kernel.graphlet.sample");
    vqi_observe::incr("kernel.graphlet.sample.roots", g.node_count() as u64);
    let exact = retention >= 1.0;
    let sorted = g.sorted_adjacency();
    let chunks: Vec<Result<Vec<GraphletCounts>, VqiError>> =
        par::map_chunks(g.node_count(), |roots| {
            let mut blocked = vec![false; g.node_count()];
            let mut arena = Vec::new();
            let mut sub = Vec::with_capacity(4);
            let mut out = Vec::with_capacity(roots.len());
            for u in roots {
                let v = NodeId(u as u32);
                let mut counts = GraphletCounts::default();
                let mut meter = ctrl.map(|c| c.meter("kernel.graphlet"));
                if exact {
                    count_root_exact(
                        v,
                        3,
                        &sorted,
                        &mut blocked,
                        &mut arena,
                        &mut sub,
                        &mut counts,
                        &mut meter,
                    )?;
                    count_root_exact(
                        v,
                        4,
                        &sorted,
                        &mut blocked,
                        &mut arena,
                        &mut sub,
                        &mut counts,
                        &mut meter,
                    )?;
                } else {
                    let mut rng = SplitMix64::new(root_seed(seed, v));
                    let mut aborted: Option<VqiError> = None;
                    for k in [3usize, 4] {
                        let probs = [retention; 4];
                        let mut tally = |nodes: &[NodeId], w: f64| {
                            if aborted.is_some() {
                                return;
                            }
                            if let Some(m) = meter.as_mut() {
                                if let Err(e) = m.tick() {
                                    aborted = Some(e);
                                    return;
                                }
                            }
                            counts.counts[classify_by(|a, b| sorted.has_edge(a, b), nodes)] += w;
                        };
                        esu_root(
                            g,
                            v,
                            k,
                            Some(&probs[..k]),
                            &mut rng,
                            &mut blocked,
                            &mut tally,
                        );
                        if aborted.is_some() {
                            break;
                        }
                    }
                    if let Some(e) = aborted {
                        return Err(e);
                    }
                }
                out.push(counts);
            }
            Ok(out)
        });
    // root-index-order fold: the fixed order is what makes the
    // fractional (f64) sums thread-count invariant, and makes the
    // first-erring root's error the one reported at any thread count
    let mut total = GraphletCounts::default();
    for chunk in chunks {
        for c in chunk? {
            total.add(&c);
        }
    }
    Ok(total)
}

/// Exact graphlet frequency distribution of a single graph.
pub fn graphlet_distribution(g: &Graph) -> [f64; GRAPHLET_CLASSES] {
    count_graphlets(g).distribution()
}

/// Aggregate graphlet frequency distribution of a collection of graphs
/// (counts summed before normalizing, as MIDAS computes the GFD of `D`).
pub fn collection_distribution<'a, I: IntoIterator<Item = &'a Graph>>(
    graphs: I,
) -> [f64; GRAPHLET_CLASSES] {
    let mut total = GraphletCounts::default();
    for g in graphs {
        total.add(&count_graphlets(g));
    }
    total.distribution()
}

/// Aggregate GFD by per-graph seeded RAND-ESU, parallel across graphs
/// with per-graph counts summed in collection order. This is what MIDAS
/// drift detection runs: a pure function of `(graphs, retention, seed)`
/// at any thread count. `retention = 1.0` (the MIDAS default) equals
/// [`collection_distribution`] exactly.
pub fn collection_distribution_sampled(
    graphs: &[&Graph],
    retention: f64,
    seed: u64,
) -> [f64; GRAPHLET_CLASSES] {
    let _s = vqi_observe::span("kernel.graphlet.collection");
    vqi_observe::incr("kernel.graphlet.collection.graphs", graphs.len() as u64);
    let per_graph: Vec<GraphletCounts> =
        par::map(graphs, |g| sample_graphlets_seeded(g, retention, seed));
    let mut total = GraphletCounts::default();
    for c in &per_graph {
        total.add(c);
    }
    total.distribution()
}

/// Budget-aware [`collection_distribution_sampled`]: each graph's
/// census runs under `ctrl` (fresh per-root meters), per-graph results
/// are folded in collection order, and the first failing graph's error
/// wins — deterministically, at any thread count. Unlimited budgets
/// reproduce the plain entry point bit for bit.
pub fn collection_distribution_sampled_ctrl(
    graphs: &[&Graph],
    retention: f64,
    seed: u64,
    ctrl: &Budget,
) -> Result<[f64; GRAPHLET_CLASSES], VqiError> {
    ctrl.check("kernel.graphlet")?;
    let _s = vqi_observe::span("kernel.graphlet.collection");
    vqi_observe::incr("kernel.graphlet.collection.graphs", graphs.len() as u64);
    let per_graph: Vec<Result<GraphletCounts, VqiError>> = par::map(graphs, |g| {
        sample_graphlets_seeded_full(g, retention, seed, Some(ctrl))
    });
    let mut total = GraphletCounts::default();
    for c in per_graph {
        total.add(&c?);
    }
    Ok(total.distribution())
}

// ---------------------------------------------------------------------------
// Incremental maintenance
// ---------------------------------------------------------------------------

/// Per-batch statistics of a [`CensusMaintainer::apply`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct CensusDeltaStats {
    /// Edge inserts actually applied.
    pub inserts: usize,
    /// Edge deletes actually applied.
    pub deletes: usize,
    /// Mutations skipped as no-ops.
    pub skipped: usize,
    /// ESU roots recounted (the delta working set).
    pub recounted_roots: usize,
}

/// Incremental exact graphlet census: keeps the per-root ESU counts of
/// [`count_graphlets_par`] alive across edge-churn batches and recounts
/// only the *affected roots*.
///
/// **Affected roots.** Every size-3/4 connected subgraph is enumerated
/// exactly once, rooted at its minimum node id. A subgraph gained or
/// lost by mutating edge `u -- v` contains that edge, so its root lies
/// within two hops of `u` or `v` and is `≤ min(u, v)`. Gathering that
/// ball per mutation against the evolving adjacency (deletes before
/// removal, inserts after insertion) therefore covers every root whose
/// local count can change; each affected root is recounted once against
/// the final adjacency and the stored-vs-fresh difference is folded into
/// the running total.
///
/// **Determinism.** Recounts run through [`par::map_chunks`] over the
/// sorted affected-root list, and exact counts are integer-valued `f64`s
/// — every subtraction and re-add is exact, so the maintained totals are
/// bit-identical to a from-scratch [`count_graphlets_par`] at any thread
/// count (property-tested across insert/delete/mixed batches).
#[derive(Debug, Clone)]
pub struct CensusMaintainer {
    adj: crate::delta::DynamicAdjacency,
    per_root: Vec<GraphletCounts>,
    total: GraphletCounts,
}

impl CensusMaintainer {
    /// Seeds the maintainer from `g` with a full parallel census.
    pub fn new(g: &Graph) -> Self {
        let adj = crate::delta::DynamicAdjacency::from_graph(g);
        let n = adj.node_count();
        let per_root: Vec<GraphletCounts> = {
            let view = adj.view();
            par::map_chunks(n, |roots| {
                let mut blocked = vec![false; n];
                let mut arena = Vec::new();
                let mut sub = Vec::with_capacity(4);
                let mut out = Vec::with_capacity(roots.len());
                for u in roots {
                    let v = NodeId(u as u32);
                    let mut counts = GraphletCounts::default();
                    count_root_plain(v, 3, view, &mut blocked, &mut arena, &mut sub, &mut counts);
                    count_root_plain(v, 4, view, &mut blocked, &mut arena, &mut sub, &mut counts);
                    out.push(counts);
                }
                out
            })
            .into_iter()
            .flatten()
            .collect()
        };
        let mut total = GraphletCounts::default();
        for c in &per_root {
            total.add(c);
        }
        Self {
            adj,
            per_root,
            total,
        }
    }

    /// Nodes in the maintained universe.
    pub fn node_count(&self) -> usize {
        self.adj.node_count()
    }

    /// The maintained total counts (equal to [`count_graphlets_par`] of
    /// the current graph, bit for bit).
    pub fn counts(&self) -> &GraphletCounts {
        &self.total
    }

    /// The maintained graphlet frequency distribution.
    pub fn distribution(&self) -> [f64; GRAPHLET_CLASSES] {
        self.total.distribution()
    }

    /// Grows the node universe to at least `n` nodes (new roots count 0
    /// until edges arrive).
    pub fn grow_nodes(&mut self, n: usize) {
        self.adj.grow(n);
        if n > self.per_root.len() {
            self.per_root.resize(n, GraphletCounts::default());
        }
    }

    /// Nodes within two hops of `u` or `v` that can root a subgraph
    /// containing edge `u -- v`, deduplicated through `flags`.
    fn gather_roots(&self, u: NodeId, v: NodeId, flags: &mut [bool], out: &mut Vec<u32>) {
        let cap = u.0.min(v.0);
        let consider = |x: NodeId, out: &mut Vec<u32>, flags: &mut [bool]| {
            if x.0 <= cap && !flags[x.index()] {
                flags[x.index()] = true;
                out.push(x.0);
            }
        };
        for s in [u, v] {
            consider(s, out, flags);
            for &(a, _) in self.adj.neighbors(s) {
                consider(a, out, flags);
                for &(b, _) in self.adj.neighbors(a) {
                    consider(b, out, flags);
                }
            }
        }
    }

    /// Applies one edge-churn batch (deletes first, then inserts) and
    /// restores exact totals by recounting only the affected roots.
    pub fn apply(&mut self, delta: &crate::delta::EdgeDelta) -> CensusDeltaStats {
        let _s = vqi_observe::span("kernel.census.delta");
        vqi_observe::incr("kernel.census.delta.batches", 1);
        if let Some(mx) = delta.max_node() {
            self.grow_nodes(mx as usize + 1);
        }
        let n = self.node_count();
        let mut stats = CensusDeltaStats::default();
        let mut flags = vec![false; n];
        let mut roots: Vec<u32> = Vec::new();

        // deletes gather against the pre-removal adjacency: a vanished
        // subgraph still holds the dying edge when its ball is walked
        for &(a, b) in &delta.deletes {
            let (u, v) = (NodeId(a), NodeId(b));
            if a == b || !self.adj.has_edge(u, v) {
                stats.skipped += 1;
                continue;
            }
            self.gather_roots(u, v, &mut flags, &mut roots);
            self.adj.remove(u, v);
            stats.deletes += 1;
        }
        // inserts gather after insertion, so new paths through the fresh
        // edge are part of the ball
        for &(a, b) in &delta.inserts {
            let (u, v) = (NodeId(a), NodeId(b));
            if a == b || self.adj.has_edge(u, v) {
                stats.skipped += 1;
                continue;
            }
            self.adj.insert(u, v, crate::graph::EdgeId(0));
            self.gather_roots(u, v, &mut flags, &mut roots);
            stats.inserts += 1;
        }
        vqi_observe::incr("kernel.census.delta.inserts", stats.inserts as u64);
        vqi_observe::incr("kernel.census.delta.deletes", stats.deletes as u64);
        if roots.is_empty() {
            return stats;
        }

        roots.sort_unstable();
        let view = self.adj.view();
        let fresh: Vec<GraphletCounts> = par::map_chunks(roots.len(), |range| {
            let mut blocked = vec![false; n];
            let mut arena = Vec::new();
            let mut sub = Vec::with_capacity(4);
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                let v = NodeId(roots[i]);
                let mut counts = GraphletCounts::default();
                count_root_plain(v, 3, view, &mut blocked, &mut arena, &mut sub, &mut counts);
                count_root_plain(v, 4, view, &mut blocked, &mut arena, &mut sub, &mut counts);
                out.push(counts);
            }
            out
        })
        .into_iter()
        .flatten()
        .collect();
        for (i, &x) in roots.iter().enumerate() {
            let old = &mut self.per_root[x as usize];
            for c in 0..GRAPHLET_CLASSES {
                // exact integer-valued f64s: the subtract/re-add cancels
                // without rounding, keeping totals bit-identical to a
                // from-scratch census
                self.total.counts[c] += fresh[i].counts[c] - old.counts[c];
            }
            *old = fresh[i];
        }
        stats.recounted_roots = roots.len();
        vqi_observe::incr("kernel.census.delta.roots", roots.len() as u64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn clique(n: usize) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(0)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(nodes[i], nodes[j], 0);
            }
        }
        g
    }

    fn path(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut prev = g.add_node(0);
        for _ in 1..n {
            let cur = g.add_node(0);
            g.add_edge(prev, cur, 0);
            prev = cur;
        }
        g
    }

    #[test]
    fn triangle_counts() {
        let c = count_graphlets(&clique(3));
        assert_eq!(c.counts[1], 1.0);
        assert_eq!(c.counts[0], 0.0);
        assert_eq!(c.total(), 1.0);
    }

    #[test]
    fn k4_counts() {
        let c = count_graphlets(&clique(4));
        // K4 contains 4 triangles, 0 P3... wait: induced 3-subsets of K4
        // are all triangles (4 of them), and the single 4-set is K4.
        assert_eq!(c.counts[1], 4.0);
        assert_eq!(c.counts[0], 0.0);
        assert_eq!(c.counts[7], 1.0);
        assert_eq!(c.total(), 5.0);
    }

    #[test]
    fn path_counts() {
        let c = count_graphlets(&path(4));
        // P4 contains 2 induced P3s and 1 induced P4
        assert_eq!(c.counts[0], 2.0);
        assert_eq!(c.counts[2], 1.0);
        assert_eq!(c.total(), 3.0);
    }

    #[test]
    fn star_counts() {
        // S4: center 0, leaves 1..3
        let g = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(0, 2, 0)
            .edge(0, 3, 0)
            .build();
        let c = count_graphlets(&g);
        assert_eq!(c.counts[0], 3.0); // each pair of leaves + center
        assert_eq!(c.counts[3], 1.0); // the star itself
    }

    #[test]
    fn cycle4_counts() {
        let g = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .edge(3, 0, 0)
            .build();
        let c = count_graphlets(&g);
        assert_eq!(c.counts[4], 1.0);
        assert_eq!(c.counts[0], 4.0);
    }

    #[test]
    fn diamond_and_tailed_triangle() {
        let diamond = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(1, 3, 0)
            .edge(2, 3, 0)
            .build();
        assert_eq!(count_graphlets(&diamond).counts[6], 1.0);
        let tailed = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(2, 3, 0)
            .build();
        assert_eq!(count_graphlets(&tailed).counts[5], 1.0);
    }

    #[test]
    fn distribution_sums_to_one() {
        let g = clique(5);
        let d = graphlet_distribution(&g);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // empty graph: all zeros
        let z = graphlet_distribution(&Graph::new());
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn distribution_is_permutation_invariant() {
        let g = GraphBuilder::new()
            .nodes(&[0; 5])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 0, 0)
            .edge(2, 3, 0)
            .edge(3, 4, 0)
            .build();
        let h = g.permuted(&[4, 2, 0, 3, 1]);
        assert_eq!(graphlet_distribution(&g), graphlet_distribution(&h));
    }

    #[test]
    fn esu_enumerates_each_subgraph_once() {
        let g = clique(5);
        let mut count = 0usize;
        let mut seen = std::collections::HashSet::new();
        enumerate_connected_subgraphs(&g, 3, |nodes| {
            count += 1;
            let mut key: Vec<u32> = nodes.iter().map(|n| n.0).collect();
            key.sort_unstable();
            assert!(seen.insert(key), "duplicate subgraph");
        });
        // C(5,3) = 10 connected triples in a clique
        assert_eq!(count, 10);
    }

    #[test]
    fn sampling_with_full_retention_is_exact() {
        let g = clique(5);
        let mut rng = SmallRng::seed_from_u64(1);
        let exact = count_graphlets(&g);
        let sampled = sample_graphlets(&g, 1.0, &mut rng);
        assert_eq!(exact.counts, sampled.counts);
        // the seeded sampler at full retention never consults the RNG
        assert_eq!(exact.counts, sample_graphlets_seeded(&g, 1.0, 42).counts);
    }

    #[test]
    fn sampling_is_roughly_unbiased() {
        // moderately dense ER-ish graph
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..30).map(|_| g.add_node(0)).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        use rand::Rng;
        for i in 0..30 {
            for j in (i + 1)..30 {
                if rng.gen_bool(0.2) {
                    g.add_edge(nodes[i], nodes[j], 0);
                }
            }
        }
        let exact = count_graphlets(&g).total();
        let mut est_sum = 0.0;
        let runs = 30;
        for s in 0..runs {
            let mut r = SmallRng::seed_from_u64(1000 + s);
            est_sum += sample_graphlets(&g, 0.7, &mut r).total();
        }
        let est = est_sum / runs as f64;
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.15, "estimate {est} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn seeded_sampling_is_roughly_unbiased() {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..30).map(|_| g.add_node(0)).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        use rand::Rng;
        for i in 0..30 {
            for j in (i + 1)..30 {
                if rng.gen_bool(0.2) {
                    g.add_edge(nodes[i], nodes[j], 0);
                }
            }
        }
        let exact = count_graphlets(&g).total();
        let runs = 30u64;
        let est_sum: f64 = (0..runs)
            .map(|s| sample_graphlets_seeded(&g, 0.7, 1000 + s).total())
            .sum();
        let est = est_sum / runs as f64;
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.15, "estimate {est} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn euclidean_distance_properties() {
        let a = [0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(euclidean_distance(&a, &a), 0.0);
        assert!((euclidean_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collection_distribution_aggregates() {
        let graphs = [clique(3), path(3)];
        let d = collection_distribution(graphs.iter());
        // one triangle + one P3 -> 50/50
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_counts_match_reference_across_thread_counts() {
        use crate::generate::{assign_labels, erdos_renyi};
        let _guard = crate::kernel_test_lock();
        let prev = par::thread_cap();
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut g = erdos_renyi(24, 0.2, 0, &mut rng);
            assign_labels(&mut g, 3, 2, &mut rng);
            let expect = count_graphlets(&g);
            for cap in [1usize, 2, 4] {
                par::set_thread_cap(cap);
                assert_eq!(
                    count_graphlets_par(&g).counts,
                    expect.counts,
                    "seed {seed} cap {cap}"
                );
            }
            par::set_thread_cap(prev);
        }
    }

    #[test]
    fn seeded_sampling_is_thread_count_invariant() {
        use crate::generate::erdos_renyi;
        let _guard = crate::kernel_test_lock();
        let prev = par::thread_cap();
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(100 + seed);
            let g = erdos_renyi(24, 0.2, 0, &mut rng);
            par::set_thread_cap(1);
            let one = sample_graphlets_seeded(&g, 0.6, seed);
            for cap in [2usize, 3, 4, 8] {
                par::set_thread_cap(cap);
                let many = sample_graphlets_seeded(&g, 0.6, seed);
                assert_eq!(one.counts, many.counts, "seed {seed} cap {cap}");
            }
            // the sequential toggle is the same code path as cap 1
            par::set_thread_cap(prev);
            par::set_parallel_enabled(false);
            let seq = sample_graphlets_seeded(&g, 0.6, seed);
            par::set_parallel_enabled(true);
            assert_eq!(one.counts, seq.counts, "seed {seed} sequential toggle");
        }
    }

    #[test]
    fn sampled_collection_distribution_with_full_retention_is_exact() {
        let graphs = [clique(4), path(5), clique(3)];
        let refs: Vec<&Graph> = graphs.iter().collect();
        let exact = collection_distribution(graphs.iter());
        let sampled = collection_distribution_sampled(&refs, 1.0, 7);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        use crate::generate::erdos_renyi;
        use vqi_runtime::Budget;
        let _guard = crate::kernel_test_lock();
        let mut rng = SmallRng::seed_from_u64(77);
        let g = erdos_renyi(24, 0.2, 0, &mut rng);
        let b = Budget::unlimited();
        assert_eq!(
            count_graphlets_ctrl(&g, &b).expect("unlimited").counts,
            count_graphlets_par(&g).counts
        );
        assert_eq!(
            sample_graphlets_seeded_ctrl(&g, 0.6, 5, &b)
                .expect("unlimited")
                .counts,
            sample_graphlets_seeded(&g, 0.6, 5).counts
        );
        let graphs = [clique(4), path(5), clique(3)];
        let refs: Vec<&Graph> = graphs.iter().collect();
        assert_eq!(
            collection_distribution_sampled_ctrl(&refs, 1.0, 7, &b).expect("unlimited"),
            collection_distribution_sampled(&refs, 1.0, 7)
        );
    }

    #[test]
    fn graphlet_tick_quota_trips_identically_across_thread_counts() {
        use vqi_runtime::{Budget, VqiError};
        let _guard = crate::kernel_test_lock();
        let g = clique(8);
        let b = Budget::unlimited().with_kernel_ticks(10);
        // every root gets a fresh 10-tick meter, so which root trips —
        // and therefore the returned error — cannot depend on how the
        // roots were chunked across workers
        let prev = par::thread_cap();
        let mut outcomes = Vec::new();
        for cap in [1usize, 2, 4] {
            par::set_thread_cap(cap);
            outcomes.push(count_graphlets_ctrl(&g, &b));
        }
        par::set_thread_cap(prev);
        for o in &outcomes {
            assert_eq!(
                *o,
                Err(VqiError::QuotaExceeded {
                    stage: "kernel.graphlet".into()
                })
            );
        }
        // a generous quota restores the exact result
        let roomy = Budget::unlimited().with_kernel_ticks(1_000_000);
        assert_eq!(
            count_graphlets_ctrl(&g, &roomy).expect("roomy").counts,
            count_graphlets(&g).counts
        );
    }

    #[test]
    fn sampled_census_honors_quota_and_cancel() {
        use vqi_runtime::{Budget, CancelToken, VqiError};
        let _guard = crate::kernel_test_lock();
        let g = clique(8);
        // fractional retention takes the RAND-ESU path; a tiny quota
        // must still trip deterministically there
        let b = Budget::unlimited().with_kernel_ticks(3);
        let first = sample_graphlets_seeded_ctrl(&g, 0.9, 3, &b);
        let second = sample_graphlets_seeded_ctrl(&g, 0.9, 3, &b);
        assert_eq!(first, second);
        assert!(matches!(first, Err(VqiError::QuotaExceeded { .. })));
        // a pre-canceled token rejects the call up front
        let token = CancelToken::new();
        token.cancel();
        let canceled = Budget::unlimited().with_cancel(token);
        assert!(matches!(
            sample_graphlets_seeded_ctrl(&g, 1.0, 0, &canceled),
            Err(VqiError::Canceled { .. })
        ));
    }

    fn graph_of(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_node(0);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v), 0)
                .expect("test edge list must be simple");
        }
        g
    }

    #[track_caller]
    fn assert_census_matches(m: &CensusMaintainer, edges: &[(u32, u32)], ctx: &str) {
        let g = graph_of(m.node_count(), edges);
        let expect = count_graphlets_par(&g);
        let got = m.counts();
        // bit-identity, not just numeric equality
        assert_eq!(
            got.counts.map(f64::to_bits),
            expect.counts.map(f64::to_bits),
            "{ctx}: maintained {:?} != fresh {:?}",
            got.counts,
            expect.counts
        );
    }

    #[test]
    fn census_maintainer_matches_fresh_count_across_batches() {
        use crate::delta::EdgeDelta;
        use crate::generate::erdos_renyi;
        use rand::Rng;
        use std::collections::BTreeSet;
        let _guard = crate::kernel_test_lock();
        let prev = par::thread_cap();
        for cap in [1usize, 2, 4] {
            par::set_thread_cap(cap);
            for seed in 0..12u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let n = 24;
                let g = erdos_renyi(n, 0.2, 0, &mut rng);
                let mut set: BTreeSet<(u32, u32)> = g
                    .edges()
                    .map(|e| {
                        let (u, v) = g.endpoints(e);
                        (u.0.min(v.0), u.0.max(v.0))
                    })
                    .collect();
                let mut m = CensusMaintainer::new(&g);
                // round 0: delete-only, round 1: insert-only, 2-3: mixed
                for round in 0..4 {
                    let mut delta = EdgeDelta::new();
                    if round != 1 {
                        let pool: Vec<(u32, u32)> = set.iter().copied().collect();
                        for _ in 0..4 {
                            if pool.is_empty() {
                                break;
                            }
                            let (u, v) = pool[rng.gen_range(0..pool.len())];
                            delta.deletes.push((u, v));
                            set.remove(&(u, v));
                        }
                    }
                    if round != 0 {
                        let span = n as u32 + 2; // exercise node growth
                        for _ in 0..4 {
                            let u = rng.gen_range(0..span);
                            let v = rng.gen_range(0..span);
                            delta.inserts.push((u, v));
                            if u != v {
                                set.insert((u.min(v), u.max(v)));
                            }
                        }
                    }
                    m.apply(&delta);
                    let edges: Vec<(u32, u32)> = set.iter().copied().collect();
                    assert_census_matches(
                        &m,
                        &edges,
                        &format!("seed {seed} cap {cap} round {round}"),
                    );
                }
            }
        }
        par::set_thread_cap(prev);
    }

    #[test]
    fn census_maintainer_fixture_deltas() {
        use crate::delta::EdgeDelta;
        // a triangle: one K3 (class 1), no P3
        let edges = [(0, 1), (1, 2), (0, 2)];
        let mut m = CensusMaintainer::new(&graph_of(3, &edges));
        assert_eq!(m.counts().counts[1], 1.0);
        assert_eq!(m.counts().counts[0], 0.0);

        // close it into a K4 via a new node: 1 four-clique, 4 triangles...
        let stats = m.apply(&EdgeDelta::inserting(vec![(0, 3), (1, 3), (2, 3)]));
        assert_eq!(stats.inserts, 3);
        assert!(stats.recounted_roots > 0);
        let k4 = [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)];
        assert_census_matches(&m, &k4, "K4 completion");

        // duplicate insert and missing delete are skipped
        let stats = m.apply(&EdgeDelta {
            inserts: vec![(0, 1), (2, 2)],
            deletes: vec![(0, 9)],
        });
        assert_eq!(stats.skipped, 3);
        assert_census_matches(&m, &k4, "no-op batch");

        // delete an edge back out
        m.apply(&EdgeDelta::deleting(vec![(1, 2)]));
        let diamond = [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)];
        assert_census_matches(&m, &diamond, "deletion");

        // empty batch is a no-op
        let stats = m.apply(&EdgeDelta::new());
        assert_eq!(stats.recounted_roots, 0);
        assert_census_matches(&m, &diamond, "empty batch");
    }
}
