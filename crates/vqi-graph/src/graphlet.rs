//! Connected-graphlet enumeration and graphlet frequency distributions.
//!
//! MIDAS detects how much a repository changed by comparing the *graphlet
//! frequency distribution* (GFD) of the repository before and after a
//! batch update: a large Euclidean distance between the distributions
//! signals a "major" modification that warrants pattern maintenance.
//!
//! Graphlets here are the 8 connected unlabeled graphs on 3 and 4 nodes:
//!
//! | index | graphlet |
//! |---|---|
//! | 0 | path P3 |
//! | 1 | triangle K3 |
//! | 2 | path P4 |
//! | 3 | star S4 (claw) |
//! | 4 | cycle C4 |
//! | 5 | tailed triangle |
//! | 6 | diamond |
//! | 7 | clique K4 |
//!
//! Enumeration uses the ESU algorithm (Wernicke's FANMOD); sampling uses
//! RAND-ESU, which descends each branch with a per-depth probability and
//! reweights counts by the inverse product, giving unbiased estimates.

use crate::graph::{Graph, NodeId};
use rand::Rng;

/// Number of tracked graphlet classes.
pub const GRAPHLET_CLASSES: usize = 8;

/// Raw graphlet counts (possibly fractional when estimated by sampling).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GraphletCounts {
    /// Counts per class, indexed per the module-level table.
    pub counts: [f64; GRAPHLET_CLASSES],
}

impl GraphletCounts {
    /// Sum of all counts.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Element-wise accumulation (for repository-level distributions).
    pub fn add(&mut self, other: &GraphletCounts) {
        for i in 0..GRAPHLET_CLASSES {
            self.counts[i] += other.counts[i];
        }
    }

    /// The normalized frequency distribution; all zeros if no graphlets.
    pub fn distribution(&self) -> [f64; GRAPHLET_CLASSES] {
        let total = self.total();
        let mut d = [0.0; GRAPHLET_CLASSES];
        if total > 0.0 {
            for (out, c) in d.iter_mut().zip(self.counts.iter()) {
                *out = c / total;
            }
        }
        d
    }
}

/// Euclidean distance between two distributions (MIDAS's drift measure).
pub fn euclidean_distance(a: &[f64; GRAPHLET_CLASSES], b: &[f64; GRAPHLET_CLASSES]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Classifies a connected induced subgraph on `nodes` (3 or 4 nodes) into
/// its graphlet class index.
fn classify(g: &Graph, nodes: &[NodeId]) -> usize {
    let k = nodes.len();
    let mut edges = 0usize;
    let mut degs = [0usize; 4];
    for i in 0..k {
        for j in (i + 1)..k {
            if g.has_edge(nodes[i], nodes[j]) {
                edges += 1;
                degs[i] += 1;
                degs[j] += 1;
            }
        }
    }
    let maxd = *degs[..k].iter().max().unwrap();
    match (k, edges) {
        (3, 2) => 0,              // P3
        (3, 3) => 1,              // K3
        (4, 3) if maxd == 3 => 3, // star
        (4, 3) => 2,              // P4
        (4, 4) if maxd == 3 => 5, // tailed triangle
        (4, 4) => 4,              // C4
        (4, 5) => 6,              // diamond
        (4, 6) => 7,              // K4
        _ => unreachable!("disconnected or wrong-size subgraph"),
    }
}

/// Runs the (RAND-)ESU recursion for every root node. When `probs` is
/// `Some`, each branch at depth `d` descends with probability `probs[d]`
/// and visited subgraphs carry the inverse probability product as weight.
fn esu<F: FnMut(&[NodeId], f64), R: Rng>(
    g: &Graph,
    k: usize,
    probs: Option<&[f64]>,
    rng: &mut R,
    mut visit: F,
) {
    if k == 0 || g.node_count() < k {
        return;
    }
    // blocked[u]: u is in the subgraph or already in some extension set
    let mut blocked = vec![false; g.node_count()];
    for v in g.nodes() {
        let mut sub = vec![v];
        let ext: Vec<NodeId> = g.neighbors(v).map(|(u, _)| u).filter(|&u| u > v).collect();
        blocked[v.index()] = true;
        for &u in &ext {
            blocked[u.index()] = true;
        }
        extend(
            g,
            v,
            &mut sub,
            ext,
            k,
            &mut blocked,
            &mut visit,
            1.0,
            probs,
            rng,
        );
        blocked[v.index()] = false;
        for u in g.neighbors(v).map(|(u, _)| u) {
            blocked[u.index()] = false;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn extend<F: FnMut(&[NodeId], f64), R: Rng>(
    g: &Graph,
    root: NodeId,
    sub: &mut Vec<NodeId>,
    ext: Vec<NodeId>,
    k: usize,
    blocked: &mut Vec<bool>,
    visit: &mut F,
    weight: f64,
    probs: Option<&[f64]>,
    rng: &mut R,
) {
    if sub.len() == k {
        visit(sub, weight);
        return;
    }
    let depth = sub.len();
    let mut remaining = ext;
    while let Some(w) = remaining.pop() {
        let mut branch_weight = weight;
        if let Some(p) = probs {
            let pd = p.get(depth).copied().unwrap_or(1.0);
            if pd < 1.0 {
                if !rng.gen_bool(pd.clamp(0.0, 1.0)) {
                    continue;
                }
                branch_weight /= pd;
            }
        }
        // extension' = remaining ∪ exclusive neighbors of w (greater than root)
        let newly: Vec<NodeId> = g
            .neighbors(w)
            .map(|(u, _)| u)
            .filter(|&u| u > root && !blocked[u.index()])
            .collect();
        let mut next_ext = remaining.clone();
        next_ext.extend_from_slice(&newly);
        sub.push(w);
        for &u in &newly {
            blocked[u.index()] = true;
        }
        extend(
            g,
            root,
            sub,
            next_ext,
            k,
            blocked,
            visit,
            branch_weight,
            probs,
            rng,
        );
        for &u in &newly {
            blocked[u.index()] = false;
        }
        sub.pop();
    }
}

/// ESU enumeration of all connected induced subgraphs with exactly `k`
/// nodes; `visit` receives each node set once.
pub fn enumerate_connected_subgraphs<F: FnMut(&[NodeId])>(g: &Graph, k: usize, mut visit: F) {
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    esu(g, k, None, &mut rng, |nodes, _| visit(nodes));
}

/// Exact graphlet counts of `g` (sizes 3 and 4).
pub fn count_graphlets(g: &Graph) -> GraphletCounts {
    let mut counts = GraphletCounts::default();
    enumerate_connected_subgraphs(g, 3, |nodes| {
        counts.counts[classify(g, nodes)] += 1.0;
    });
    enumerate_connected_subgraphs(g, 4, |nodes| {
        counts.counts[classify(g, nodes)] += 1.0;
    });
    counts
}

/// RAND-ESU estimate of graphlet counts. `retention` in `(0, 1]` is the
/// per-depth descent probability (1.0 reproduces exact counts); smaller
/// values trade accuracy for speed on large networks.
pub fn sample_graphlets<R: Rng>(g: &Graph, retention: f64, rng: &mut R) -> GraphletCounts {
    let mut counts = GraphletCounts::default();
    for k in [3usize, 4] {
        let probs = vec![retention; k];
        esu(g, k, Some(&probs), rng, |nodes, weight| {
            counts.counts[classify(g, nodes)] += weight;
        });
    }
    counts
}

/// Exact graphlet frequency distribution of a single graph.
pub fn graphlet_distribution(g: &Graph) -> [f64; GRAPHLET_CLASSES] {
    count_graphlets(g).distribution()
}

/// Aggregate graphlet frequency distribution of a collection of graphs
/// (counts summed before normalizing, as MIDAS computes the GFD of `D`).
pub fn collection_distribution<'a, I: IntoIterator<Item = &'a Graph>>(
    graphs: I,
) -> [f64; GRAPHLET_CLASSES] {
    let mut total = GraphletCounts::default();
    for g in graphs {
        total.add(&count_graphlets(g));
    }
    total.distribution()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn clique(n: usize) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(0)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(nodes[i], nodes[j], 0);
            }
        }
        g
    }

    fn path(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut prev = g.add_node(0);
        for _ in 1..n {
            let cur = g.add_node(0);
            g.add_edge(prev, cur, 0);
            prev = cur;
        }
        g
    }

    #[test]
    fn triangle_counts() {
        let c = count_graphlets(&clique(3));
        assert_eq!(c.counts[1], 1.0);
        assert_eq!(c.counts[0], 0.0);
        assert_eq!(c.total(), 1.0);
    }

    #[test]
    fn k4_counts() {
        let c = count_graphlets(&clique(4));
        // K4 contains 4 triangles, 0 P3... wait: induced 3-subsets of K4
        // are all triangles (4 of them), and the single 4-set is K4.
        assert_eq!(c.counts[1], 4.0);
        assert_eq!(c.counts[0], 0.0);
        assert_eq!(c.counts[7], 1.0);
        assert_eq!(c.total(), 5.0);
    }

    #[test]
    fn path_counts() {
        let c = count_graphlets(&path(4));
        // P4 contains 2 induced P3s and 1 induced P4
        assert_eq!(c.counts[0], 2.0);
        assert_eq!(c.counts[2], 1.0);
        assert_eq!(c.total(), 3.0);
    }

    #[test]
    fn star_counts() {
        // S4: center 0, leaves 1..3
        let g = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(0, 2, 0)
            .edge(0, 3, 0)
            .build();
        let c = count_graphlets(&g);
        assert_eq!(c.counts[0], 3.0); // each pair of leaves + center
        assert_eq!(c.counts[3], 1.0); // the star itself
    }

    #[test]
    fn cycle4_counts() {
        let g = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .edge(3, 0, 0)
            .build();
        let c = count_graphlets(&g);
        assert_eq!(c.counts[4], 1.0);
        assert_eq!(c.counts[0], 4.0);
    }

    #[test]
    fn diamond_and_tailed_triangle() {
        let diamond = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(1, 3, 0)
            .edge(2, 3, 0)
            .build();
        assert_eq!(count_graphlets(&diamond).counts[6], 1.0);
        let tailed = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(2, 3, 0)
            .build();
        assert_eq!(count_graphlets(&tailed).counts[5], 1.0);
    }

    #[test]
    fn distribution_sums_to_one() {
        let g = clique(5);
        let d = graphlet_distribution(&g);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // empty graph: all zeros
        let z = graphlet_distribution(&Graph::new());
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn distribution_is_permutation_invariant() {
        let g = GraphBuilder::new()
            .nodes(&[0; 5])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 0, 0)
            .edge(2, 3, 0)
            .edge(3, 4, 0)
            .build();
        let h = g.permuted(&[4, 2, 0, 3, 1]);
        assert_eq!(graphlet_distribution(&g), graphlet_distribution(&h));
    }

    #[test]
    fn esu_enumerates_each_subgraph_once() {
        let g = clique(5);
        let mut count = 0usize;
        let mut seen = std::collections::HashSet::new();
        enumerate_connected_subgraphs(&g, 3, |nodes| {
            count += 1;
            let mut key: Vec<u32> = nodes.iter().map(|n| n.0).collect();
            key.sort_unstable();
            assert!(seen.insert(key), "duplicate subgraph");
        });
        // C(5,3) = 10 connected triples in a clique
        assert_eq!(count, 10);
    }

    #[test]
    fn sampling_with_full_retention_is_exact() {
        let g = clique(5);
        let mut rng = SmallRng::seed_from_u64(1);
        let exact = count_graphlets(&g);
        let sampled = sample_graphlets(&g, 1.0, &mut rng);
        assert_eq!(exact.counts, sampled.counts);
    }

    #[test]
    fn sampling_is_roughly_unbiased() {
        // moderately dense ER-ish graph
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..30).map(|_| g.add_node(0)).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        use rand::Rng;
        for i in 0..30 {
            for j in (i + 1)..30 {
                if rng.gen_bool(0.2) {
                    g.add_edge(nodes[i], nodes[j], 0);
                }
            }
        }
        let exact = count_graphlets(&g).total();
        let mut est_sum = 0.0;
        let runs = 30;
        for s in 0..runs {
            let mut r = SmallRng::seed_from_u64(1000 + s);
            est_sum += sample_graphlets(&g, 0.7, &mut r).total();
        }
        let est = est_sum / runs as f64;
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.15, "estimate {est} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn euclidean_distance_properties() {
        let a = [0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(euclidean_distance(&a, &a), 0.0);
        assert!((euclidean_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collection_distribution_aggregates() {
        let graphs = [clique(3), path(3)];
        let d = collection_distribution(graphs.iter());
        // one triangle + one P3 -> 50/50
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
    }
}
