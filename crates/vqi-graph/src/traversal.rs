//! Traversals, connectivity, and random-walk utilities.

use crate::graph::{EdgeId, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Nodes reachable from `start`, in BFS order.
pub fn bfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for (m, _) in g.neighbors(n) {
            if !seen[m.index()] {
                seen[m.index()] = true;
                queue.push_back(m);
            }
        }
    }
    order
}

/// Nodes reachable from `start`, in DFS preorder (deterministic: neighbors
/// visited in adjacency order).
pub fn dfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        order.push(n);
        // push in reverse so the first neighbor is processed first
        let nbrs: Vec<NodeId> = g.neighbors(n).map(|(m, _)| m).collect();
        for m in nbrs.into_iter().rev() {
            if !seen[m.index()] {
                stack.push(m);
            }
        }
    }
    order
}

/// Connected components as lists of nodes; singleton nodes form their own
/// components. Components are ordered by their smallest node id.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.node_count()];
    let mut comps = Vec::new();
    for n in g.nodes() {
        if !seen[n.index()] {
            let comp = bfs_order(g, n);
            for &c in &comp {
                seen[c.index()] = true;
            }
            comps.push(comp);
        }
    }
    comps
}

/// True if the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    bfs_order(g, NodeId(0)).len() == g.node_count()
}

/// Shortest path length (in edges) from `a` to `b`, or `None` if not
/// reachable.
pub fn shortest_path_len(g: &Graph, a: NodeId, b: NodeId) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[a.index()] = 0;
    queue.push_back(a);
    while let Some(n) = queue.pop_front() {
        for (m, _) in g.neighbors(n) {
            if dist[m.index()] == usize::MAX {
                dist[m.index()] = dist[n.index()] + 1;
                if m == b {
                    return Some(dist[m.index()]);
                }
                queue.push_back(m);
            }
        }
    }
    None
}

/// One step of a weighted random walk: picks the next `(neighbor, edge)`
/// from `n` with probability proportional to `weight(edge)`.
///
/// Returns `None` if `n` has no neighbors or all weights are zero.
pub fn weighted_step<R: Rng, W: Fn(EdgeId) -> f64>(
    g: &Graph,
    n: NodeId,
    weight: &W,
    rng: &mut R,
) -> Option<(NodeId, EdgeId)> {
    let nbrs: Vec<(NodeId, EdgeId)> = g.neighbors(n).collect();
    if nbrs.is_empty() {
        return None;
    }
    let weights: Vec<f64> = nbrs.iter().map(|&(_, e)| weight(e).max(0.0)).collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return Some(nbrs[i]);
        }
        x -= w;
    }
    Some(*nbrs.last().unwrap())
}

/// A weighted random walk of at most `steps` edge traversals starting at
/// `start`. Returns the sequence of traversed edge ids (possibly shorter
/// than `steps` if the walk gets stuck).
pub fn weighted_random_walk<R: Rng, W: Fn(EdgeId) -> f64>(
    g: &Graph,
    start: NodeId,
    steps: usize,
    weight: &W,
    rng: &mut R,
) -> Vec<EdgeId> {
    let mut cur = start;
    let mut walk = Vec::with_capacity(steps);
    for _ in 0..steps {
        match weighted_step(g, cur, weight, rng) {
            Some((next, e)) => {
                walk.push(e);
                cur = next;
            }
            None => break,
        }
    }
    walk
}

/// Samples a random connected set of exactly `size` nodes containing
/// `start` by randomized BFS frontier expansion. Returns `None` if the
/// component of `start` has fewer than `size` nodes.
pub fn sample_connected_nodes<R: Rng>(
    g: &Graph,
    start: NodeId,
    size: usize,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    if size == 0 {
        return Some(Vec::new());
    }
    let mut chosen = vec![false; g.node_count()];
    let mut result = vec![start];
    chosen[start.index()] = true;
    let mut frontier: Vec<NodeId> = g
        .neighbors(start)
        .map(|(m, _)| m)
        .filter(|m| !chosen[m.index()])
        .collect();
    while result.len() < size {
        frontier.retain(|m| !chosen[m.index()]);
        frontier.sort_unstable();
        frontier.dedup();
        if frontier.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..frontier.len());
        let next = frontier.swap_remove(i);
        chosen[next.index()] = true;
        result.push(next);
        for (m, _) in g.neighbors(next) {
            if !chosen[m.index()] {
                frontier.push(m);
            }
        }
    }
    Some(result)
}

/// Samples a connected subgraph of exactly `size` nodes rooted at a random
/// node. Retries up to `attempts` times; returns the induced subgraph and
/// the node mapping back to `g`.
pub fn sample_connected_subgraph<R: Rng>(
    g: &Graph,
    size: usize,
    attempts: usize,
    rng: &mut R,
) -> Option<(Graph, Vec<NodeId>)> {
    if g.node_count() < size || size == 0 {
        return None;
    }
    let all: Vec<NodeId> = g.nodes().collect();
    for _ in 0..attempts {
        let &start = all.choose(rng)?;
        if let Some(nodes) = sample_connected_nodes(g, start, size, rng) {
            return Some(g.induced_subgraph(&nodes));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_triangles() -> Graph {
        // nodes 0-2 triangle, nodes 3-5 triangle, disconnected
        GraphBuilder::new()
            .nodes(&[0; 6])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(3, 4, 0)
            .edge(4, 5, 0)
            .edge(3, 5, 0)
            .build()
    }

    #[test]
    fn bfs_visits_component_only() {
        let g = two_triangles();
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order.len(), 3);
        assert!(order.contains(&NodeId(0)));
        assert!(!order.contains(&NodeId(3)));
    }

    #[test]
    fn dfs_visits_all_reachable() {
        let g = two_triangles();
        let order = dfs_order(&g, NodeId(3));
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], NodeId(3));
    }

    #[test]
    fn components_partition_nodes() {
        let g = two_triangles();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 6);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(is_connected(&Graph::new()));
        let mut g = Graph::new();
        g.add_node(0);
        assert!(is_connected(&g));
    }

    #[test]
    fn shortest_paths() {
        let g = GraphBuilder::new()
            .nodes(&[0; 4])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .build();
        assert_eq!(shortest_path_len(&g, NodeId(0), NodeId(3)), Some(3));
        assert_eq!(shortest_path_len(&g, NodeId(0), NodeId(0)), Some(0));
        let h = two_triangles();
        assert_eq!(shortest_path_len(&h, NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn weighted_walk_respects_zero_weights() {
        let g = GraphBuilder::new()
            .nodes(&[0; 3])
            .edge(0, 1, 0)
            .edge(0, 2, 0)
            .build();
        let mut rng = SmallRng::seed_from_u64(42);
        // only edge 1 (0-2) has weight
        let w = |e: EdgeId| if e == EdgeId(1) { 1.0 } else { 0.0 };
        for _ in 0..20 {
            let step = weighted_step(&g, NodeId(0), &w, &mut rng).unwrap();
            assert_eq!(step.1, EdgeId(1));
        }
        // all weights zero: walk is stuck
        let z = |_: EdgeId| 0.0;
        assert!(weighted_step(&g, NodeId(0), &z, &mut rng).is_none());
        assert!(weighted_random_walk(&g, NodeId(0), 5, &z, &mut rng).is_empty());
    }

    #[test]
    fn walk_length_bounded() {
        let g = two_triangles();
        let mut rng = SmallRng::seed_from_u64(7);
        let walk = weighted_random_walk(&g, NodeId(0), 10, &|_| 1.0, &mut rng);
        assert_eq!(walk.len(), 10);
    }

    #[test]
    fn sample_connected_nodes_is_connected() {
        let g = two_triangles();
        let mut rng = SmallRng::seed_from_u64(1);
        let nodes = sample_connected_nodes(&g, NodeId(0), 3, &mut rng).unwrap();
        assert_eq!(nodes.len(), 3);
        let (sub, _) = g.induced_subgraph(&nodes);
        assert!(is_connected(&sub));
        // asking for more than the component holds fails
        assert!(sample_connected_nodes(&g, NodeId(0), 4, &mut rng).is_none());
    }

    #[test]
    fn sample_connected_subgraph_size() {
        let g = two_triangles();
        let mut rng = SmallRng::seed_from_u64(3);
        let (sub, mapping) = sample_connected_subgraph(&g, 2, 50, &mut rng).unwrap();
        assert_eq!(sub.node_count(), 2);
        assert_eq!(mapping.len(), 2);
        assert!(is_connected(&sub));
        assert!(sample_connected_subgraph(&g, 7, 10, &mut rng).is_none());
    }
}
