//! Maximum common edge subgraph (MCS) and graph similarity.
//!
//! Pattern-set *diversity* is measured through pairwise pattern
//! similarity, which CATAPULT/TATTOO define via the maximum common
//! subgraph: `sim(a, b) = |E(mcs(a, b))| / max(|E(a)|, |E(b)|)`.
//!
//! The search is a McGregor-style branch-and-bound over partial node
//! mappings with an optimistic remaining-edge bound and a state budget:
//! within the budget the result is exact; once the budget is exhausted
//! the best mapping found so far is returned (a lower bound on the true
//! MCS), which keeps the measure well-defined and fast on adversarial
//! inputs. Patterns in practice have ≤ 15 nodes, where the search is
//! exact.
//!
//! ## Bound-and-skip
//!
//! The greedy selection loops only ever ask "is `sim(a, b)` larger than
//! the running maximum `m` I already have?" — the exact value below `m`
//! is irrelevant because it disappears into `max(m, sim)`.
//! [`mcs_similarity_bounded`] exploits that: it first compares the
//! fingerprint upper bound ([`mcs_edge_upper_bound`]) against the
//! threshold (skipping the search entirely when the bound cannot beat
//! it), and otherwise seeds the branch-and-bound with the threshold as
//! initial incumbent so every branch that cannot beat the threshold is
//! cut. The returned value is **exact whenever it exceeds the
//! threshold**, and otherwise some value `<= min_useful` — which makes
//! `max(m, mcs_similarity_bounded(a, b, m))` bit-identical to
//! `max(m, mcs_similarity(a, b))`. [`set_bound_skip_enabled`] turns the
//! optimization off globally for A/B testing.

use crate::graph::{Graph, Label, NodeId};
use crate::index::{mcs_edge_upper_bound, Fingerprint};
use std::sync::atomic::{AtomicBool, Ordering};
use vqi_runtime::{Budget, Meter, VqiError};

static BOUND_SKIP_ENABLED: AtomicBool = AtomicBool::new(true);

/// True while [`mcs_similarity_bounded`] and [`mcs_similarity_at_least`]
/// may skip or cut searches (default). When disabled they fall back to
/// the exact [`mcs_similarity`]; selection results are identical either
/// way.
pub fn bound_skip_enabled() -> bool {
    BOUND_SKIP_ENABLED.load(Ordering::Relaxed)
}

/// Turns bound-and-skip on or off globally.
pub fn set_bound_skip_enabled(on: bool) {
    BOUND_SKIP_ENABLED.store(on, Ordering::Relaxed);
}

struct McsSearch<'a> {
    a: &'a Graph,
    b: &'a Graph,
    order: Vec<NodeId>,
    /// b-side node ids grouped by label (ids ascending within a label) —
    /// candidate enumeration touches only label-compatible nodes, in the
    /// same relative order as the naive all-nodes scan.
    b_buckets: &'a [(Label, Vec<NodeId>)],
    map: Vec<u32>,
    used_b: Vec<bool>,
    best: usize,
    budget: u64,
    /// optional budget meter, ticked once per search node
    meter: Option<Meter>,
    /// set when the meter trips; the search unwinds via `budget = 0`
    abort: Option<VqiError>,
}

impl<'a> McsSearch<'a> {
    /// Number of a-edges from `v` into the already-mapped prefix that are
    /// preserved under mapping `v -> t`.
    fn gained(&self, v: NodeId, t: NodeId) -> usize {
        let mut gain = 0;
        for (q, ae) in self.a.neighbors(v) {
            let tq = self.map[q.index()];
            if tq == u32::MAX {
                continue;
            }
            if let Some(be) = self.b.edge_between(t, NodeId(tq)) {
                if self.a.edge_label(ae) == self.b.edge_label(be) {
                    gain += 1;
                }
            }
        }
        gain
    }

    fn search(&mut self, depth: usize, common: usize, remaining_possible: usize) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        if let Some(m) = &mut self.meter {
            if let Err(e) = m.tick() {
                self.abort = Some(e);
                // zeroing the budget short-circuits the rest of the tree
                self.budget = 0;
                return;
            }
        }
        if common > self.best {
            self.best = common;
        }
        if depth == self.order.len() || common + remaining_possible <= self.best {
            return;
        }
        let v = self.order[depth];
        // edges from v into the not-yet-decided suffix still count toward
        // the optimistic bound after this depth; edges from v into the
        // prefix are decided now.
        let v_prefix_edges = self
            .a
            .neighbors(v)
            .filter(|(q, _)| self.map[q.index()] != u32::MAX)
            .count();
        let next_remaining = remaining_possible - v_prefix_edges;
        // try mapping v to each unused b-node of the same label
        let buckets = self.b_buckets;
        let bucket_idx = buckets.binary_search_by_key(&self.a.node_label(v), |&(bl, _)| bl);
        if let Ok(bi) = bucket_idx {
            for &t in &buckets[bi].1 {
                if self.used_b[t.index()] {
                    continue;
                }
                let gain = self.gained(v, t);
                self.map[v.index()] = t.0;
                self.used_b[t.index()] = true;
                self.search(depth + 1, common + gain, next_remaining);
                self.used_b[t.index()] = false;
                self.map[v.index()] = u32::MAX;
            }
        }
        // or leave v unmapped
        self.search(depth + 1, common, next_remaining);
    }
}

/// Core search shared by the exact, seeded, and budget-aware entry
/// points. `seed` is an initial incumbent: branches that cannot
/// strictly beat it are cut, and the returned value is
/// `max(seed, best mapping found)`. A tripped `meter` aborts with the
/// error instead.
fn mcs_edge_count_full(
    a: &Graph,
    b: &Graph,
    budget: u64,
    seed: usize,
    meter: Option<Meter>,
) -> Result<usize, VqiError> {
    // search from the smaller graph for a shallower tree
    let (a, b) = if a.node_count() <= b.node_count() {
        (a, b)
    } else {
        (b, a)
    };
    if a.edge_count() == 0 || b.edge_count() == 0 {
        return Ok(seed);
    }
    // order a's nodes by degree descending: high-impact decisions first
    let mut order: Vec<NodeId> = a.nodes().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(a.degree(v)));
    // b-side label buckets, sorted by label, ids ascending within each
    let mut pairs: Vec<(Label, NodeId)> = b.nodes().map(|v| (b.node_label(v), v)).collect();
    pairs.sort_unstable_by_key(|&(l, v)| (l, v.0));
    let mut b_buckets: Vec<(Label, Vec<NodeId>)> = Vec::new();
    for (l, v) in pairs {
        match b_buckets.last_mut() {
            Some((last, bucket)) if *last == l => bucket.push(v),
            _ => b_buckets.push((l, vec![v])),
        }
    }
    let mut s = McsSearch {
        a,
        b,
        order,
        b_buckets: &b_buckets,
        map: vec![u32::MAX; a.node_count()],
        used_b: vec![false; b.node_count()],
        best: seed,
        budget,
        meter,
        abort: None,
    };
    s.search(0, 0, a.edge_count());
    match s.abort {
        Some(e) => Err(e),
        None => Ok(s.best),
    }
}

/// See [`mcs_edge_count_full`]; without a meter the search cannot abort.
fn mcs_edge_count_seeded(a: &Graph, b: &Graph, budget: u64, seed: usize) -> usize {
    mcs_edge_count_full(a, b, budget, seed, None).unwrap_or(seed)
}

/// Budget-aware [`mcs_edge_count`]: a [`Meter`] from `ctrl` is ticked
/// once per branch-and-bound node. A deterministic tick quota trips at
/// the same node on every run; a deadline or cancellation is observed
/// within [`vqi_runtime::ctrl::POLL_INTERVAL`] nodes. With an
/// unlimited budget the result equals [`mcs_edge_count`] exactly.
pub fn mcs_edge_count_ctrl(a: &Graph, b: &Graph, ctrl: &Budget) -> Result<usize, VqiError> {
    mcs_edge_count_full(a, b, DEFAULT_MCS_BUDGET, 0, Some(ctrl.meter("kernel.mcs")))
}

/// Budget-aware [`mcs_similarity`]; see [`mcs_edge_count_ctrl`].
pub fn mcs_similarity_ctrl(a: &Graph, b: &Graph, ctrl: &Budget) -> Result<f64, VqiError> {
    let denom = a.edge_count().max(b.edge_count());
    if denom == 0 {
        return Ok(0.0);
    }
    Ok(mcs_edge_count_ctrl(a, b, ctrl)? as f64 / denom as f64)
}

/// Size (in edges) of the maximum common edge subgraph of `a` and `b`
/// under exact label matching, searched with the given state budget.
pub fn mcs_edge_count_budgeted(a: &Graph, b: &Graph, budget: u64) -> usize {
    mcs_edge_count_seeded(a, b, budget, 0)
}

/// The default branch-and-bound budget (exact for pattern-sized graphs).
pub const DEFAULT_MCS_BUDGET: u64 = 2_000_000;

/// [`mcs_edge_count_budgeted`] with the default budget (exact for
/// pattern-sized graphs).
pub fn mcs_edge_count(a: &Graph, b: &Graph) -> usize {
    mcs_edge_count_budgeted(a, b, DEFAULT_MCS_BUDGET)
}

/// MCS-based similarity in `[0, 1]`:
/// `|E(mcs)| / max(|E(a)|, |E(b)|)`; 0 when either graph has no edges.
pub fn mcs_similarity(a: &Graph, b: &Graph) -> f64 {
    let denom = a.edge_count().max(b.edge_count());
    if denom == 0 {
        return 0.0;
    }
    mcs_edge_count(a, b) as f64 / denom as f64
}

/// Largest common-edge count `k` with `k/denom <= min_useful` under f64
/// division — the safe branch-and-bound seed for threshold `min_useful`.
fn seed_for(min_useful: f64, denom: usize) -> usize {
    let mut seed = ((min_useful * denom as f64).floor().max(0.0) as usize).min(denom);
    while seed > 0 && seed as f64 / denom as f64 > min_useful {
        seed -= 1;
    }
    while seed < denom && (seed + 1) as f64 / denom as f64 <= min_useful {
        seed += 1;
    }
    seed
}

/// [`mcs_similarity`] with a usefulness threshold, plus whether the
/// returned value is exact. See [`mcs_similarity_bounded`].
pub(crate) fn mcs_similarity_bounded_detail(a: &Graph, b: &Graph, min_useful: f64) -> (f64, bool) {
    if !bound_skip_enabled() || !min_useful.is_finite() || min_useful <= 0.0 {
        return (mcs_similarity(a, b), true);
    }
    let denom = a.edge_count().max(b.edge_count());
    if denom == 0 {
        return (0.0, true);
    }
    let seed = seed_for(min_useful, denom);
    if seed >= denom {
        // nothing can beat the threshold: sim <= 1 <= min_useful
        vqi_observe::incr("kernel.mcs.skip_fingerprint", 1);
        return (min_useful.min(1.0), false);
    }
    let ub = mcs_edge_upper_bound(&Fingerprint::of(a), &Fingerprint::of(b));
    if ub <= seed {
        // the common edge count cannot exceed the seed: no search at all
        vqi_observe::incr("kernel.mcs.skip_fingerprint", 1);
        return ((ub as f64 / denom as f64).min(min_useful), false);
    }
    let best = mcs_edge_count_seeded(a, b, DEFAULT_MCS_BUDGET, seed);
    if best > seed {
        (best as f64 / denom as f64, true)
    } else {
        // the seeded search concluded the true value is <= the threshold
        vqi_observe::incr("kernel.mcs.pruned", 1);
        ((seed as f64 / denom as f64).min(min_useful), false)
    }
}

/// [`mcs_similarity`] for callers that only care about values above a
/// threshold: the result is **exact whenever it is `> min_useful`** and
/// otherwise some value `<= min_useful`, so
/// `max(m, mcs_similarity_bounded(a, b, m)) == max(m, mcs_similarity(a, b))`
/// bit-for-bit. Skipped searches are counted as
/// `kernel.mcs.skip_fingerprint` (fingerprint bound decided without
/// searching) and `kernel.mcs.pruned` (seeded search concluded below the
/// threshold).
pub fn mcs_similarity_bounded(a: &Graph, b: &Graph, min_useful: f64) -> f64 {
    mcs_similarity_bounded_detail(a, b, min_useful).0
}

/// True iff `mcs_similarity(a, b) >= threshold`, decided without
/// computing the exact value: the fingerprint bound rejects cheap cases
/// and a seeded branch-and-bound (incumbent = required edge count − 1)
/// decides the rest. Agrees with the naive comparison on every input.
pub fn mcs_similarity_at_least(a: &Graph, b: &Graph, threshold: f64) -> bool {
    if !bound_skip_enabled() {
        return mcs_similarity(a, b) >= threshold;
    }
    if threshold <= 0.0 {
        // naive: any similarity (including 0.0) passes
        return true;
    }
    let denom = a.edge_count().max(b.edge_count());
    if denom == 0 {
        return false; // naive compares 0.0 >= threshold with threshold > 0
    }
    // smallest k with k/denom >= threshold under f64 division
    let mut required = (threshold * denom as f64).ceil() as usize;
    while required > 0 && (required - 1) as f64 / denom as f64 >= threshold {
        required -= 1;
    }
    while required <= denom && (required as f64 / denom as f64) < threshold {
        required += 1;
    }
    if required == 0 {
        return true;
    }
    if required > denom {
        return false; // threshold above 1.0: unreachable
    }
    let ub = mcs_edge_upper_bound(&Fingerprint::of(a), &Fingerprint::of(b));
    if ub < required {
        vqi_observe::incr("kernel.mcs.skip_fingerprint", 1);
        return false;
    }
    let best = mcs_edge_count_seeded(a, b, DEFAULT_MCS_BUDGET, required - 1);
    if best < required {
        vqi_observe::incr("kernel.mcs.pruned", 1);
    }
    best >= required
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{assign_labels, chain, clique, cycle, erdos_renyi, star};
    use crate::graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn random_graph(n: usize, p: f64, nl: u32, el: u32, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = erdos_renyi(n, p, 0, &mut rng);
        assign_labels(&mut g, nl, el, &mut rng);
        g
    }

    #[test]
    fn identical_graphs_share_everything() {
        let g = cycle(5, 1, 2);
        assert_eq!(mcs_edge_count(&g, &g), 5);
        assert!((mcs_similarity(&g, &g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_labels_share_nothing() {
        let a = chain(4, 1, 0);
        let b = chain(4, 2, 0);
        assert_eq!(mcs_edge_count(&a, &b), 0);
        assert_eq!(mcs_similarity(&a, &b), 0.0);
    }

    #[test]
    fn chain_in_cycle() {
        let a = chain(4, 0, 0); // 3 edges
        let b = cycle(6, 0, 0);
        assert_eq!(mcs_edge_count(&a, &b), 3);
        assert!((mcs_similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn star_vs_triangle() {
        let a = star(3, 0, 0); // claw
        let b = clique(3, 0, 0);
        // best common subgraph: a path of 2 edges
        assert_eq!(mcs_edge_count(&a, &b), 2);
    }

    #[test]
    fn edge_labels_constrain() {
        let a = GraphBuilder::new()
            .nodes(&[0, 0, 0])
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .build();
        let b = GraphBuilder::new()
            .nodes(&[0, 0, 0])
            .edge(0, 1, 1)
            .edge(1, 2, 3)
            .build();
        assert_eq!(mcs_edge_count(&a, &b), 1);
    }

    #[test]
    fn empty_graphs() {
        let e = crate::graph::Graph::new();
        let g = cycle(3, 0, 0);
        assert_eq!(mcs_edge_count(&e, &g), 0);
        assert_eq!(mcs_similarity(&e, &e), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = star(4, 0, 0);
        let b = cycle(5, 0, 0);
        assert_eq!(mcs_edge_count(&a, &b), mcs_edge_count(&b, &a));
        assert_eq!(mcs_similarity(&a, &b), mcs_similarity(&b, &a));
    }

    #[test]
    fn subgraph_relation_gives_full_smaller_size() {
        // triangle inside K5
        let t = clique(3, 0, 0);
        let k = clique(5, 0, 0);
        assert_eq!(mcs_edge_count(&t, &k), 3);
    }

    #[test]
    fn seeded_search_returns_max_of_seed_and_truth() {
        let a = chain(4, 0, 0); // true MCS with b is 3
        let b = cycle(6, 0, 0);
        assert_eq!(mcs_edge_count_seeded(&a, &b, 2_000_000, 0), 3);
        assert_eq!(mcs_edge_count_seeded(&a, &b, 2_000_000, 2), 3);
        // a seed at/above the truth is returned unchanged
        assert_eq!(mcs_edge_count_seeded(&a, &b, 2_000_000, 3), 3);
        assert_eq!(mcs_edge_count_seeded(&a, &b, 2_000_000, 5), 5);
    }

    #[test]
    fn bounded_fold_is_bit_identical_to_exact_fold() {
        let _guard = crate::kernel_test_lock();
        set_bound_skip_enabled(true);
        let graphs: Vec<Graph> = (0..8u64)
            .map(|i| random_graph(5 + (i as usize) % 3, 0.5, 2, 2, 40 + i))
            .chain([chain(4, 1, 0), cycle(5, 1, 0), star(4, 1, 0)])
            .collect();
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                let exact = mcs_similarity(&graphs[i], &graphs[j]);
                for m in [0.0, 0.1, 0.25, 0.5, exact, 0.9, 1.0] {
                    let bounded = mcs_similarity_bounded(&graphs[i], &graphs[j], m);
                    assert_eq!(
                        f64::max(m, bounded),
                        f64::max(m, exact),
                        "pair ({i},{j}) threshold {m}"
                    );
                    if exact > m {
                        assert_eq!(bounded, exact, "exact-above-threshold pair ({i},{j})");
                    } else {
                        assert!(bounded <= m, "skip must stay below threshold ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn at_least_matches_naive_comparison() {
        let _guard = crate::kernel_test_lock();
        set_bound_skip_enabled(true);
        let graphs: Vec<Graph> = (0..8u64)
            .map(|i| random_graph(5 + (i as usize) % 3, 0.5, 2, 2, 70 + i))
            .chain([chain(3, 0, 0), cycle(4, 0, 0), Graph::new()])
            .collect();
        for a in &graphs {
            for b in &graphs {
                let exact = mcs_similarity(a, b);
                for t in [-0.5, 0.0, 0.2, exact, exact + 1e-9, 0.75, 1.0, 1.5] {
                    assert_eq!(
                        mcs_similarity_at_least(a, b, t),
                        exact >= t,
                        "threshold {t} exact {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn disabling_bound_skip_falls_back_to_exact() {
        let _guard = crate::kernel_test_lock();
        let a = chain(4, 0, 0);
        let b = cycle(6, 0, 0);
        set_bound_skip_enabled(false);
        let off = mcs_similarity_bounded(&a, &b, 0.9);
        let off_cmp = mcs_similarity_at_least(&a, &b, 0.4);
        set_bound_skip_enabled(true);
        assert_eq!(off, mcs_similarity(&a, &b));
        assert_eq!(off_cmp, mcs_similarity(&a, &b) >= 0.4);
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        let b = Budget::unlimited();
        for i in 0..6u64 {
            let g = random_graph(6, 0.5, 2, 2, 100 + i);
            let h = random_graph(7, 0.4, 2, 2, 200 + i);
            assert_eq!(
                mcs_edge_count(&g, &h),
                mcs_edge_count_ctrl(&g, &h, &b).unwrap()
            );
            assert_eq!(
                mcs_similarity(&g, &h),
                mcs_similarity_ctrl(&g, &h, &b).unwrap()
            );
        }
    }

    #[test]
    fn mcs_tick_quota_trips_deterministically() {
        let g = random_graph(8, 0.6, 1, 1, 5);
        let h = random_graph(8, 0.6, 1, 1, 6);
        let run = || {
            let b = Budget::unlimited().with_kernel_ticks(50);
            mcs_edge_count_ctrl(&g, &h, &b)
        };
        let a = run();
        let b2 = run();
        assert_eq!(a, b2, "same quota must trip identically");
        assert!(matches!(a, Err(VqiError::QuotaExceeded { .. })));
    }

    #[test]
    fn seed_for_is_the_largest_useless_count() {
        for denom in [1usize, 3, 7, 10, 97] {
            for t in [0.0, 0.1, 1.0 / 3.0, 0.5, 0.999, 1.0] {
                let s = seed_for(t, denom);
                assert!(s as f64 / denom as f64 <= t);
                if s < denom {
                    assert!((s + 1) as f64 / denom as f64 > t);
                }
            }
        }
    }
}
