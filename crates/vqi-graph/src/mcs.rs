//! Maximum common edge subgraph (MCS) and graph similarity.
//!
//! Pattern-set *diversity* is measured through pairwise pattern
//! similarity, which CATAPULT/TATTOO define via the maximum common
//! subgraph: `sim(a, b) = |E(mcs(a, b))| / max(|E(a)|, |E(b)|)`.
//!
//! The search is a McGregor-style branch-and-bound over partial node
//! mappings with an optimistic remaining-edge bound and a state budget:
//! within the budget the result is exact; once the budget is exhausted
//! the best mapping found so far is returned (a lower bound on the true
//! MCS), which keeps the measure well-defined and fast on adversarial
//! inputs. Patterns in practice have ≤ 15 nodes, where the search is
//! exact.

use crate::graph::{Graph, NodeId};

struct McsSearch<'a> {
    a: &'a Graph,
    b: &'a Graph,
    order: Vec<NodeId>,
    map: Vec<u32>,
    used_b: Vec<bool>,
    best: usize,
    budget: u64,
}

impl<'a> McsSearch<'a> {
    /// Number of a-edges from `v` into the already-mapped prefix that are
    /// preserved under mapping `v -> t`.
    fn gained(&self, v: NodeId, t: NodeId) -> Option<usize> {
        let mut gain = 0;
        for (q, ae) in self.a.neighbors(v) {
            let tq = self.map[q.index()];
            if tq == u32::MAX {
                continue;
            }
            if let Some(be) = self.b.edge_between(t, NodeId(tq)) {
                if self.a.edge_label(ae) == self.b.edge_label(be) {
                    gain += 1;
                }
            }
        }
        Some(gain)
    }

    fn search(&mut self, depth: usize, common: usize, remaining_possible: usize) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        if common > self.best {
            self.best = common;
        }
        if depth == self.order.len() || common + remaining_possible <= self.best {
            return;
        }
        let v = self.order[depth];
        // edges from v into the not-yet-decided suffix still count toward
        // the optimistic bound after this depth; edges from v into the
        // prefix are decided now.
        let v_prefix_edges = self
            .a
            .neighbors(v)
            .filter(|(q, _)| self.map[q.index()] != u32::MAX)
            .count();
        let next_remaining = remaining_possible - v_prefix_edges;
        // try mapping v to each compatible unused b-node
        for t in self.b.nodes() {
            if self.used_b[t.index()] || self.a.node_label(v) != self.b.node_label(t) {
                continue;
            }
            if let Some(gain) = self.gained(v, t) {
                self.map[v.index()] = t.0;
                self.used_b[t.index()] = true;
                self.search(depth + 1, common + gain, next_remaining);
                self.used_b[t.index()] = false;
                self.map[v.index()] = u32::MAX;
            }
        }
        // or leave v unmapped
        self.search(depth + 1, common, next_remaining);
    }
}

/// Size (in edges) of the maximum common edge subgraph of `a` and `b`
/// under exact label matching, searched with the given state budget.
pub fn mcs_edge_count_budgeted(a: &Graph, b: &Graph, budget: u64) -> usize {
    // search from the smaller graph for a shallower tree
    let (a, b) = if a.node_count() <= b.node_count() {
        (a, b)
    } else {
        (b, a)
    };
    if a.edge_count() == 0 || b.edge_count() == 0 {
        return 0;
    }
    // order a's nodes by degree descending: high-impact decisions first
    let mut order: Vec<NodeId> = a.nodes().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(a.degree(v)));
    let mut s = McsSearch {
        a,
        b,
        order,
        map: vec![u32::MAX; a.node_count()],
        used_b: vec![false; b.node_count()],
        best: 0,
        budget,
    };
    s.search(0, 0, a.edge_count());
    s.best
}

/// [`mcs_edge_count_budgeted`] with the default budget (exact for
/// pattern-sized graphs).
pub fn mcs_edge_count(a: &Graph, b: &Graph) -> usize {
    mcs_edge_count_budgeted(a, b, 2_000_000)
}

/// MCS-based similarity in `[0, 1]`:
/// `|E(mcs)| / max(|E(a)|, |E(b)|)`; 0 when either graph has no edges.
pub fn mcs_similarity(a: &Graph, b: &Graph) -> f64 {
    let denom = a.edge_count().max(b.edge_count());
    if denom == 0 {
        return 0.0;
    }
    mcs_edge_count(a, b) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{chain, clique, cycle, star};
    use crate::graph::GraphBuilder;

    #[test]
    fn identical_graphs_share_everything() {
        let g = cycle(5, 1, 2);
        assert_eq!(mcs_edge_count(&g, &g), 5);
        assert!((mcs_similarity(&g, &g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_labels_share_nothing() {
        let a = chain(4, 1, 0);
        let b = chain(4, 2, 0);
        assert_eq!(mcs_edge_count(&a, &b), 0);
        assert_eq!(mcs_similarity(&a, &b), 0.0);
    }

    #[test]
    fn chain_in_cycle() {
        let a = chain(4, 0, 0); // 3 edges
        let b = cycle(6, 0, 0);
        assert_eq!(mcs_edge_count(&a, &b), 3);
        assert!((mcs_similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn star_vs_triangle() {
        let a = star(3, 0, 0); // claw
        let b = clique(3, 0, 0);
        // best common subgraph: a path of 2 edges
        assert_eq!(mcs_edge_count(&a, &b), 2);
    }

    #[test]
    fn edge_labels_constrain() {
        let a = GraphBuilder::new()
            .nodes(&[0, 0, 0])
            .edge(0, 1, 1)
            .edge(1, 2, 2)
            .build();
        let b = GraphBuilder::new()
            .nodes(&[0, 0, 0])
            .edge(0, 1, 1)
            .edge(1, 2, 3)
            .build();
        assert_eq!(mcs_edge_count(&a, &b), 1);
    }

    #[test]
    fn empty_graphs() {
        let e = crate::graph::Graph::new();
        let g = cycle(3, 0, 0);
        assert_eq!(mcs_edge_count(&e, &g), 0);
        assert_eq!(mcs_similarity(&e, &e), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = star(4, 0, 0);
        let b = cycle(5, 0, 0);
        assert_eq!(mcs_edge_count(&a, &b), mcs_edge_count(&b, &a));
        assert_eq!(mcs_similarity(&a, &b), mcs_similarity(&b, &a));
    }

    #[test]
    fn subgraph_relation_gives_full_smaller_size() {
        // triangle inside K5
        let t = clique(3, 0, 0);
        let k = clique(5, 0, 0);
        assert_eq!(mcs_edge_count(&t, &k), 3);
    }
}
