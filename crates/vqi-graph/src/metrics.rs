//! Structural statistics used across the selection systems.

use crate::graph::Graph;
use std::collections::HashMap;

/// Average degree (`2m / n`); zero for the empty graph.
pub fn average_degree(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / g.node_count() as f64
    }
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Global clustering coefficient: `3 * triangles / open-and-closed triads`.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let supports = crate::truss::edge_supports(g);
    let triangles: u64 = supports.iter().map(|&s| s as u64).sum::<u64>() / 3;
    let triads: u64 = g
        .nodes()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if triads == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / triads as f64
    }
}

/// Frequencies of node labels.
pub fn node_label_frequencies(g: &Graph) -> HashMap<u32, usize> {
    let mut f = HashMap::new();
    for v in g.nodes() {
        *f.entry(g.node_label(v)).or_insert(0) += 1;
    }
    f
}

/// Frequencies of edge labels.
pub fn edge_label_frequencies(g: &Graph) -> HashMap<u32, usize> {
    let mut f = HashMap::new();
    for e in g.edges() {
        *f.entry(g.edge_label(e)).or_insert(0) += 1;
    }
    f
}

/// Aggregated label statistics over a collection of graphs: for each node
/// label, the number of graphs in which it occurs.
pub fn label_document_frequencies<'a, I: IntoIterator<Item = &'a Graph>>(
    graphs: I,
) -> HashMap<u32, usize> {
    let mut df = HashMap::new();
    for g in graphs {
        let mut labels: Vec<u32> = g.nodes().map(|v| g.node_label(v)).collect();
        labels.sort_unstable();
        labels.dedup();
        for l in labels {
            *df.entry(l).or_insert(0) += 1;
        }
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{chain, clique, star};

    #[test]
    fn average_degree_of_cycle() {
        let g = crate::generate::cycle(7, 0, 0);
        assert!((average_degree(&g) - 2.0).abs() < 1e-12);
        assert_eq!(average_degree(&Graph::new()), 0.0);
    }

    #[test]
    fn degree_histogram_of_star() {
        let g = star(4, 0, 0);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
    }

    #[test]
    fn clustering_extremes() {
        assert!((clustering_coefficient(&clique(5, 0, 0)) - 1.0).abs() < 1e-12);
        assert_eq!(clustering_coefficient(&chain(5, 0, 0)), 0.0);
        assert_eq!(clustering_coefficient(&Graph::new()), 0.0);
    }

    #[test]
    fn label_frequencies() {
        let mut g = Graph::new();
        let a = g.add_node(1);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.add_edge(a, b, 9);
        g.add_edge(b, c, 9);
        let nf = node_label_frequencies(&g);
        assert_eq!(nf[&1], 2);
        assert_eq!(nf[&2], 1);
        let ef = edge_label_frequencies(&g);
        assert_eq!(ef[&9], 2);
    }

    #[test]
    fn document_frequencies() {
        let g1 = star(2, 1, 0);
        let g2 = chain(3, 2, 0);
        let mut g3 = Graph::new();
        g3.add_node(1);
        g3.add_node(2);
        let df = label_document_frequencies([&g1, &g2, &g3]);
        assert_eq!(df[&1], 2);
        assert_eq!(df[&2], 2);
    }
}
