//! Frequent closed trees (FCT) with incremental maintenance.
//!
//! A frequent tree is *closed* if no frequent supertree has the same
//! support. MIDAS replaces CATAPULT's raw frequent-subtree features with
//! closed trees because closure is stable under small repository changes,
//! so feature vectors — and therefore clusters — can be maintained
//! incrementally instead of re-mined from scratch.
//!
//! [`FctIndex`] owns the mined trees together with their per-graph
//! occurrence sets and supports batch updates: newly added graphs are
//! probed against existing trees (and can promote previously infrequent
//! candidates via a localized re-mine), removed graphs are dropped from
//! all support sets, and closedness flags are recomputed.

use crate::fst::{mine_frequent_subtrees, FrequentTree, MineParams};
use std::collections::{HashMap, HashSet};
use vqi_graph::canon::CanonicalCode;
use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::Graph;

/// A frequent tree plus its closedness flag.
#[derive(Debug, Clone)]
pub struct ClosedTree {
    /// The underlying frequent tree.
    pub tree: FrequentTree,
    /// True if no frequent supertree has equal support.
    pub closed: bool,
}

/// Mined frequent-closed-tree index over a graph collection, maintained
/// under batch updates.
#[derive(Debug)]
pub struct FctIndex {
    params: MineParams,
    /// All frequent trees (closed and not), keyed by canonical code.
    trees: HashMap<CanonicalCode, ClosedTree>,
    /// Live graph ids (indices into the external collection).
    live: HashSet<usize>,
}

impl FctIndex {
    /// Mines the index from scratch. `graphs[i]` is graph id `i`.
    pub fn build(graphs: &[Graph], params: MineParams) -> Self {
        let mined = mine_frequent_subtrees(graphs, params);
        let mut idx = FctIndex {
            params,
            trees: mined
                .into_iter()
                .map(|t| {
                    (
                        t.code.clone(),
                        ClosedTree {
                            tree: t,
                            closed: true,
                        },
                    )
                })
                .collect(),
            live: (0..graphs.len()).collect(),
        };
        idx.recompute_closedness();
        idx
    }

    /// The mining parameters in force.
    pub fn params(&self) -> MineParams {
        self.params
    }

    /// All frequent trees, in deterministic (canonical-code) order.
    pub fn frequent_trees(&self) -> Vec<&ClosedTree> {
        let mut v: Vec<(&CanonicalCode, &ClosedTree)> = self.trees.iter().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v.into_iter().map(|(_, t)| t).collect()
    }

    /// Only the closed trees, in deterministic order.
    pub fn closed_trees(&self) -> Vec<&ClosedTree> {
        self.frequent_trees()
            .into_iter()
            .filter(|t| t.closed)
            .collect()
    }

    /// Number of live graphs covered by the index.
    pub fn live_graphs(&self) -> usize {
        self.live.len()
    }

    /// Applies a batch update: `added` are (id, graph) pairs with fresh
    /// ids, `removed` are ids to drop. `all_graphs` must resolve every
    /// live id (including the added ones) to its graph.
    pub fn apply_batch<'a, F>(
        &mut self,
        added: &[(usize, &'a Graph)],
        removed: &[usize],
        all_graphs: F,
    ) where
        F: Fn(usize) -> &'a Graph,
    {
        // 1. drop removed graphs from every support set
        let removed_set: HashSet<usize> = removed.iter().copied().collect();
        for id in removed {
            self.live.remove(id);
        }
        for ct in self.trees.values_mut() {
            ct.tree.support_set.retain(|gi| !removed_set.contains(gi));
        }

        // 2. probe added graphs against existing trees
        for &(id, g) in added {
            self.live.insert(id);
            for ct in self.trees.values_mut() {
                if is_subgraph_isomorphic(&ct.tree.tree, g, MatchOptions::default()) {
                    ct.tree.support_set.push(id);
                }
            }
        }

        // 3. mine the added graphs alone to discover trees that may have
        //    become frequent; count their support over the full collection
        if !added.is_empty() {
            let added_graphs: Vec<Graph> = added.iter().map(|(_, g)| (*g).clone()).collect();
            let local = mine_frequent_subtrees(
                &added_graphs,
                MineParams {
                    min_support: 1,
                    max_nodes: self.params.max_nodes,
                },
            );
            for cand in local {
                if self.trees.contains_key(&cand.code) {
                    continue;
                }
                let support_set: Vec<usize> = self
                    .live
                    .iter()
                    .copied()
                    .filter(|&gi| {
                        is_subgraph_isomorphic(&cand.tree, all_graphs(gi), MatchOptions::default())
                    })
                    .collect();
                if support_set.len() >= self.params.min_support {
                    self.trees.insert(
                        cand.code.clone(),
                        ClosedTree {
                            tree: FrequentTree {
                                tree: cand.tree,
                                code: cand.code,
                                support_set,
                            },
                            closed: true,
                        },
                    );
                }
            }
        }

        // 4. evict trees that fell below the support threshold
        let min_sup = self.params.min_support;
        self.trees.retain(|_, ct| ct.tree.support() >= min_sup);

        // 5. recompute closedness flags
        self.recompute_closedness();
    }

    /// A tree is closed iff no other frequent tree strictly contains it
    /// with equal support.
    fn recompute_closedness(&mut self) {
        let snapshot: Vec<(CanonicalCode, Graph, usize)> = self
            .trees
            .values()
            .map(|ct| {
                (
                    ct.tree.code.clone(),
                    ct.tree.tree.clone(),
                    ct.tree.support(),
                )
            })
            .collect();
        for ct in self.trees.values_mut() {
            let me_sup = ct.tree.support();
            let me_size = ct.tree.size();
            ct.closed = !snapshot.iter().any(|(code, tree, sup)| {
                *sup == me_sup
                    && tree.node_count() > me_size
                    && *code != ct.tree.code
                    && is_subgraph_isomorphic(&ct.tree.tree, tree, MatchOptions::default())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, star};

    fn params() -> MineParams {
        MineParams {
            min_support: 2,
            max_nodes: 4,
        }
    }

    #[test]
    fn build_finds_closed_trees() {
        let graphs = vec![chain(4, 1, 0), chain(3, 1, 0), star(3, 1, 0)];
        let idx = FctIndex::build(&graphs, params());
        let all = idx.frequent_trees();
        let closed = idx.closed_trees();
        assert!(!all.is_empty());
        assert!(!closed.is_empty());
        assert!(closed.len() <= all.len());
        // the single-node label-1 tree occurs in all 3 graphs, but so does
        // the 1-1 edge: the single node is NOT closed
        let singleton = all
            .iter()
            .find(|t| t.tree.size() == 1)
            .expect("singleton mined");
        assert_eq!(singleton.tree.support(), 3);
        assert!(!singleton.closed, "singleton dominated by the 1-1 edge");
    }

    #[test]
    fn batch_add_updates_supports() {
        let mut graphs = vec![chain(3, 1, 0), chain(4, 1, 0)];
        let mut idx = FctIndex::build(&graphs, params());
        let edge_support_before = idx
            .frequent_trees()
            .iter()
            .find(|t| t.tree.size() == 2)
            .unwrap()
            .tree
            .support();
        assert_eq!(edge_support_before, 2);

        graphs.push(chain(5, 1, 0));
        let added_graph = graphs[2].clone();
        let graphs_ref = graphs.clone();
        idx.apply_batch(&[(2, &added_graph)], &[], |i| &graphs_ref[i]);
        assert_eq!(idx.live_graphs(), 3);
        let edge_support_after = idx
            .frequent_trees()
            .iter()
            .find(|t| t.tree.size() == 2)
            .unwrap()
            .tree
            .support();
        assert_eq!(edge_support_after, 3);
    }

    #[test]
    fn batch_add_discovers_new_trees() {
        // initially only one star: claw not frequent
        let mut graphs = vec![star(3, 7, 0), chain(3, 1, 0)];
        let mut idx = FctIndex::build(&graphs, params());
        let claw = star(3, 7, 0);
        let claw_code = vqi_graph::canon::canonical_code(&claw);
        assert!(idx
            .frequent_trees()
            .iter()
            .all(|t| t.tree.code != claw_code));

        // add a second star: claw becomes frequent
        graphs.push(star(4, 7, 0));
        let g = graphs[2].clone();
        let graphs_ref = graphs.clone();
        idx.apply_batch(&[(2, &g)], &[], |i| &graphs_ref[i]);
        assert!(
            idx.frequent_trees()
                .iter()
                .any(|t| t.tree.code == claw_code),
            "claw should now be frequent"
        );
    }

    #[test]
    fn batch_remove_evicts_infrequent() {
        let graphs = vec![star(3, 7, 0), star(3, 7, 0), chain(3, 1, 0)];
        let mut idx = FctIndex::build(&graphs, params());
        let n_before = idx.frequent_trees().len();
        assert!(n_before > 0);
        let graphs_ref = graphs.clone();
        idx.apply_batch(&[], &[0], |i| &graphs_ref[i]);
        // all label-7 trees supported by {0, 1} drop to support 1 -> evicted
        assert!(idx.frequent_trees().iter().all(|t| t.tree.support() >= 2));
        assert!(idx.frequent_trees().len() < n_before);
        assert_eq!(idx.live_graphs(), 2);
    }

    #[test]
    fn incremental_matches_rebuild() {
        let graphs = vec![chain(3, 1, 0), star(3, 1, 0), chain(4, 1, 0)];
        let mut idx = FctIndex::build(&graphs[..2], params());
        let g = graphs[2].clone();
        let graphs_ref = graphs.clone();
        idx.apply_batch(&[(2, &g)], &[], |i| &graphs_ref[i]);

        let rebuilt = FctIndex::build(&graphs, params());
        let inc_codes: Vec<_> = idx
            .frequent_trees()
            .iter()
            .map(|t| (t.tree.code.clone(), t.tree.support(), t.closed))
            .collect();
        let reb_codes: Vec<_> = rebuilt
            .frequent_trees()
            .iter()
            .map(|t| (t.tree.code.clone(), t.tree.support(), t.closed))
            .collect();
        assert_eq!(inc_codes, reb_codes);
    }
}
