//! Feature vectors for data graphs over a mined tree vocabulary.
//!
//! CATAPULT represents each data graph as a vector indexed by frequent
//! subtrees (MIDAS: frequent *closed* trees); entry `i` is 1 if feature
//! tree `i` occurs in the graph, optionally weighted by the feature's
//! rarity (an IDF-style weight) so that ubiquitous trees contribute less
//! to similarity than discriminative ones.

use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::Graph;

/// A feature extractor over a fixed tree vocabulary.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    /// The vocabulary trees, in a fixed order.
    trees: Vec<Graph>,
    /// Per-feature weight (1.0 = unweighted binary features).
    weights: Vec<f64>,
}

impl FeatureSpace {
    /// Builds an unweighted feature space from vocabulary trees.
    pub fn new(trees: Vec<Graph>) -> Self {
        let weights = vec![1.0; trees.len()];
        FeatureSpace { trees, weights }
    }

    /// Builds an IDF-weighted feature space: feature `i` occurring in
    /// `df_i` of `n` graphs gets weight `ln(1 + n / df_i)`.
    pub fn with_idf(trees: Vec<Graph>, document_frequencies: &[usize], n_graphs: usize) -> Self {
        assert_eq!(trees.len(), document_frequencies.len());
        let weights = document_frequencies
            .iter()
            .map(|&df| {
                if df == 0 {
                    0.0
                } else {
                    (1.0 + n_graphs as f64 / df as f64).ln()
                }
            })
            .collect();
        FeatureSpace { trees, weights }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The vocabulary trees.
    pub fn trees(&self) -> &[Graph] {
        &self.trees
    }

    /// The feature vector of `g`: `weight_i` where feature `i` occurs,
    /// else 0.
    pub fn vector(&self, g: &Graph) -> Vec<f64> {
        self.trees
            .iter()
            .zip(self.weights.iter())
            .map(|(t, &w)| {
                if is_subgraph_isomorphic(t, g, MatchOptions::default()) {
                    w
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Feature vectors for a whole collection (parallelized).
    pub fn vectors(&self, graphs: &[Graph]) -> Vec<Vec<f64>> {
        vqi_graph::par::map(graphs, |g| self.vector(g))
    }
}

/// Cosine similarity of two vectors; 0 when either is all-zero.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Cosine distance `1 - cosine_similarity`, clamped to `[0, 1]`.
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    (1.0 - cosine_similarity(a, b)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, clique, star};

    fn space() -> FeatureSpace {
        FeatureSpace::new(vec![chain(2, 1, 0), chain(3, 1, 0), star(3, 1, 0)])
    }

    #[test]
    fn vector_marks_occurrences() {
        let fs = space();
        let v = fs.vector(&chain(4, 1, 0));
        assert_eq!(v, vec![1.0, 1.0, 0.0]);
        let w = fs.vector(&star(4, 1, 0));
        assert_eq!(w, vec![1.0, 1.0, 1.0]);
        let z = fs.vector(&clique(3, 9, 0)); // wrong labels
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn idf_downweights_common_features() {
        let trees = vec![chain(2, 1, 0), star(3, 1, 0)];
        let fs = FeatureSpace::with_idf(trees, &[10, 2], 10);
        let v = fs.vector(&star(3, 1, 0));
        assert!(v[1] > v[0], "rare feature should weigh more: {v:?}");
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        let d = cosine_distance(&[1.0, 1.0], &[1.0, 1.0]);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn vectors_parallel_matches_serial() {
        let fs = space();
        let graphs = vec![chain(4, 1, 0), star(4, 1, 0), clique(3, 1, 0)];
        let par = fs.vectors(&graphs);
        let ser: Vec<Vec<f64>> = graphs.iter().map(|g| fs.vector(g)).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn empty_space() {
        let fs = FeatureSpace::new(vec![]);
        assert!(fs.is_empty());
        assert!(fs.vector(&chain(3, 1, 0)).is_empty());
    }
}
