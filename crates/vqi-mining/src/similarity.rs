//! Graph-to-graph similarity measures.
//!
//! The modular pipeline (Tzanikos et al.) treats the similarity measure as
//! a swappable module; this module provides the implementations shared by
//! the pipelines: feature-vector cosine, labeled-edge-triple Jaccard, and
//! an MCS-based measure (exact but slower).

use crate::features::{cosine_similarity, FeatureSpace};
use std::collections::HashSet;
use vqi_graph::{mcs, Graph};

/// A symmetric similarity in `[0, 1]` between labeled graphs.
pub trait SimilarityMeasure: Send + Sync {
    /// Similarity of `a` and `b`.
    fn similarity(&self, a: &Graph, b: &Graph) -> f64;
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Jaccard similarity over the sets of labeled edge triples
/// `(min(lu, lv), edge label, max(lu, lv))`.
#[derive(Debug, Default, Clone, Copy)]
pub struct EdgeTripleJaccard;

fn triples(g: &Graph) -> HashSet<(u32, u32, u32)> {
    g.edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            let (a, b) = {
                let lu = g.node_label(u);
                let lv = g.node_label(v);
                if lu <= lv {
                    (lu, lv)
                } else {
                    (lv, lu)
                }
            };
            (a, g.edge_label(e), b)
        })
        .collect()
}

impl SimilarityMeasure for EdgeTripleJaccard {
    fn similarity(&self, a: &Graph, b: &Graph) -> f64 {
        let ta = triples(a);
        let tb = triples(b);
        let inter = ta.intersection(&tb).count();
        let union = ta.union(&tb).count();
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    fn name(&self) -> &'static str {
        "edge-triple-jaccard"
    }
}

/// Cosine similarity of feature vectors over a mined tree vocabulary.
pub struct FeatureCosine {
    space: FeatureSpace,
}

impl FeatureCosine {
    /// Wraps a feature space.
    pub fn new(space: FeatureSpace) -> Self {
        FeatureCosine { space }
    }
}

impl SimilarityMeasure for FeatureCosine {
    fn similarity(&self, a: &Graph, b: &Graph) -> f64 {
        cosine_similarity(&self.space.vector(a), &self.space.vector(b))
    }

    fn name(&self) -> &'static str {
        "feature-cosine"
    }
}

/// Maximum-common-subgraph similarity (exact within a search budget).
#[derive(Debug, Default, Clone, Copy)]
pub struct McsSimilarity;

impl SimilarityMeasure for McsSimilarity {
    fn similarity(&self, a: &Graph, b: &Graph) -> f64 {
        mcs::mcs_similarity(a, b)
    }

    fn name(&self) -> &'static str {
        "mcs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};

    #[test]
    fn jaccard_identical() {
        let g = cycle(4, 1, 2);
        let m = EdgeTripleJaccard;
        assert!((m.similarity(&g, &g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_disjoint() {
        let a = chain(3, 1, 0);
        let b = chain(3, 2, 0);
        let m = EdgeTripleJaccard;
        assert_eq!(m.similarity(&a, &b), 0.0);
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded() {
        let a = star(3, 1, 0);
        let b = cycle(5, 1, 0);
        let m = EdgeTripleJaccard;
        let s = m.similarity(&a, &b);
        assert_eq!(s, m.similarity(&b, &a));
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn jaccard_empty_graphs() {
        let e = Graph::new();
        let m = EdgeTripleJaccard;
        assert_eq!(m.similarity(&e, &e), 0.0);
    }

    #[test]
    fn feature_cosine_works() {
        let fs = FeatureSpace::new(vec![chain(2, 1, 0), chain(3, 1, 0)]);
        let m = FeatureCosine::new(fs);
        let a = chain(4, 1, 0);
        let b = chain(5, 1, 0);
        assert!((m.similarity(&a, &b) - 1.0).abs() < 1e-12);
        let c = chain(3, 9, 0);
        assert_eq!(m.similarity(&a, &c), 0.0);
    }

    #[test]
    fn mcs_measure_agrees_with_mcs_module() {
        let a = chain(4, 0, 0);
        let b = cycle(6, 0, 0);
        let m = McsSimilarity;
        assert_eq!(m.similarity(&a, &b), mcs::mcs_similarity(&a, &b));
        assert_eq!(m.name(), "mcs");
    }
}
