//! Clustering of data graphs by pairwise distance.
//!
//! CATAPULT's first step partitions the collection into clusters of
//! structurally similar graphs. Two algorithms are provided behind one
//! result type:
//!
//! * [`k_medoids`] — PAM-style alternation between assignment and medoid
//!   update; deterministic given the seed;
//! * [`leader`] — single-pass threshold clustering (each item joins the
//!   first leader within `threshold`, else becomes a new leader), the
//!   cheap choice for incremental maintenance.

use rand::seq::SliceRandom;
use rand::Rng;

/// Dense symmetric distance matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the matrix by evaluating `f(i, j)` for all `i < j` in
    /// parallel. `f` must be symmetric with `f(i, i) = 0`.
    pub fn from_fn<F: Fn(usize, usize) -> f64 + Sync>(n: usize, f: F) -> Self {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let vals: Vec<f64> = vqi_graph::par::map(&pairs, |&(i, j)| f(i, j));
        let mut d = vec![0.0; n * n];
        for (&(i, j), &v) in pairs.iter().zip(vals.iter()) {
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
        DistanceMatrix { n, d }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }
}

/// A clustering of `n` items.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `assignments[i]` = cluster index of item `i`.
    pub assignments: Vec<usize>,
    /// Representative item per cluster (medoid or leader).
    pub representatives: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.representatives.len()
    }

    /// Items per cluster, in item order.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.cluster_count()];
        for (i, &c) in self.assignments.iter().enumerate() {
            out[c].push(i);
        }
        out
    }

    /// Total distance of items to their cluster representative.
    pub fn cost(&self, dist: &DistanceMatrix) -> f64 {
        self.assignments
            .iter()
            .enumerate()
            .map(|(i, &c)| dist.get(i, self.representatives[c]))
            .sum()
    }
}

/// PAM-style k-medoids. `k` is clamped to the number of items; empty input
/// yields an empty clustering.
pub fn k_medoids<R: Rng>(
    dist: &DistanceMatrix,
    k: usize,
    max_iter: usize,
    rng: &mut R,
) -> Clustering {
    let n = dist.len();
    if n == 0 || k == 0 {
        return Clustering {
            assignments: vec![],
            representatives: vec![],
        };
    }
    let k = k.min(n);
    let mut medoids: Vec<usize> = {
        let mut items: Vec<usize> = (0..n).collect();
        items.shuffle(rng);
        items.truncate(k);
        items
    };
    let mut assignments = vec![0usize; n];
    for _ in 0..max_iter {
        // assignment step
        for (i, slot) in assignments.iter_mut().enumerate() {
            *slot = medoids
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| dist.get(i, a).total_cmp(&dist.get(i, b)))
                .map(|(ci, _)| ci)
                .unwrap();
        }
        // medoid update step
        let mut changed = false;
        for (ci, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == ci).collect();
            if members.is_empty() {
                continue;
            }
            let best = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ca: f64 = members.iter().map(|&m| dist.get(m, a)).sum();
                    let cb: f64 = members.iter().map(|&m| dist.get(m, b)).sum();
                    ca.total_cmp(&cb)
                })
                .unwrap();
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // final assignment against the settled medoids
    for (i, slot) in assignments.iter_mut().enumerate() {
        *slot = medoids
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| dist.get(i, a).total_cmp(&dist.get(i, b)))
            .map(|(ci, _)| ci)
            .unwrap();
    }
    Clustering {
        assignments,
        representatives: medoids,
    }
}

/// Single-pass leader clustering: item `i` joins the first existing leader
/// within `threshold` distance, otherwise founds a new cluster.
pub fn leader(dist: &DistanceMatrix, threshold: f64) -> Clustering {
    let n = dist.len();
    let mut leaders: Vec<usize> = Vec::new();
    let mut assignments = vec![0usize; n];
    for (i, slot) in assignments.iter_mut().enumerate() {
        match leaders.iter().position(|&l| dist.get(i, l) <= threshold) {
            Some(ci) => *slot = ci,
            None => {
                leaders.push(i);
                *slot = leaders.len() - 1;
            }
        }
    }
    Clustering {
        assignments,
        representatives: leaders,
    }
}

/// Assigns a *new* item (with distances to the representatives given by
/// `dist_to_rep`) to its nearest cluster, or founds a new one if the
/// nearest representative is farther than `threshold`. Used by MIDAS to
/// place newly added graphs without re-clustering.
pub fn assign_incremental<F: Fn(usize) -> f64>(
    representatives: &[usize],
    dist_to_rep: F,
    threshold: f64,
) -> Option<usize> {
    representatives
        .iter()
        .enumerate()
        .map(|(ci, _)| (ci, dist_to_rep(ci)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .filter(|&(_, d)| d <= threshold)
        .map(|(ci, _)| ci)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Two well-separated 1-D blobs.
    fn blob_matrix() -> DistanceMatrix {
        let points: [f64; 6] = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        DistanceMatrix::from_fn(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn distance_matrix_is_symmetric() {
        let d = blob_matrix();
        for i in 0..d.len() {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..d.len() {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
    }

    #[test]
    fn k_medoids_separates_blobs() {
        let d = blob_matrix();
        let mut rng = SmallRng::seed_from_u64(0);
        let c = k_medoids(&d, 2, 20, &mut rng);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[1], c.assignments[2]);
        assert_eq!(c.assignments[3], c.assignments[4]);
        assert_eq!(c.assignments[4], c.assignments[5]);
        assert_ne!(c.assignments[0], c.assignments[3]);
        assert!(c.cost(&d) < 1.0);
    }

    #[test]
    fn k_medoids_edge_cases() {
        let d = DistanceMatrix::from_fn(0, |_, _| 0.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let c = k_medoids(&d, 3, 5, &mut rng);
        assert_eq!(c.cluster_count(), 0);
        // k > n clamps
        let d1 = DistanceMatrix::from_fn(2, |_, _| 1.0);
        let c1 = k_medoids(&d1, 5, 5, &mut rng);
        assert_eq!(c1.cluster_count(), 2);
    }

    #[test]
    fn leader_respects_threshold() {
        let d = blob_matrix();
        let c = leader(&d, 1.0);
        assert_eq!(c.cluster_count(), 2);
        let tight = leader(&d, 0.05);
        assert!(tight.cluster_count() > 2);
        let loose = leader(&d, 100.0);
        assert_eq!(loose.cluster_count(), 1);
    }

    #[test]
    fn leader_assignments_consistent() {
        let d = blob_matrix();
        let c = leader(&d, 1.0);
        let clusters = c.clusters();
        let total: usize = clusters.iter().map(|cl| cl.len()).sum();
        assert_eq!(total, d.len());
        for (ci, members) in clusters.iter().enumerate() {
            for &m in members {
                assert_eq!(c.assignments[m], ci);
            }
        }
    }

    #[test]
    fn incremental_assignment() {
        let reps = [0usize, 1];
        // distances to reps: rep 0 -> 5.0, rep 1 -> 0.5
        let assigned = assign_incremental(&reps, |ci| if ci == 0 { 5.0 } else { 0.5 }, 1.0);
        assert_eq!(assigned, Some(1));
        let none = assign_incremental(&reps, |_| 10.0, 1.0);
        assert_eq!(none, None);
        let empty: Option<usize> = assign_incremental(&[], |_| 0.0, 1.0);
        assert_eq!(empty, None);
    }

    #[test]
    fn k_medoids_survives_non_finite_distances() {
        // a degenerate distance function (NaN off-diagonal) used to
        // panic in the partial_cmp argmax; total_cmp ranks NaN above
        // every finite distance, so the run completes with a valid
        // (if arbitrary) clustering
        let d = DistanceMatrix::from_fn(4, |i, j| if (i + j) % 2 == 0 { f64::NAN } else { 1.0 });
        let mut rng = SmallRng::seed_from_u64(3);
        let c = k_medoids(&d, 2, 10, &mut rng);
        assert_eq!(c.assignments.len(), 4);
        assert!(c.assignments.iter().all(|&a| a < c.cluster_count()));
    }

    #[test]
    fn incremental_assignment_prefers_finite_distances() {
        let reps = [0usize, 1, 2];
        // NaN sorts above +inf under total_cmp, so the finite rep wins
        let assigned = assign_incremental(&reps, |ci| if ci == 1 { 0.5 } else { f64::NAN }, 1.0);
        assert_eq!(assigned, Some(1));
        // all-NaN distances never pass the threshold filter
        let none = assign_incremental(&reps, |_| f64::NAN, 1.0);
        assert_eq!(none, None);
    }
}
