//! Frequent subgraph mining (pattern growth, beam-bounded).
//!
//! AURORA-style interface construction selects canned patterns from the
//! *frequent subgraphs* of the repository rather than from cluster
//! summaries. The miner here grows patterns one edge at a time — both
//! extensions to a fresh node and cycle-closing edges between existing
//! nodes — deduplicates candidates by canonical code, and counts support
//! (graphs containing an embedding) only within the parent's support set,
//! exploiting anti-monotonicity.
//!
//! Exact frequent-subgraph mining is exponential; a per-level **beam**
//! keeps the widest `beam_width` candidates by support, which bounds cost
//! at the price of completeness (documented, and irrelevant for pattern
//! selection where only the well-supported head of the distribution
//! matters).

use crate::fst::MineParams;
use std::collections::HashSet;
use vqi_graph::canon::{canonical_code, CanonicalCode};
use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::{Graph, Label, NodeId};

/// A mined frequent subgraph.
#[derive(Debug, Clone)]
pub struct FrequentSubgraph {
    /// The pattern graph (connected, possibly cyclic).
    pub graph: Graph,
    /// Canonical code.
    pub code: CanonicalCode,
    /// Ids (collection indices) of supporting graphs.
    pub support_set: Vec<usize>,
}

impl FrequentSubgraph {
    /// Support count.
    pub fn support(&self) -> usize {
        self.support_set.len()
    }
}

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct FsgParams {
    /// Minimum support (absolute graphs).
    pub min_support: usize,
    /// Maximum pattern size in nodes.
    pub max_nodes: usize,
    /// Per-level beam width (candidates kept, by support).
    pub beam_width: usize,
}

impl Default for FsgParams {
    fn default() -> Self {
        FsgParams {
            min_support: 2,
            max_nodes: 8,
            beam_width: 200,
        }
    }
}

impl From<MineParams> for FsgParams {
    fn from(m: MineParams) -> Self {
        FsgParams {
            min_support: m.min_support,
            max_nodes: m.max_nodes,
            ..Default::default()
        }
    }
}

/// Mines frequent connected subgraphs of 2..=`max_nodes` nodes.
pub fn mine_frequent_subgraphs(graphs: &[Graph], params: FsgParams) -> Vec<FrequentSubgraph> {
    let min_sup = params.min_support.max(1);
    // seeds: frequent single labeled edges
    let mut edge_kinds: HashSet<(Label, Label, Label)> = HashSet::new();
    for g in graphs {
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            let (a, b) = {
                let (lu, lv) = (g.node_label(u), g.node_label(v));
                if lu <= lv {
                    (lu, lv)
                } else {
                    (lv, lu)
                }
            };
            edge_kinds.insert((a, g.edge_label(e), b));
        }
    }
    let mut kinds: Vec<_> = edge_kinds.into_iter().collect();
    kinds.sort_unstable();

    // (edge label, node label) vocabulary for extensions
    let ext_pairs: Vec<(Label, Label)> = {
        let mut set = HashSet::new();
        for g in graphs {
            for e in g.edges() {
                let (u, v) = g.endpoints(e);
                set.insert((g.edge_label(e), g.node_label(u)));
                set.insert((g.edge_label(e), g.node_label(v)));
            }
        }
        let mut v: Vec<_> = set.into_iter().collect();
        v.sort_unstable();
        v
    };
    let edge_labels: Vec<Label> = {
        let mut v: Vec<Label> = ext_pairs.iter().map(|&(el, _)| el).collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    let mut frontier: Vec<FrequentSubgraph> = Vec::new();
    for (a, el, b) in kinds {
        let mut p = Graph::new();
        let na = p.add_node(a);
        let nb = p.add_node(b);
        p.add_edge(na, nb, el);
        let support_set: Vec<usize> = graphs
            .iter()
            .enumerate()
            .filter(|(_, g)| is_subgraph_isomorphic(&p, g, MatchOptions::default()))
            .map(|(i, _)| i)
            .collect();
        if support_set.len() >= min_sup {
            frontier.push(FrequentSubgraph {
                code: canonical_code(&p),
                graph: p,
                support_set,
            });
        }
    }
    beam_trim(&mut frontier, params.beam_width);

    let mut result: Vec<FrequentSubgraph> = Vec::new();
    while !frontier.is_empty() {
        result.extend(frontier.iter().cloned());
        let mut seen: HashSet<CanonicalCode> = HashSet::new();
        for r in &result {
            seen.insert(r.code.clone());
        }
        let mut next: Vec<FrequentSubgraph> = Vec::new();
        for fs in &frontier {
            let n = fs.graph.node_count();
            // extension to a fresh node, from every attachment point
            // (cycle-closing extensions below stay legal at max size, so
            // dense variants of maximal patterns are still reached)
            if n < params.max_nodes {
                for attach in 0..n as u32 {
                    for &(el, nl) in &ext_pairs {
                        let mut cand = fs.graph.clone();
                        let nv = cand.add_node(nl);
                        cand.add_edge(NodeId(attach), nv, el);
                        admit(&cand, fs, graphs, min_sup, &mut seen, &mut next);
                    }
                }
            }
            // cycle-closing edge between existing non-adjacent nodes
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if fs.graph.has_edge(NodeId(a), NodeId(b)) {
                        continue;
                    }
                    for &el in &edge_labels {
                        let mut cand = fs.graph.clone();
                        cand.add_edge(NodeId(a), NodeId(b), el);
                        admit(&cand, fs, graphs, min_sup, &mut seen, &mut next);
                    }
                }
            }
        }
        beam_trim(&mut next, params.beam_width);
        frontier = next;
    }
    result
}

/// Support-counts a candidate within its parent's support set and admits
/// it to the next frontier when frequent and novel.
fn admit(
    cand: &Graph,
    parent: &FrequentSubgraph,
    graphs: &[Graph],
    min_sup: usize,
    seen: &mut HashSet<CanonicalCode>,
    next: &mut Vec<FrequentSubgraph>,
) {
    let code = canonical_code(cand);
    if !seen.insert(code.clone()) {
        return;
    }
    let support_set: Vec<usize> = parent
        .support_set
        .iter()
        .copied()
        .filter(|&gi| is_subgraph_isomorphic(cand, &graphs[gi], MatchOptions::default()))
        .collect();
    if support_set.len() >= min_sup {
        next.push(FrequentSubgraph {
            graph: cand.clone(),
            code,
            support_set,
        });
    }
}

/// Keeps the `beam` best candidates by (support, size) descending.
fn beam_trim(level: &mut Vec<FrequentSubgraph>, beam: usize) {
    level.sort_by(|a, b| {
        b.support()
            .cmp(&a.support())
            .then(b.graph.edge_count().cmp(&a.graph.edge_count()))
            .then(a.code.cmp(&b.code))
    });
    level.truncate(beam);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};
    use vqi_graph::traversal::is_connected;

    fn collection() -> Vec<Graph> {
        vec![
            cycle(5, 1, 0),
            cycle(6, 1, 0),
            chain(5, 1, 0),
            star(4, 1, 0),
        ]
    }

    #[test]
    fn mines_cyclic_patterns_unlike_tree_mining() {
        let graphs = vec![cycle(4, 1, 0), cycle(4, 1, 0), cycle(5, 1, 0)];
        let mined = mine_frequent_subgraphs(
            &graphs,
            FsgParams {
                min_support: 2,
                max_nodes: 4,
                beam_width: 100,
            },
        );
        // the 4-cycle occurs in two graphs: must be found
        let c4 = cycle(4, 1, 0);
        let c4_code = canonical_code(&c4);
        assert!(
            mined.iter().any(|m| m.code == c4_code),
            "C4 should be frequent (cycle closure extension)"
        );
    }

    #[test]
    fn supports_are_correct_and_anti_monotone() {
        let graphs = collection();
        let mined = mine_frequent_subgraphs(&graphs, FsgParams::default());
        for m in &mined {
            assert!(is_connected(&m.graph));
            assert!(m.support() >= 2);
            for &gi in &m.support_set {
                assert!(is_subgraph_isomorphic(
                    &m.graph,
                    &graphs[gi],
                    MatchOptions::default()
                ));
            }
        }
        // the single-edge seed has max support
        let max_by_size: std::collections::HashMap<usize, usize> =
            mined.iter().fold(Default::default(), |mut m, f| {
                let e = m.entry(f.graph.node_count()).or_insert(0);
                *e = (*e).max(f.support());
                m
            });
        for n in 3..=5 {
            if let (Some(&small), Some(&big)) = (max_by_size.get(&(n - 1)), max_by_size.get(&n)) {
                assert!(big <= small, "size {n}: support grew");
            }
        }
    }

    #[test]
    fn no_duplicates() {
        let mined = mine_frequent_subgraphs(&collection(), FsgParams::default());
        let mut codes: Vec<&CanonicalCode> = mined.iter().map(|m| &m.code).collect();
        let before = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(before, codes.len());
    }

    #[test]
    fn beam_bounds_output_per_level() {
        let graphs = collection();
        let narrow = mine_frequent_subgraphs(
            &graphs,
            FsgParams {
                beam_width: 2,
                ..Default::default()
            },
        );
        let wide = mine_frequent_subgraphs(
            &graphs,
            FsgParams {
                beam_width: 500,
                ..Default::default()
            },
        );
        assert!(narrow.len() <= wide.len());
        // at most beam_width per size level
        let mut per_level: std::collections::HashMap<usize, usize> = Default::default();
        for m in &narrow {
            *per_level.entry(m.graph.node_count()).or_insert(0) += 1;
        }
        assert!(per_level.values().all(|&c| c <= 2));
    }

    #[test]
    fn empty_and_unsupported() {
        assert!(mine_frequent_subgraphs(&[], FsgParams::default()).is_empty());
        let graphs = vec![chain(3, 1, 0)];
        let mined = mine_frequent_subgraphs(
            &graphs,
            FsgParams {
                min_support: 2,
                ..Default::default()
            },
        );
        assert!(mined.is_empty());
    }
}
