//! Frequent subtree mining over a collection of data graphs.
//!
//! CATAPULT clusters data graphs by the frequent subtrees they contain.
//! The miner here uses pattern growth: level 1 is the frequent node
//! labels; each subsequent level extends every frequent tree by one edge
//! (to a fresh node) at every possible attachment point with every
//! frequent (edge label, node label) combination observed in the
//! supporting graphs, deduplicates candidates by canonical code, and
//! keeps those whose *support* (number of distinct graphs containing an
//! embedding) meets the threshold. Anti-monotonicity of support makes the
//! level-wise search complete for the configured size bound.

use std::collections::{HashMap, HashSet};
use vqi_graph::canon::{canonical_code, CanonicalCode};
use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::{Graph, Label, NodeId};

/// A mined frequent tree with its supporting graph ids.
#[derive(Debug, Clone)]
pub struct FrequentTree {
    /// The tree pattern itself.
    pub tree: Graph,
    /// Canonical code (dedup key).
    pub code: CanonicalCode,
    /// Ids (indices into the mined collection) of graphs containing it.
    pub support_set: Vec<usize>,
}

impl FrequentTree {
    /// Support count.
    pub fn support(&self) -> usize {
        self.support_set.len()
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        self.tree.node_count()
    }
}

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct MineParams {
    /// Minimum support as an absolute number of graphs.
    pub min_support: usize,
    /// Maximum tree size in nodes (level bound).
    pub max_nodes: usize,
}

impl Default for MineParams {
    fn default() -> Self {
        MineParams {
            min_support: 2,
            max_nodes: 4,
        }
    }
}

/// Mines all frequent subtrees of up to `params.max_nodes` nodes.
pub fn mine_frequent_subtrees(graphs: &[Graph], params: MineParams) -> Vec<FrequentTree> {
    let min_sup = params.min_support.max(1);
    let mut result: Vec<FrequentTree> = Vec::new();

    // level 1: frequent node labels
    let mut label_support: HashMap<Label, Vec<usize>> = HashMap::new();
    for (gi, g) in graphs.iter().enumerate() {
        let mut labels: Vec<Label> = g.nodes().map(|v| g.node_label(v)).collect();
        labels.sort_unstable();
        labels.dedup();
        for l in labels {
            label_support.entry(l).or_default().push(gi);
        }
    }
    let mut frontier: Vec<FrequentTree> = Vec::new();
    let mut labels: Vec<(Label, Vec<usize>)> = label_support.into_iter().collect();
    labels.sort_unstable_by_key(|(l, _)| *l);
    for (l, support_set) in labels {
        if support_set.len() >= min_sup {
            let mut t = Graph::new();
            t.add_node(l);
            frontier.push(FrequentTree {
                code: canonical_code(&t),
                tree: t,
                support_set,
            });
        }
    }

    // (edge label, node label) pairs present per graph, for extension
    let mut ext_pairs: Vec<(Label, Label)> = {
        let mut set = HashSet::new();
        for g in graphs {
            for e in g.edges() {
                let (u, v) = g.endpoints(e);
                set.insert((g.edge_label(e), g.node_label(u)));
                set.insert((g.edge_label(e), g.node_label(v)));
            }
        }
        set.into_iter().collect()
    };
    ext_pairs.sort_unstable();

    while !frontier.is_empty() {
        result.extend(frontier.iter().cloned());
        // frontier trees all share a size; stop at the bound
        if frontier[0].size() >= params.max_nodes {
            break;
        }
        let mut seen: HashSet<CanonicalCode> = HashSet::new();
        let mut next: Vec<FrequentTree> = Vec::new();
        for ft in &frontier {
            for attach in ft.tree.nodes().collect::<Vec<NodeId>>() {
                for &(el, nl) in &ext_pairs {
                    let mut cand = ft.tree.clone();
                    let nv = cand.add_node(nl);
                    cand.add_edge(attach, nv, el);
                    let code = canonical_code(&cand);
                    if !seen.insert(code.clone()) {
                        continue;
                    }
                    // count support within the parent's support set
                    // (anti-monotone)
                    let support_set: Vec<usize> = ft
                        .support_set
                        .iter()
                        .copied()
                        .filter(|&gi| {
                            is_subgraph_isomorphic(&cand, &graphs[gi], MatchOptions::default())
                        })
                        .collect();
                    if support_set.len() >= min_sup {
                        next.push(FrequentTree {
                            tree: cand,
                            code,
                            support_set,
                        });
                    }
                }
            }
        }
        frontier = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};

    fn collection() -> Vec<Graph> {
        vec![
            chain(4, 1, 0), // path with node label 1
            chain(3, 1, 0),
            star(3, 1, 0),
            cycle(4, 2, 0), // different node label
        ]
    }

    #[test]
    fn single_labels_are_mined() {
        let graphs = collection();
        let trees = mine_frequent_subtrees(
            &graphs,
            MineParams {
                min_support: 3,
                max_nodes: 1,
            },
        );
        // label 1 appears in 3 graphs; label 2 only in 1
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].tree.node_label(NodeId(0)), 1);
        assert_eq!(trees[0].support(), 3);
    }

    #[test]
    fn edges_and_paths_are_mined() {
        let graphs = collection();
        let trees = mine_frequent_subtrees(
            &graphs,
            MineParams {
                min_support: 3,
                max_nodes: 3,
            },
        );
        let sizes: Vec<usize> = trees.iter().map(|t| t.size()).collect();
        // single node (1), edge (1-1), path of 3 (all in 3 graphs)
        assert!(sizes.contains(&1));
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&3));
        for t in &trees {
            assert!(t.support() >= 3);
            // every mined pattern is a tree
            assert_eq!(t.tree.edge_count(), t.tree.node_count() - 1);
        }
    }

    #[test]
    fn support_is_anti_monotone() {
        let graphs = collection();
        let trees = mine_frequent_subtrees(
            &graphs,
            MineParams {
                min_support: 2,
                max_nodes: 4,
            },
        );
        // every supertree in the output has support <= some subtree: check
        // globally that larger trees never have larger support than the
        // maximum support of smaller trees
        let max_by_size: HashMap<usize, usize> = trees.iter().fold(HashMap::new(), |mut m, t| {
            let e = m.entry(t.size()).or_insert(0);
            *e = (*e).max(t.support());
            m
        });
        for size in 2..=4 {
            if let (Some(&small), Some(&big)) =
                (max_by_size.get(&(size - 1)), max_by_size.get(&size))
            {
                assert!(big <= small, "size {size}: {big} > {small}");
            }
        }
    }

    #[test]
    fn star_is_found_when_frequent() {
        let graphs = vec![star(3, 5, 7), star(4, 5, 7), star(3, 5, 7)];
        let trees = mine_frequent_subtrees(
            &graphs,
            MineParams {
                min_support: 3,
                max_nodes: 4,
            },
        );
        let claw = star(3, 5, 7);
        let claw_code = canonical_code(&claw);
        assert!(
            trees.iter().any(|t| t.code == claw_code),
            "claw should be frequent"
        );
    }

    #[test]
    fn no_duplicates_by_code() {
        let graphs = collection();
        let trees = mine_frequent_subtrees(&graphs, MineParams::default());
        let mut codes: Vec<&CanonicalCode> = trees.iter().map(|t| &t.code).collect();
        let before = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(before, codes.len());
    }

    #[test]
    fn empty_collection() {
        let trees = mine_frequent_subtrees(&[], MineParams::default());
        assert!(trees.is_empty());
    }

    #[test]
    fn min_support_filters() {
        let graphs = collection();
        let lo = mine_frequent_subtrees(
            &graphs,
            MineParams {
                min_support: 1,
                max_nodes: 2,
            },
        );
        let hi = mine_frequent_subtrees(
            &graphs,
            MineParams {
                min_support: 4,
                max_nodes: 2,
            },
        );
        assert!(lo.len() > hi.len());
    }
}
