//! Graph-mining substrate for data-driven VQI construction.
//!
//! CATAPULT and MIDAS need four mining capabilities, all implemented here
//! from scratch:
//!
//! * [`fst`] — frequent subtree mining over a collection of data graphs
//!   (pattern growth with canonical-code deduplication);
//! * [`fct`] — frequent *closed* trees, the feature language MIDAS swaps
//!   in for efficient maintenance, with incremental updates under batch
//!   insertions/deletions;
//! * [`fsg`] — frequent *subgraph* mining (pattern growth with cycle
//!   closure, beam-bounded), the substrate of AURORA-style selection;
//! * [`features`] + [`similarity`] — sparse feature vectors over mined
//!   trees and the similarity measures built on them;
//! * [`cluster`] — k-medoids and leader clustering of graphs by feature
//!   similarity;
//! * [`closure`] — graph closure and *cluster summary graphs* (CSGs): a
//!   single wildcard-labeled graph in which every graph of a cluster
//!   embeds, the structure CATAPULT draws candidate patterns from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod cluster;
pub mod fct;
pub mod features;
pub mod fsg;
pub mod fst;
pub mod similarity;
