//! Graph closure and cluster summary graphs (CSGs).
//!
//! A *closure graph* (He & Singh's closure-tree idea, as used by
//! CATAPULT) integrates graphs of varying sizes into a single graph such
//! that every vertex and edge of every constituent is represented:
//! aligned vertices/edges whose labels disagree receive the special
//! [`WILDCARD_LABEL`], and unaligned structure is appended. A *cluster
//! summary graph* is the iterated closure over all graphs of a cluster.
//!
//! The key invariant (enforced by tests and relied on by candidate
//! generation): **every constituent graph is subgraph-isomorphic to the
//! closure under wildcard matching**. Edge weights record how many
//! constituents contributed each edge, which CATAPULT's weighted random
//! walks use to bias candidate patterns toward frequently shared
//! structure.

use vqi_graph::graph::WILDCARD_LABEL;
use vqi_graph::{Graph, NodeId};

/// A closure graph with per-edge contribution weights.
#[derive(Debug, Clone)]
pub struct ClosureGraph {
    /// The closure structure (labels may be [`WILDCARD_LABEL`]).
    pub graph: Graph,
    /// `edge_weights[e]` = number of constituent graphs contributing edge `e`.
    pub edge_weights: Vec<f64>,
}

impl ClosureGraph {
    /// Wraps a single graph as a trivial closure (all weights 1).
    pub fn from_graph(g: &Graph) -> Self {
        ClosureGraph {
            edge_weights: vec![1.0; g.edge_count()],
            graph: g.clone(),
        }
    }
}

/// Greedy alignment of `b`'s nodes onto distinct nodes of `a`:
/// `result[v] = Some(u)` maps b-node `v` to a-node `u`. Nodes of `b` are
/// processed in decreasing degree order; each picks the unused a-node
/// maximizing `3 · label-match + Σ (1 + edge-label-match)` over mapped
/// neighbors with preserved edges, or stays unmapped when every candidate
/// scores zero.
pub fn align(a: &Graph, b: &Graph) -> Vec<Option<NodeId>> {
    let mut mapping: Vec<Option<NodeId>> = vec![None; b.node_count()];
    let mut used = vec![false; a.node_count()];
    let mut order: Vec<NodeId> = b.nodes().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(b.degree(v)));
    for v in order {
        let mut best: Option<(f64, NodeId)> = None;
        for u in a.nodes() {
            if used[u.index()] {
                continue;
            }
            let la = a.node_label(u);
            let lb = b.node_label(v);
            let label_score = if la == lb || la == WILDCARD_LABEL {
                3.0
            } else {
                0.0
            };
            let mut edge_score = 0.0;
            for (w, be) in b.neighbors(v) {
                if let Some(iw) = mapping[w.index()] {
                    if let Some(ae) = a.edge_between(u, iw) {
                        edge_score += 1.0;
                        let ela = a.edge_label(ae);
                        if ela == b.edge_label(be) || ela == WILDCARD_LABEL {
                            edge_score += 1.0;
                        }
                    }
                }
            }
            // a candidate is eligible only if it shares the label or
            // preserves at least one edge — mapping completely unrelated
            // nodes would wildcard the closure for no compaction benefit
            if label_score == 0.0 && edge_score == 0.0 {
                continue;
            }
            // small degree-affinity tiebreak steers seeds (nodes with no
            // mapped neighbors yet) toward structurally similar anchors
            let score = label_score + edge_score + 0.1 * (a.degree(u).min(b.degree(v)) as f64);
            if best.is_none_or(|(s, bu)| score > s || (score == s && u < bu)) {
                best = Some((score, u));
            }
        }
        if let Some((_, u)) = best {
            mapping[v.index()] = Some(u);
            used[u.index()] = true;
        }
    }
    mapping
}

/// Extends the closure `acc` with graph `b` (one fold step).
pub fn closure_step(acc: &mut ClosureGraph, b: &Graph) {
    let mapping = align(&acc.graph, b);
    // materialize images, appending fresh nodes for unmapped b-nodes
    let mut image: Vec<NodeId> = Vec::with_capacity(b.node_count());
    for v in b.nodes() {
        match mapping[v.index()] {
            Some(u) => {
                let la = acc.graph.node_label(u);
                let lb = b.node_label(v);
                if la != lb && la != WILDCARD_LABEL {
                    acc.graph.set_node_label(u, WILDCARD_LABEL);
                }
                image.push(u);
            }
            None => image.push(acc.graph.add_node(b.node_label(v))),
        }
    }
    for e in b.edges() {
        let (u, v) = b.endpoints(e);
        let (iu, iv) = (image[u.index()], image[v.index()]);
        match acc.graph.edge_between(iu, iv) {
            Some(ae) => {
                let la = acc.graph.edge_label(ae);
                if la != b.edge_label(e) && la != WILDCARD_LABEL {
                    acc.graph.set_edge_label(ae, WILDCARD_LABEL);
                }
                acc.edge_weights[ae.index()] += 1.0;
            }
            None => {
                acc.graph
                    .add_edge(iu, iv, b.edge_label(e))
                    .expect("distinct images");
                acc.edge_weights.push(1.0);
            }
        }
    }
}

/// The closure of a non-empty list of graphs: the largest graph seeds the
/// accumulator and the rest fold in by decreasing size (larger graphs
/// first produce tighter alignments). Returns `None` for an empty list.
pub fn closure_of(graphs: &[&Graph]) -> Option<ClosureGraph> {
    if graphs.is_empty() {
        return None;
    }
    let mut order: Vec<&Graph> = graphs.to_vec();
    order.sort_by_key(|g| std::cmp::Reverse((g.node_count(), g.edge_count())));
    let mut acc = ClosureGraph::from_graph(order[0]);
    for g in &order[1..] {
        closure_step(&mut acc, g);
    }
    Some(acc)
}

/// A cluster summary graph: the closure of a cluster plus bookkeeping.
#[derive(Debug, Clone)]
pub struct ClusterSummaryGraph {
    /// The summary (closure) graph.
    pub closure: ClosureGraph,
    /// Ids of the member graphs (external collection indices).
    pub members: Vec<usize>,
}

impl ClusterSummaryGraph {
    /// Builds the CSG of `member_ids`, resolving graphs through `lookup`.
    pub fn build<'a, F: Fn(usize) -> &'a Graph>(member_ids: &[usize], lookup: F) -> Option<Self> {
        let graphs: Vec<&Graph> = member_ids.iter().map(|&i| lookup(i)).collect();
        closure_of(&graphs).map(|closure| ClusterSummaryGraph {
            closure,
            members: member_ids.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{chain, cycle, star};
    use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};

    fn covers(closure: &ClosureGraph, g: &Graph) -> bool {
        is_subgraph_isomorphic(g, &closure.graph, MatchOptions::with_wildcards())
    }

    #[test]
    fn closure_of_identical_graphs_is_the_graph() {
        let g = cycle(4, 1, 2);
        let c = closure_of(&[&g, &g, &g]).unwrap();
        assert_eq!(c.graph.node_count(), 4);
        assert_eq!(c.graph.edge_count(), 4);
        // every edge contributed 3 times
        assert!(c.edge_weights.iter().all(|&w| w == 3.0));
        assert!(covers(&c, &g));
    }

    #[test]
    fn closure_covers_all_constituents() {
        let graphs = vec![
            chain(5, 1, 0),
            star(4, 1, 0),
            cycle(4, 1, 0),
            chain(3, 2, 0),
        ];
        let refs: Vec<&Graph> = graphs.iter().collect();
        let c = closure_of(&refs).unwrap();
        for g in &graphs {
            assert!(covers(&c, g), "constituent {} not covered", g.summary());
        }
    }

    #[test]
    fn closure_smaller_than_disjoint_union() {
        let graphs = [chain(5, 1, 0), chain(4, 1, 0), chain(3, 1, 0)];
        let refs: Vec<&Graph> = graphs.iter().collect();
        let c = closure_of(&refs).unwrap();
        let union_nodes: usize = graphs.iter().map(|g| g.node_count()).sum();
        assert!(c.graph.node_count() < union_nodes);
        // shared chains align perfectly
        assert_eq!(c.graph.node_count(), 5);
        assert_eq!(c.graph.edge_count(), 4);
    }

    #[test]
    fn conflicting_labels_become_wildcards() {
        let a = chain(2, 1, 5);
        let b = chain(2, 1, 6); // same nodes, different edge label
        let mut acc = ClosureGraph::from_graph(&a);
        closure_step(&mut acc, &b);
        assert_eq!(acc.graph.edge_count(), 1);
        assert_eq!(acc.graph.edge_label(vqi_graph::EdgeId(0)), WILDCARD_LABEL);
        assert!(covers(&acc, &a));
        assert!(covers(&acc, &b));
    }

    #[test]
    fn unaligned_structure_is_appended() {
        let a = chain(3, 1, 0);
        let b = chain(3, 9, 9); // nothing aligns (different labels)
        let mut acc = ClosureGraph::from_graph(&a);
        closure_step(&mut acc, &b);
        assert!(covers(&acc, &a));
        assert!(covers(&acc, &b));
        assert_eq!(acc.graph.node_count(), 6);
    }

    #[test]
    fn empty_list_has_no_closure() {
        assert!(closure_of(&[]).is_none());
    }

    #[test]
    fn edge_weights_track_contributions() {
        let a = chain(3, 1, 0); // edges: 0-1, 1-2
        let b = chain(2, 1, 0); // one edge, aligns with part of a
        let c = closure_of(&[&a, &b]).unwrap();
        assert_eq!(c.edge_weights.len(), c.graph.edge_count());
        let total: f64 = c.edge_weights.iter().sum();
        // 2 edges from a + 1 contribution from b
        assert_eq!(total, 3.0);
        assert!(c.edge_weights.contains(&2.0));
    }

    #[test]
    fn csg_build_records_members() {
        let graphs = [chain(3, 1, 0), star(3, 1, 0), cycle(3, 1, 0)];
        let csg = ClusterSummaryGraph::build(&[0, 2], |i| &graphs[i]).unwrap();
        assert_eq!(csg.members, vec![0, 2]);
        assert!(covers(&csg.closure, &graphs[0]));
        assert!(covers(&csg.closure, &graphs[2]));
    }

    #[test]
    fn alignment_prefers_matching_labels() {
        let mut a = Graph::new();
        let x = a.add_node(1);
        let y = a.add_node(2);
        a.add_edge(x, y, 0);
        let mut b = Graph::new();
        let p = b.add_node(2);
        let q = b.add_node(1);
        b.add_edge(p, q, 0);
        let m = align(&a, &b);
        assert_eq!(m[p.index()], Some(y));
        assert_eq!(m[q.index()], Some(x));
    }
}
