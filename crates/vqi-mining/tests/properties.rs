//! Property-based tests of the mining substrate.

use proptest::prelude::*;
use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
use vqi_graph::traversal::is_connected;
use vqi_graph::{Graph, NodeId};
use vqi_mining::closure::closure_of;
use vqi_mining::cluster::{k_medoids, leader, DistanceMatrix};
use vqi_mining::fct::FctIndex;
use vqi_mining::fst::{mine_frequent_subtrees, MineParams};

/// A small random connected labeled graph (tree plus extra edges).
fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
        let labels = proptest::collection::vec(0u32..3, n);
        let extra = proptest::collection::vec(proptest::bool::weighted(0.2), n * (n - 1) / 2);
        (labels, parents, extra).prop_map(move |(nl, ps, ex)| {
            let mut g = Graph::new();
            let nodes: Vec<NodeId> = nl.iter().map(|&l| g.add_node(l)).collect();
            for (i, p) in ps.iter().enumerate() {
                g.add_edge(nodes[i + 1], nodes[*p], 0);
            }
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if ex[idx] {
                        g.add_edge(nodes[i], nodes[j], 0);
                    }
                    idx += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mined frequent trees are trees, connected, meet support, and
    /// genuinely occur in each graph of their support set.
    #[test]
    fn mined_trees_are_valid(graphs in proptest::collection::vec(arb_connected(6), 2..5)) {
        let params = MineParams { min_support: 2, max_nodes: 3 };
        for ft in mine_frequent_subtrees(&graphs, params) {
            prop_assert!(is_connected(&ft.tree));
            prop_assert_eq!(ft.tree.edge_count() + 1, ft.tree.node_count());
            prop_assert!(ft.support() >= 2);
            for &gi in &ft.support_set {
                prop_assert!(is_subgraph_isomorphic(
                    &ft.tree, &graphs[gi], MatchOptions::default()
                ));
            }
        }
    }

    /// Raising min_support never grows the result set.
    #[test]
    fn support_threshold_is_monotone(graphs in proptest::collection::vec(arb_connected(5), 2..5)) {
        let lo = mine_frequent_subtrees(&graphs, MineParams { min_support: 1, max_nodes: 3 });
        let hi = mine_frequent_subtrees(&graphs, MineParams { min_support: 2, max_nodes: 3 });
        prop_assert!(hi.len() <= lo.len());
    }

    /// Incremental FCT maintenance matches a full rebuild after a random
    /// batch of additions.
    #[test]
    fn fct_incremental_matches_rebuild(
        initial in proptest::collection::vec(arb_connected(5), 2..4),
        added in proptest::collection::vec(arb_connected(5), 1..3),
    ) {
        let params = MineParams { min_support: 2, max_nodes: 3 };
        let mut all = initial.clone();
        all.extend(added.iter().cloned());

        let mut idx = FctIndex::build(&initial, params);
        let pairs: Vec<(usize, &Graph)> = added
            .iter()
            .enumerate()
            .map(|(i, g)| (initial.len() + i, g))
            .collect();
        idx.apply_batch(&pairs, &[], |i| &all[i]);

        let rebuilt = FctIndex::build(&all, params);
        let inc: Vec<_> = idx
            .frequent_trees()
            .iter()
            .map(|t| (t.tree.code.clone(), t.tree.support(), t.closed))
            .collect();
        let reb: Vec<_> = rebuilt
            .frequent_trees()
            .iter()
            .map(|t| (t.tree.code.clone(), t.tree.support(), t.closed))
            .collect();
        prop_assert_eq!(inc, reb);
    }

    /// Frequent subgraphs are connected, meet their support threshold,
    /// and genuinely occur in every member of their support set.
    #[test]
    fn frequent_subgraphs_are_valid(
        graphs in proptest::collection::vec(arb_connected(5), 2..5)
    ) {
        use vqi_mining::fsg::{mine_frequent_subgraphs, FsgParams};
        let mined = mine_frequent_subgraphs(
            &graphs,
            FsgParams {
                min_support: 2,
                max_nodes: 4,
                beam_width: 50,
            },
        );
        for m in &mined {
            prop_assert!(is_connected(&m.graph));
            prop_assert!(m.support() >= 2);
            for &gi in &m.support_set {
                prop_assert!(is_subgraph_isomorphic(
                    &m.graph, &graphs[gi], MatchOptions::default()
                ));
            }
        }
        // dedup by canonical code
        let mut codes: Vec<_> = mined.iter().map(|m| m.code.clone()).collect();
        let before = codes.len();
        codes.sort();
        codes.dedup();
        prop_assert_eq!(before, codes.len());
    }

    /// Closure graphs cover all constituents, with edge weights aligned.
    #[test]
    fn closure_invariants(graphs in proptest::collection::vec(arb_connected(6), 1..5)) {
        let refs: Vec<&Graph> = graphs.iter().collect();
        let c = closure_of(&refs).unwrap();
        prop_assert_eq!(c.edge_weights.len(), c.graph.edge_count());
        let total: f64 = c.edge_weights.iter().sum();
        let expect: usize = graphs.iter().map(|g| g.edge_count()).sum();
        prop_assert!((total - expect as f64).abs() < 1e-9,
            "weights {total} != contributed edges {expect}");
        for g in &graphs {
            prop_assert!(is_subgraph_isomorphic(
                g, &c.graph, MatchOptions::with_wildcards()
            ));
        }
    }

    /// Clusterings assign every item to a valid cluster whose
    /// representative is a member.
    #[test]
    fn clusterings_are_well_formed(
        points in proptest::collection::vec(0.0f64..10.0, 3..12),
        k in 1usize..4,
    ) {
        let d = DistanceMatrix::from_fn(points.len(), |i, j| (points[i] - points[j]).abs());
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        for c in [k_medoids(&d, k, 10, &mut rng), leader(&d, 1.0)] {
            prop_assert_eq!(c.assignments.len(), points.len());
            for &a in &c.assignments {
                prop_assert!(a < c.cluster_count());
            }
            let clusters = c.clusters();
            for (ci, members) in clusters.iter().enumerate() {
                let rep = c.representatives[ci];
                // a representative is either a member of its own cluster
                // or indistinguishable (distance 0) from the one it
                // landed in (possible with duplicate points)
                if !members.is_empty() && !members.contains(&rep) {
                    let landed = c.representatives[c.assignments[rep]];
                    prop_assert!(d.get(rep, landed) == 0.0);
                }
            }
            let total: usize = clusters.iter().map(|m| m.len()).sum();
            prop_assert_eq!(total, points.len());
        }
    }
}
