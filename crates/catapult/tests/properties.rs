//! Property-based tests of the CATAPULT pipeline over random molecule
//! collections.

use catapult::pipeline::{Catapult, CatapultConfig};
use proptest::prelude::*;
use vqi_core::budget::PatternBudget;
use vqi_core::repo::GraphCollection;
use vqi_core::score::pattern_coverage;
use vqi_core::selector::PatternSelector;
use vqi_datasets::{aids_like, MoleculeParams};
use vqi_graph::traversal::is_connected;

proptest! {
    // the pipeline is heavy; keep the case count modest
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any random collection and any sane budget, CATAPULT's output
    /// satisfies the selection contract: within budget, connected,
    /// deduplicated (by construction), and every pattern occurs.
    #[test]
    fn selection_contract(
        seed in 0u64..1_000,
        count in 10usize..40,
        k in 2usize..6,
        min_size in 4usize..6,
        span in 0usize..3,
    ) {
        let graphs = aids_like(MoleculeParams {
            count,
            seed,
            ..Default::default()
        });
        let col = GraphCollection::new(graphs);
        let budget = PatternBudget::new(k, min_size, min_size + span);
        let (set, state) = Catapult::new(CatapultConfig {
            seed,
            ..Default::default()
        })
        .run_with_state(&col, &budget);

        prop_assert!(set.len() <= k);
        for p in set.patterns() {
            prop_assert!(budget.admits(&p.graph), "size {}", p.size());
            prop_assert!(is_connected(&p.graph));
            prop_assert!(
                pattern_coverage(&p.graph, &col) > 0.0,
                "selected pattern occurs nowhere"
            );
        }
        // pipeline artifacts are consistent
        prop_assert_eq!(state.feature_vectors.len(), col.len());
        prop_assert_eq!(state.graph_ids.len(), col.len());
        let members: usize = state.csgs.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(members, col.len(), "CSGs must partition the collection");
    }

    /// Increasing the pattern budget never decreases achieved coverage.
    #[test]
    fn coverage_monotone_in_budget(seed in 0u64..200) {
        let graphs = aids_like(MoleculeParams {
            count: 25,
            seed,
            ..Default::default()
        });
        let col = GraphCollection::new(graphs);
        let repo = vqi_core::repo::GraphRepository::Collection(col);
        let small = Catapult::default().select(&repo, &PatternBudget::new(2, 4, 6));
        let large = Catapult::default().select(&repo, &PatternBudget::new(6, 4, 6));
        let cov = |set: &vqi_core::PatternSet| {
            let graphs: Vec<&vqi_graph::Graph> = set.graphs().collect();
            vqi_core::score::set_coverage(&graphs, &repo)
        };
        prop_assert!(cov(&large) >= cov(&small) - 1e-9);
    }
}
