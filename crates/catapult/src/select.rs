//! Greedy pattern selection driven by the pattern score.
//!
//! Each candidate is scored against the already-selected set:
//!
//! ```text
//! score(p | S) = cov_gain(p, S) / |D|
//!              + w_div · (1 − max_{q ∈ S} sim(p, q))
//!              − w_cog · cl(p)
//! ```
//!
//! where `cov_gain` is the number of live data graphs covered by `p` but
//! by no member of `S`. The best-scoring admissible candidate is selected
//! until the budget count is reached, no candidate remains, or every
//! remaining candidate scores non-positively with zero gain.
//!
//! The loop is *incremental*: each candidate carries a running
//! `max_{q ∈ S} sim(p, q)` that is updated only against the pattern
//! selected in the previous round, so each round costs one MCS call per
//! surviving candidate instead of `|S|` calls. Because
//! `max(a ∪ {b}) = max(max(a), b)` this is bit-for-bit identical to
//! recomputing the maximum over the whole selected set every round.
//! Each fold call passes the candidate's current `max_sim` as the
//! `min_useful` threshold, so the MCS kernel may bound-and-skip pairs
//! that cannot raise the maximum (see
//! [`vqi_graph::mcs::mcs_similarity_bounded`]) — again without changing
//! a single selection.

use crate::candidates::Candidate;
use vqi_core::bitset::BitSet;
use vqi_core::budget::PatternBudget;
use vqi_core::ctrl::{Budget, Degradation};
use vqi_core::pattern::{PatternKind, PatternSet};
use vqi_core::repo::GraphCollection;
use vqi_core::score::{cognitive_load, covers_cached_indexed, QualityWeights};
use vqi_graph::cache::mcs_similarity_cached_bounded;
use vqi_graph::canon::canonical_code;
use vqi_graph::index::GraphIndex;
use vqi_graph::par;
use vqi_runtime::{fault, VqiError};

/// A candidate plus its coverage bitset over the live graphs.
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// The candidate.
    pub candidate: Candidate,
    /// Bit `i` set = candidate covers `graph_ids[i]`.
    pub coverage: BitSet,
    /// Cached cognitive load.
    pub cognitive_load: f64,
}

/// Computes coverage bitsets for all candidates in parallel. Candidates
/// that occur in no live graph are dropped: closure graphs over-generalize
/// (the union of two members can contain subgraphs present in neither),
/// and a pattern that matches nothing would only mislead users.
pub fn score_candidates(
    candidates: Vec<Candidate>,
    collection: &GraphCollection,
) -> (Vec<ScoredCandidate>, Vec<usize>) {
    let graph_ids = collection.ids();
    // compile each live graph once; every candidate's matching run
    // reuses the same index
    let graphs: Vec<&vqi_graph::Graph> = graph_ids
        .iter()
        .map(|&id| collection.get(id).expect("live id"))
        .collect();
    let graph_indexes = GraphIndex::build_many(&graphs);
    let coverages: Vec<Option<BitSet>> = par::map(&candidates, |c| {
        let mut coverage = BitSet::new(graph_ids.len());
        for (pos, &id) in graph_ids.iter().enumerate() {
            let g = collection.get(id).expect("live id");
            let token = collection.token(id).expect("live id");
            if covers_cached_indexed(&c.graph, &c.code, g, token, &graph_indexes[pos]) {
                coverage.set(pos);
            }
        }
        coverage.any().then_some(coverage)
    });
    let scored: Vec<ScoredCandidate> = candidates
        .into_iter()
        .zip(coverages)
        .filter_map(|(c, coverage)| {
            let coverage = coverage?;
            let cl = cognitive_load(&c.graph);
            Some(ScoredCandidate {
                candidate: c,
                coverage,
                cognitive_load: cl,
            })
        })
        .collect();
    (scored, graph_ids)
}

/// Greedy selection of up to `budget.count` patterns from scored
/// candidates.
pub fn greedy_select(
    candidates: Vec<ScoredCandidate>,
    n_graphs: usize,
    budget: &PatternBudget,
    weights: QualityWeights,
) -> PatternSet {
    // an unlimited budget cannot trip and absorbed notes are dropped,
    // so the ctrl body degenerates to the plain greedy loop
    let mut deg = Degradation::new();
    greedy_select_ctrl(
        candidates,
        n_graphs,
        budget,
        weights,
        &Budget::unlimited(),
        &mut deg,
    )
    .unwrap_or_default()
}

/// Budget-aware greedy selection — the **anytime** loop.
///
/// Each round first checks `ctrl`; a tripped deadline/cancel keeps the
/// patterns selected so far (recorded in `deg`) instead of discarding
/// the run. Non-finite candidate scores (injected by the fault harness
/// or produced by pathological weights) are sanitized to `-∞` so a NaN
/// loses every comparison rather than winning the argmax under
/// `total_cmp`, and the sanitization is noted in `deg`. Under an
/// unlimited budget with no fault plan this is bit-identical to the
/// historical greedy loop.
pub fn greedy_select_ctrl(
    mut candidates: Vec<ScoredCandidate>,
    n_graphs: usize,
    budget: &PatternBudget,
    weights: QualityWeights,
    ctrl: &Budget,
    deg: &mut Degradation,
) -> Result<PatternSet, VqiError> {
    let mut set = PatternSet::new();
    if n_graphs == 0 {
        return Ok(set);
    }
    let mut covered = BitSet::new(n_graphs);
    // running max similarity of candidate i to the selected set; 0.0
    // while the set is empty so `1.0 - max_sim` reproduces the
    // full-diversity score of the first round
    let mut max_sim: Vec<f64> = vec![0.0; candidates.len()];
    // one meter for the whole selection: with a tick quota of N the
    // loop degrades after exactly N rounds, at any thread count
    let mut meter = ctrl.meter("catapult.greedy");
    while set.len() < budget.count && !candidates.is_empty() {
        let round = set.len() as u64;
        if let Err(e) = ctrl.check("catapult.greedy").and_then(|()| meter.tick()) {
            // anytime: keep what is already selected
            deg.absorb(ctrl, e)?;
            break;
        }
        if fault::maybe_timeout("catapult.greedy", round) {
            deg.absorb(
                ctrl,
                VqiError::DeadlineExceeded {
                    stage: "catapult.greedy".into(),
                },
            )?;
            break;
        }
        let mut scores: Vec<f64> = par::map_range(candidates.len(), |i| {
            let c = &candidates[i];
            let gain = c.coverage.count_and_not(&covered) as f64 / n_graphs as f64;
            let div = 1.0 - max_sim[i];
            gain + weights.diversity * div - weights.cognitive * c.cognitive_load
        });
        for (i, s) in scores.iter_mut().enumerate() {
            // fault site keyed by (round, position) — both are pure
            // functions of the input, never of the thread count
            *s = fault::nan_score("catapult.greedy.score", (round << 32) | i as u64, *s);
            if !s.is_finite() {
                deg.note(
                    "catapult.greedy",
                    format!("non-finite score sanitized in round {round}"),
                );
                *s = f64::NEG_INFINITY;
            }
        }
        let (best_idx, &best_score) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("candidates nonempty");
        // stop when the best candidate neither covers anything new nor
        // improves the set score
        let best_gain = candidates[best_idx].coverage.any_and_not(&covered);
        if best_score <= 0.0 && !best_gain {
            break;
        }
        let chosen = candidates.swap_remove(best_idx);
        max_sim.swap_remove(best_idx);
        covered.union_with(&chosen.coverage);
        let provenance = format!("catapult:csg{}", chosen.candidate.csg_index);
        if set
            .insert(
                chosen.candidate.graph.clone(),
                PatternKind::Canned,
                provenance,
            )
            .is_ok()
        {
            // fold the newly selected pattern into every survivor's
            // running maximum — the only MCS work of the round
            let new_graph = chosen.candidate.graph;
            let new_code = canonical_code(&new_graph);
            vqi_observe::incr("catapult.greedy.sim_calls", candidates.len() as u64);
            // each survivor's current max_sim is the usefulness
            // threshold: a similarity at or below it cannot change the
            // fold, so the kernel may bound-and-skip
            let sims: Vec<f64> = par::map_range(candidates.len(), |i| {
                let c = &candidates[i];
                mcs_similarity_cached_bounded(
                    &c.candidate.graph,
                    &c.candidate.code,
                    &new_graph,
                    &new_code,
                    max_sim[i],
                )
            });
            for (m, s) in max_sim.iter_mut().zip(sims) {
                *m = f64::max(*m, s);
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::Candidate;
    use vqi_core::repo::GraphCollection;
    use vqi_graph::canon::canonical_code;
    use vqi_graph::generate::{chain, clique, cycle, star};
    use vqi_graph::mcs::mcs_similarity;
    use vqi_graph::Graph;

    fn cand(g: Graph) -> Candidate {
        Candidate {
            code: canonical_code(&g),
            graph: g,
            csg_index: 0,
        }
    }

    fn collection() -> GraphCollection {
        GraphCollection::new(vec![
            chain(6, 1, 0),
            chain(5, 1, 0),
            cycle(5, 2, 0),
            star(5, 3, 0),
        ])
    }

    /// The pre-incremental greedy loop: full per-round recomputation of
    /// every candidate's max similarity to the selected set. Kept as the
    /// reference the incremental implementation must match exactly.
    fn reference_greedy(
        mut candidates: Vec<ScoredCandidate>,
        n_graphs: usize,
        budget: &PatternBudget,
        weights: QualityWeights,
    ) -> PatternSet {
        let mut set = PatternSet::new();
        if n_graphs == 0 {
            return set;
        }
        let mut covered = vec![false; n_graphs];
        let mut selected_graphs: Vec<Graph> = Vec::new();
        while set.len() < budget.count && !candidates.is_empty() {
            let scores: Vec<f64> = candidates
                .iter()
                .map(|c| {
                    let gain = (0..n_graphs)
                        .filter(|&i| c.coverage.get(i) && !covered[i])
                        .count() as f64
                        / n_graphs as f64;
                    let div = if selected_graphs.is_empty() {
                        1.0
                    } else {
                        1.0 - selected_graphs
                            .iter()
                            .map(|q| mcs_similarity(&c.candidate.graph, q))
                            .fold(0.0f64, f64::max)
                    };
                    gain + weights.diversity * div - weights.cognitive * c.cognitive_load
                })
                .collect();
            let (best_idx, &best_score) = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("candidates nonempty");
            let best_gain =
                (0..n_graphs).any(|i| candidates[best_idx].coverage.get(i) && !covered[i]);
            if best_score <= 0.0 && !best_gain {
                break;
            }
            let chosen = candidates.swap_remove(best_idx);
            for i in chosen.coverage.ones() {
                covered[i] = true;
            }
            let provenance = format!("catapult:csg{}", chosen.candidate.csg_index);
            if set
                .insert(
                    chosen.candidate.graph.clone(),
                    PatternKind::Canned,
                    provenance,
                )
                .is_ok()
            {
                selected_graphs.push(chosen.candidate.graph);
            }
        }
        set
    }

    #[test]
    fn greedy_prefers_coverage() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        // candidate A covers the two chains; candidate B covers nothing
        let a = cand(chain(4, 1, 0));
        let b = cand(clique(4, 9, 9));
        let (scored, ids) = score_candidates(vec![a, b], &col);
        let set = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::new(1, 4, 6),
            Default::default(),
        );
        assert_eq!(set.len(), 1);
        assert!(set.contains_isomorphic(&chain(4, 1, 0)));
    }

    #[test]
    fn greedy_builds_diverse_sets() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let cands = vec![
            cand(chain(4, 1, 0)), // covers chains
            cand(chain(5, 1, 0)), // also covers chains (redundant)
            cand(cycle(4, 2, 0)), // covers nothing (cycle5 has no c4... non-induced: C4 ⊄ C5)
            cand(star(4, 3, 0)),  // covers the star
        ];
        let (scored, ids) = score_candidates(cands, &col);
        let set = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::new(2, 4, 6),
            Default::default(),
        );
        assert_eq!(set.len(), 2);
        // the redundant second chain must not be picked before the star
        assert!(set.contains_isomorphic(&star(4, 3, 0)));
    }

    #[test]
    fn empty_inputs() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(vec![]);
        let (scored, ids) = score_candidates(vec![], &col);
        let set = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::default(),
            Default::default(),
        );
        assert!(set.is_empty());
    }

    #[test]
    fn budget_count_limits_selection() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let cands = vec![
            cand(chain(4, 1, 0)),
            cand(cycle(4, 2, 0)),
            cand(star(4, 3, 0)),
        ];
        let (scored, ids) = score_candidates(cands, &col);
        let set = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::new(1, 4, 6),
            Default::default(),
        );
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn incremental_greedy_matches_reference() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(vec![
            chain(6, 1, 0),
            chain(5, 1, 0),
            cycle(5, 2, 0),
            cycle(6, 2, 0),
            star(5, 3, 0),
            star(6, 3, 0),
            clique(4, 2, 0),
        ]);
        let cands = vec![
            cand(chain(4, 1, 0)),
            cand(chain(5, 1, 0)),
            cand(cycle(5, 2, 0)),
            cand(star(4, 3, 0)),
            cand(star(5, 3, 0)),
            cand(clique(3, 2, 0)),
            cand(clique(4, 2, 0)),
        ];
        for count in 1..=5 {
            let (scored, ids) = score_candidates(cands.clone(), &col);
            let budget = vqi_core::PatternBudget::new(count, 3, 7);
            let incremental = greedy_select(scored.clone(), ids.len(), &budget, Default::default());
            let reference = reference_greedy(scored, ids.len(), &budget, Default::default());
            assert_eq!(incremental.len(), reference.len(), "count {count}");
            for p in reference.patterns() {
                assert!(
                    incremental.contains_isomorphic(&p.graph),
                    "count {count}: reference pick missing from incremental set"
                );
            }
        }
    }

    #[test]
    fn bound_and_skip_changes_no_selection() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(vec![
            chain(6, 1, 0),
            chain(5, 1, 0),
            cycle(5, 2, 0),
            cycle(6, 2, 0),
            star(5, 3, 0),
            star(6, 3, 0),
            clique(4, 2, 0),
        ]);
        let cands = vec![
            cand(chain(4, 1, 0)),
            cand(chain(5, 1, 0)),
            cand(cycle(5, 2, 0)),
            cand(star(4, 3, 0)),
            cand(star(5, 3, 0)),
            cand(clique(3, 2, 0)),
            cand(clique(4, 2, 0)),
        ];
        for count in 1..=5 {
            let budget = vqi_core::PatternBudget::new(count, 3, 7);
            let (scored, ids) = score_candidates(cands.clone(), &col);
            vqi_graph::mcs::set_bound_skip_enabled(true);
            let with_skip = greedy_select(scored.clone(), ids.len(), &budget, Default::default());
            vqi_graph::mcs::set_bound_skip_enabled(false);
            let without = greedy_select(scored, ids.len(), &budget, Default::default());
            vqi_graph::mcs::set_bound_skip_enabled(true);
            assert_eq!(with_skip.len(), without.len(), "count {count}");
            for p in without.patterns() {
                assert!(
                    with_skip.contains_isomorphic(&p.graph),
                    "count {count}: bound-and-skip changed a greedy pick"
                );
            }
        }
    }

    #[test]
    fn non_finite_scores_do_not_panic_and_pick_deterministically() {
        let _guard = crate::fault_test_lock();
        let col = collection();
        let cands = vec![
            cand(chain(4, 1, 0)),
            cand(star(4, 3, 0)),
            cand(chain(5, 1, 0)),
        ];
        // infinite weights make every score inf - inf = NaN after the
        // first pick; total_cmp orders NaN deterministically instead of
        // panicking like the old partial_cmp().expect(...)
        let weights = QualityWeights {
            diversity: f64::INFINITY,
            cognitive: f64::INFINITY,
        };
        let (scored, ids) = score_candidates(cands, &col);
        let a = greedy_select(
            scored.clone(),
            ids.len(),
            &vqi_core::PatternBudget::new(2, 3, 6),
            weights,
        );
        let b = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::new(2, 3, 6),
            weights,
        );
        assert_eq!(a.len(), b.len());
        for p in a.patterns() {
            assert!(b.contains_isomorphic(&p.graph));
        }
    }

    #[test]
    fn tied_scores_pick_deterministically() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(vec![chain(5, 1, 0), chain(6, 1, 0)]);
        // two isomorphic-score candidates: identical coverage, identical
        // cognitive load — the tie must break the same way every run
        let cands = vec![cand(chain(4, 1, 0)), cand(chain(4, 1, 0))];
        let (scored, ids) = score_candidates(cands, &col);
        let a = greedy_select(
            scored.clone(),
            ids.len(),
            &vqi_core::PatternBudget::new(1, 3, 6),
            Default::default(),
        );
        let b = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::new(1, 3, 6),
            Default::default(),
        );
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
