//! Greedy pattern selection driven by the pattern score.
//!
//! Each candidate is scored against the already-selected set:
//!
//! ```text
//! score(p | S) = cov_gain(p, S) / |D|
//!              + w_div · (1 − max_{q ∈ S} sim(p, q))
//!              − w_cog · cl(p)
//! ```
//!
//! where `cov_gain` is the number of live data graphs covered by `p` but
//! by no member of `S`. The best-scoring admissible candidate is selected
//! until the budget count is reached, no candidate remains, or every
//! remaining candidate scores non-positively with zero gain.

use crate::candidates::Candidate;
use rayon::prelude::*;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::{PatternKind, PatternSet};
use vqi_core::repo::GraphCollection;
use vqi_core::score::{cognitive_load, covers, QualityWeights};
use vqi_graph::mcs::mcs_similarity;

/// A candidate plus its coverage bitset over the live graphs.
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// The candidate.
    pub candidate: Candidate,
    /// `coverage[i]` = candidate covers `graph_ids[i]`.
    pub coverage: Vec<bool>,
    /// Cached cognitive load.
    pub cognitive_load: f64,
}

/// Computes coverage bitsets for all candidates in parallel. Candidates
/// that occur in no live graph are dropped: closure graphs over-generalize
/// (the union of two members can contain subgraphs present in neither),
/// and a pattern that matches nothing would only mislead users.
pub fn score_candidates(
    candidates: Vec<Candidate>,
    collection: &GraphCollection,
) -> (Vec<ScoredCandidate>, Vec<usize>) {
    let graph_ids = collection.ids();
    let scored: Vec<ScoredCandidate> = candidates
        .into_par_iter()
        .filter_map(|c| {
            let coverage: Vec<bool> = graph_ids
                .iter()
                .map(|&id| covers(&c.graph, collection.get(id).expect("live id")))
                .collect();
            if !coverage.iter().any(|&b| b) {
                return None;
            }
            let cl = cognitive_load(&c.graph);
            Some(ScoredCandidate {
                candidate: c,
                coverage,
                cognitive_load: cl,
            })
        })
        .collect();
    (scored, graph_ids)
}

/// Greedy selection of up to `budget.count` patterns from scored
/// candidates.
pub fn greedy_select(
    mut candidates: Vec<ScoredCandidate>,
    n_graphs: usize,
    budget: &PatternBudget,
    weights: QualityWeights,
) -> PatternSet {
    let mut set = PatternSet::new();
    if n_graphs == 0 {
        return set;
    }
    let mut covered = vec![false; n_graphs];
    let mut selected_graphs: Vec<vqi_graph::Graph> = Vec::new();
    while set.len() < budget.count && !candidates.is_empty() {
        let scores: Vec<f64> = candidates
            .par_iter()
            .map(|c| {
                let gain = c
                    .coverage
                    .iter()
                    .zip(covered.iter())
                    .filter(|(&cv, &done)| cv && !done)
                    .count() as f64
                    / n_graphs as f64;
                let div = if selected_graphs.is_empty() {
                    1.0
                } else {
                    1.0 - selected_graphs
                        .iter()
                        .map(|q| mcs_similarity(&c.candidate.graph, q))
                        .fold(0.0f64, f64::max)
                };
                gain + weights.diversity * div - weights.cognitive * c.cognitive_load
            })
            .collect();
        let (best_idx, &best_score) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .expect("candidates nonempty");
        // stop when the best candidate neither covers anything new nor
        // improves the set score
        let best_gain = candidates[best_idx]
            .coverage
            .iter()
            .zip(covered.iter())
            .any(|(&cv, &done)| cv && !done);
        if best_score <= 0.0 && !best_gain {
            break;
        }
        let chosen = candidates.swap_remove(best_idx);
        for (i, &cv) in chosen.coverage.iter().enumerate() {
            if cv {
                covered[i] = true;
            }
        }
        let provenance = format!("catapult:csg{}", chosen.candidate.csg_index);
        if set
            .insert(
                chosen.candidate.graph.clone(),
                PatternKind::Canned,
                provenance,
            )
            .is_ok()
        {
            selected_graphs.push(chosen.candidate.graph);
        }
        let _ = best_score;
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::Candidate;
    use vqi_core::repo::GraphCollection;
    use vqi_graph::canon::canonical_code;
    use vqi_graph::generate::{chain, clique, cycle, star};
    use vqi_graph::Graph;

    fn cand(g: Graph) -> Candidate {
        Candidate {
            code: canonical_code(&g),
            graph: g,
            csg_index: 0,
        }
    }

    fn collection() -> GraphCollection {
        GraphCollection::new(vec![
            chain(6, 1, 0),
            chain(5, 1, 0),
            cycle(5, 2, 0),
            star(5, 3, 0),
        ])
    }

    #[test]
    fn greedy_prefers_coverage() {
        let col = collection();
        // candidate A covers the two chains; candidate B covers nothing
        let a = cand(chain(4, 1, 0));
        let b = cand(clique(4, 9, 9));
        let (scored, ids) = score_candidates(vec![a, b], &col);
        let set = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::new(1, 4, 6),
            Default::default(),
        );
        assert_eq!(set.len(), 1);
        assert!(set.contains_isomorphic(&chain(4, 1, 0)));
    }

    #[test]
    fn greedy_builds_diverse_sets() {
        let col = collection();
        let cands = vec![
            cand(chain(4, 1, 0)), // covers chains
            cand(chain(5, 1, 0)), // also covers chains (redundant)
            cand(cycle(4, 2, 0)), // covers nothing (cycle5 has no c4... non-induced: C4 ⊄ C5)
            cand(star(4, 3, 0)),  // covers the star
        ];
        let (scored, ids) = score_candidates(cands, &col);
        let set = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::new(2, 4, 6),
            Default::default(),
        );
        assert_eq!(set.len(), 2);
        // the redundant second chain must not be picked before the star
        assert!(set.contains_isomorphic(&star(4, 3, 0)));
    }

    #[test]
    fn empty_inputs() {
        let col = GraphCollection::new(vec![]);
        let (scored, ids) = score_candidates(vec![], &col);
        let set = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::default(),
            Default::default(),
        );
        assert!(set.is_empty());
    }

    #[test]
    fn budget_count_limits_selection() {
        let col = collection();
        let cands = vec![
            cand(chain(4, 1, 0)),
            cand(cycle(4, 2, 0)),
            cand(star(4, 3, 0)),
        ];
        let (scored, ids) = score_candidates(cands, &col);
        let set = greedy_select(
            scored,
            ids.len(),
            &vqi_core::PatternBudget::new(1, 4, 6),
            Default::default(),
        );
        assert_eq!(set.len(), 1);
    }
}
