//! Candidate-pattern generation by weighted random walks over CSGs.

use rand::seq::SliceRandom;
use rand::Rng;
use vqi_core::budget::PatternBudget;
use vqi_graph::canon::{canonical_codes, CanonicalCode};
use vqi_graph::traversal::is_connected;
use vqi_graph::{Graph, NodeId};
use vqi_mining::closure::ClusterSummaryGraph;

/// A candidate pattern with its origin.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The candidate pattern graph (a connected subgraph of a CSG).
    pub graph: Graph,
    /// Canonical code for dedup.
    pub code: CanonicalCode,
    /// Index of the CSG it came from.
    pub csg_index: usize,
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WalkParams {
    /// Number of walks attempted per CSG.
    pub walks_per_csg: usize,
    /// Maximum walk steps before giving up on reaching the target size.
    pub max_steps: usize,
}

impl Default for WalkParams {
    fn default() -> Self {
        WalkParams {
            walks_per_csg: 60,
            max_steps: 64,
        }
    }
}

/// Runs one weighted random walk on `csg` until `target` distinct nodes
/// are visited (or the step budget runs out) and returns the induced
/// subgraph on the visited nodes, if connected and budget-admissible.
fn walk_candidate<R: Rng>(
    csg: &ClusterSummaryGraph,
    target: usize,
    max_steps: usize,
    rng: &mut R,
) -> Option<Graph> {
    let g = &csg.closure.graph;
    if g.node_count() < target || target == 0 {
        return None;
    }
    let nodes: Vec<NodeId> = g.nodes().collect();
    // start biased toward heavy nodes: pick the endpoint of a weighted edge
    let start = if g.edge_count() > 0 {
        let total: f64 = csg.closure.edge_weights.iter().sum();
        let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut chosen = NodeId(0);
        for e in g.edges() {
            let w = csg.closure.edge_weights[e.index()];
            if x < w {
                let (u, v) = g.endpoints(e);
                chosen = if rng.gen_bool(0.5) { u } else { v };
                break;
            }
            x -= w;
        }
        chosen
    } else {
        *nodes.choose(rng)?
    };
    let mut visited = vec![false; g.node_count()];
    let mut order = vec![start];
    visited[start.index()] = true;
    let mut cur = start;
    let weight = |e: vqi_graph::EdgeId| csg.closure.edge_weights[e.index()];
    for _ in 0..max_steps {
        if order.len() == target {
            break;
        }
        match vqi_graph::traversal::weighted_step(g, cur, &weight, rng) {
            Some((next, _)) => {
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    order.push(next);
                }
                cur = next;
            }
            None => break,
        }
    }
    if order.len() != target {
        return None;
    }
    let (sub, _) = g.induced_subgraph(&order);
    if is_connected(&sub) {
        Some(sub)
    } else {
        None
    }
}

/// Generates deduplicated candidates from all CSGs.
///
/// The walks themselves stay sequential — they consume the caller's RNG
/// stream, and that stream is part of the deterministic contract. The
/// expensive step, canonicalization, is batched over the whole accepted
/// walk set via [`canonical_codes`] (parallel, order-stable), and the
/// dedup then runs in generation order — so the output is identical to
/// canonicalizing-and-deduplicating after each walk.
pub fn generate_candidates<R: Rng>(
    csgs: &[ClusterSummaryGraph],
    budget: &PatternBudget,
    params: WalkParams,
    rng: &mut R,
) -> Vec<Candidate> {
    let mut subs: Vec<Graph> = Vec::new();
    let mut origins: Vec<usize> = Vec::new();
    for (ci, csg) in csgs.iter().enumerate() {
        for _ in 0..params.walks_per_csg {
            let target = rng.gen_range(budget.min_size..=budget.max_size);
            if let Some(sub) = walk_candidate(csg, target, params.max_steps, rng) {
                if budget.admits(&sub) {
                    subs.push(sub);
                    origins.push(ci);
                }
            }
        }
    }
    let codes = canonical_codes(&subs);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for ((sub, code), ci) in subs.into_iter().zip(codes).zip(origins) {
        if seen.insert(code.clone()) {
            out.push(Candidate {
                graph: sub,
                code,
                csg_index: ci,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vqi_graph::generate::{chain, cycle, star};
    use vqi_mining::closure::ClusterSummaryGraph;

    fn sample_csgs() -> Vec<ClusterSummaryGraph> {
        let graphs = [chain(8, 1, 0), cycle(7, 1, 0), star(7, 1, 0)];
        vec![
            ClusterSummaryGraph::build(&[0, 1], |i| &graphs[i]).unwrap(),
            ClusterSummaryGraph::build(&[2], |i| &graphs[i]).unwrap(),
        ]
    }

    #[test]
    fn candidates_are_connected_and_sized() {
        let csgs = sample_csgs();
        let budget = PatternBudget::new(5, 4, 6);
        let mut rng = SmallRng::seed_from_u64(11);
        let cands = generate_candidates(&csgs, &budget, WalkParams::default(), &mut rng);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(is_connected(&c.graph));
            assert!(budget.admits(&c.graph), "size {}", c.graph.node_count());
            assert!(c.csg_index < csgs.len());
        }
    }

    #[test]
    fn candidates_are_deduplicated() {
        let csgs = sample_csgs();
        let budget = PatternBudget::new(5, 4, 5);
        let mut rng = SmallRng::seed_from_u64(2);
        let cands = generate_candidates(&csgs, &budget, WalkParams::default(), &mut rng);
        let mut codes: Vec<&CanonicalCode> = cands.iter().map(|c| &c.code).collect();
        let before = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(before, codes.len());
    }

    #[test]
    fn too_small_csg_yields_nothing() {
        let graphs = [chain(2, 1, 0)];
        let csgs = vec![ClusterSummaryGraph::build(&[0], |i| &graphs[i]).unwrap()];
        let budget = PatternBudget::new(5, 4, 6);
        let mut rng = SmallRng::seed_from_u64(3);
        let cands = generate_candidates(&csgs, &budget, WalkParams::default(), &mut rng);
        assert!(cands.is_empty());
    }
}
