//! The end-to-end CATAPULT pipeline.

use crate::candidates::{generate_candidates, WalkParams};
use crate::select::{greedy_select_ctrl, score_candidates};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vqi_core::budget::PatternBudget;
use vqi_core::ctrl::{run_stage, Budget, Degradation, PipelineOutcome};
use vqi_core::pattern::PatternSet;
use vqi_core::repo::{GraphCollection, GraphRepository};
use vqi_core::score::QualityWeights;
use vqi_core::selector::PatternSelector;
use vqi_mining::closure::ClusterSummaryGraph;
use vqi_mining::cluster::{k_medoids, Clustering, DistanceMatrix};
use vqi_mining::features::{cosine_distance, FeatureSpace};
use vqi_mining::fst::{mine_frequent_subtrees, MineParams};
use vqi_runtime::{error::panic_reason, fault, VqiError};

/// CATAPULT configuration.
#[derive(Debug, Clone, Copy)]
pub struct CatapultConfig {
    /// Minimum support for frequent-subtree features, as a fraction of
    /// the collection size.
    pub min_support_frac: f64,
    /// Maximum feature-tree size in nodes.
    pub max_feature_nodes: usize,
    /// Number of clusters; `None` picks `⌈√(n/2)⌉`.
    pub clusters: Option<usize>,
    /// k-medoids iterations.
    pub cluster_iters: usize,
    /// Random-walk candidate generation parameters.
    pub walks: WalkParams,
    /// Score weights.
    pub weights: QualityWeights,
    /// RNG seed (whole pipeline is deterministic given the seed).
    pub seed: u64,
}

impl Default for CatapultConfig {
    fn default() -> Self {
        CatapultConfig {
            min_support_frac: 0.1,
            max_feature_nodes: 4,
            clusters: None,
            cluster_iters: 15,
            walks: WalkParams::default(),
            weights: QualityWeights::default(),
            seed: 0xCA7A,
        }
    }
}

/// Intermediate pipeline artifacts, kept so MIDAS can maintain them.
#[derive(Debug)]
pub struct CatapultState {
    /// Feature space over mined frequent subtrees.
    pub feature_space: FeatureSpace,
    /// Feature vectors of the live graphs, aligned with `graph_ids`.
    pub feature_vectors: Vec<Vec<f64>>,
    /// The live graph ids the clustering refers to.
    pub graph_ids: Vec<usize>,
    /// The clustering over positions of `graph_ids`.
    pub clustering: Clustering,
    /// One CSG per non-empty cluster.
    pub csgs: Vec<ClusterSummaryGraph>,
}

/// The CATAPULT selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Catapult {
    /// Configuration.
    pub config: CatapultConfig,
}

impl Catapult {
    /// A selector with the given configuration.
    pub fn new(config: CatapultConfig) -> Self {
        Catapult { config }
    }

    /// Runs the pipeline on a collection, returning the selected patterns
    /// and all intermediate state.
    pub fn run_with_state(
        &self,
        collection: &GraphCollection,
        budget: &PatternBudget,
    ) -> (PatternSet, CatapultState) {
        // an unlimited budget cannot trip a stage, so the shared body
        // degenerates to the historical plain pipeline bit for bit
        let mut deg = Degradation::new();
        match self.run_impl(collection, budget, &Budget::unlimited(), &mut deg) {
            Ok(v) => v,
            // unreachable without fail-fast; keep a benign fallback
            Err(_) => (PatternSet::new(), Self::empty_state(collection.ids())),
        }
    }

    /// Budget-aware pipeline: same stages as [`Catapult::run_with_state`],
    /// but every stage honors `ctrl` (deadline, cancel flag, tick
    /// quotas) and is panic-isolated. When nothing trips, the outcome is
    /// `Complete` and bit-identical to the plain entry point; when a
    /// stage is cut, the pipeline keeps everything selected so far
    /// (anytime semantics) and reports the cut stages. `Err` is returned
    /// only under a fail-fast budget.
    pub fn run_with_state_ctrl(
        &self,
        collection: &GraphCollection,
        budget: &PatternBudget,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<(PatternSet, CatapultState)>, VqiError> {
        let mut deg = Degradation::new();
        let value = self.run_impl(collection, budget, ctrl, &mut deg)?;
        Ok(deg.finish(value))
    }

    /// Budget-aware selection without the intermediate state.
    pub fn run_ctrl(
        &self,
        collection: &GraphCollection,
        budget: &PatternBudget,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<PatternSet>, VqiError> {
        let out = self.run_with_state_ctrl(collection, budget, ctrl)?;
        Ok(PipelineOutcome {
            value: out.value.0,
            completeness: out.completeness,
        })
    }

    /// The state a degraded run reports when it had to stop before the
    /// clustering existed.
    fn empty_state(graph_ids: Vec<usize>) -> CatapultState {
        CatapultState {
            feature_space: FeatureSpace::with_idf(Vec::new(), &[], 1),
            feature_vectors: Vec::new(),
            graph_ids,
            clustering: Clustering {
                assignments: Vec::new(),
                representatives: Vec::new(),
            },
            csgs: Vec::new(),
        }
    }

    /// Shared stage body of the plain and budget-aware pipelines.
    fn run_impl(
        &self,
        collection: &GraphCollection,
        budget: &PatternBudget,
        ctrl: &Budget,
        deg: &mut Degradation,
    ) -> Result<(PatternSet, CatapultState), VqiError> {
        let _run = vqi_observe::run("catapult.run");
        let cfg = &self.config;
        let graph_ids = collection.ids();
        let n = graph_ids.len();
        let graphs: Vec<vqi_graph::Graph> = graph_ids
            .iter()
            .map(|&id| collection.get(id).expect("live id").clone())
            .collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // step 0: mine features
        let mined = run_stage(ctrl, "catapult.mine", || {
            let _s = vqi_observe::span("catapult.mine");
            fault::maybe_panic("catapult.mine", 0);
            let min_support = ((cfg.min_support_frac * n as f64).ceil() as usize).max(1);
            let mined = mine_frequent_subtrees(
                &graphs,
                MineParams {
                    min_support,
                    max_nodes: cfg.max_feature_nodes,
                },
            );
            let dfs: Vec<usize> = mined.iter().map(|t| t.support()).collect();
            let trees: Vec<vqi_graph::Graph> = mined.into_iter().map(|t| t.tree).collect();
            vqi_observe::incr("catapult.mine.features", trees.len() as u64);
            let feature_space = FeatureSpace::with_idf(trees, &dfs, n.max(1));
            let feature_vectors = feature_space.vectors(&graphs);
            (feature_space, feature_vectors)
        });
        let (feature_space, feature_vectors) = match mined {
            Ok(v) => v,
            Err(e) => {
                deg.absorb(ctrl, e)?;
                return Ok((PatternSet::new(), Self::empty_state(graph_ids)));
            }
        };

        // step 1: cluster by feature distance
        let clustered = run_stage(ctrl, "catapult.cluster", || {
            let _s = vqi_observe::span("catapult.cluster");
            fault::maybe_panic("catapult.cluster", 0);
            let k = cfg
                .clusters
                .unwrap_or_else(|| ((n as f64 / 2.0).sqrt().ceil() as usize).max(1));
            let dist = DistanceMatrix::from_fn(n, |i, j| {
                cosine_distance(&feature_vectors[i], &feature_vectors[j])
            });
            let clustering = k_medoids(&dist, k, cfg.cluster_iters, &mut rng);
            vqi_observe::incr(
                "catapult.cluster.nonempty",
                clustering
                    .clusters()
                    .iter()
                    .filter(|m| !m.is_empty())
                    .count() as u64,
            );
            clustering
        });
        let clustering = match clustered {
            Ok(c) => c,
            Err(e) => {
                deg.absorb(ctrl, e)?;
                let mut state = Self::empty_state(graph_ids);
                state.feature_space = feature_space;
                state.feature_vectors = feature_vectors;
                return Ok((PatternSet::new(), state));
            }
        };

        // step 2: summarize clusters into CSGs — isolated per cluster,
        // so one poisoned cluster costs its own summary, not the run
        let csgs = {
            let _s = vqi_observe::span("catapult.csg_closure");
            let mut csgs = Vec::new();
            for (ci, members) in clustering.clusters().iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                if let Err(e) = ctrl.check("catapult.csg") {
                    deg.absorb(ctrl, e)?;
                    break;
                }
                let member_ids: Vec<usize> = members.iter().map(|&pos| graph_ids[pos]).collect();
                let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    fault::maybe_panic("catapult.csg", ci as u64);
                    ClusterSummaryGraph::build(&member_ids, |id| {
                        collection.get(id).expect("live id")
                    })
                }));
                match built {
                    Ok(Some(csg)) => csgs.push(csg),
                    Ok(None) => {}
                    Err(payload) => deg.absorb(
                        ctrl,
                        VqiError::Panic {
                            stage: "catapult.csg".into(),
                            reason: panic_reason(payload.as_ref()),
                        },
                    )?,
                }
            }
            vqi_observe::incr("catapult.csg.built", csgs.len() as u64);
            csgs
        };

        // step 3: walk candidates, then greedy selection by pattern score
        let walked = run_stage(ctrl, "catapult.walk", || {
            let _s = vqi_observe::span("catapult.walk");
            fault::maybe_panic("catapult.walk", 0);
            let cands = generate_candidates(&csgs, budget, cfg.walks, &mut rng);
            vqi_observe::incr("catapult.walk.candidates", cands.len() as u64);
            let (scored, ids) = score_candidates(cands, collection);
            vqi_observe::incr("catapult.walk.scored", scored.len() as u64);
            (scored, ids)
        });
        let (scored, ids) = match walked {
            Ok(v) => v,
            Err(e) => {
                deg.absorb(ctrl, e)?;
                (Vec::new(), Vec::new())
            }
        };
        let patterns = {
            let _s = vqi_observe::span("catapult.greedy");
            let patterns = greedy_select_ctrl(scored, ids.len(), budget, cfg.weights, ctrl, deg)?;
            vqi_observe::incr("catapult.greedy.selected", patterns.len() as u64);
            patterns
        };

        Ok((
            patterns,
            CatapultState {
                feature_space,
                feature_vectors,
                graph_ids,
                clustering,
                csgs,
            },
        ))
    }
}

impl Catapult {
    /// Applies the clustering-based pipeline to a large network by
    /// decomposing it into ego-networks (radius-1 induced neighborhoods,
    /// capped at `EGO_CAP` neighbors) and treating those as the
    /// collection. This is how a clustering-based selector must view a
    /// network — one substructure per node — and is exactly the
    /// "prohibitively expensive" regime §2.3 describes: the pairwise
    /// similarity matrix and per-cluster closures grow super-linearly
    /// with the node count. Experiment E6 measures this against TATTOO.
    pub fn run_on_network(&self, g: &vqi_graph::Graph, budget: &PatternBudget) -> PatternSet {
        const EGO_CAP: usize = 20;
        let egos: Vec<vqi_graph::Graph> = g
            .nodes()
            .map(|v| {
                let mut nodes = vec![v];
                nodes.extend(g.neighbors(v).map(|(u, _)| u).take(EGO_CAP));
                g.induced_subgraph(&nodes).0
            })
            .collect();
        self.run_with_state(&GraphCollection::new(egos), budget).0
    }
}

impl PatternSelector for Catapult {
    fn name(&self) -> &'static str {
        "catapult"
    }

    fn select(&self, repo: &GraphRepository, budget: &PatternBudget) -> PatternSet {
        match repo {
            GraphRepository::Collection(c) => self.run_with_state(c, budget).0,
            GraphRepository::Network(g) => self.run_on_network(g, budget),
        }
    }

    fn select_ctrl(
        &self,
        repo: &GraphRepository,
        budget: &PatternBudget,
        ctrl: &Budget,
    ) -> Result<PipelineOutcome<PatternSet>, VqiError> {
        match repo {
            GraphRepository::Collection(c) => self.run_ctrl(c, budget, ctrl),
            // the ego-decomposition fallback has no native stages; run
            // it as one panic-isolated unit
            GraphRepository::Network(g) => {
                match run_stage(ctrl, "catapult.network", || self.run_on_network(g, budget)) {
                    Ok(set) => Ok(PipelineOutcome::complete(set)),
                    Err(e) => {
                        let mut deg = Degradation::new();
                        deg.absorb(ctrl, e)?;
                        Ok(deg.finish(PatternSet::new()))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_core::score::{evaluate, QualityWeights};
    use vqi_graph::generate::{chain, cycle, star};
    use vqi_graph::traversal::is_connected;

    fn molecule_like() -> Vec<vqi_graph::Graph> {
        // three structural families
        let mut graphs = Vec::new();
        for i in 0..6 {
            graphs.push(chain(5 + i % 3, 1, 0));
            graphs.push(cycle(5 + i % 2, 2, 0));
            graphs.push(star(4 + i % 3, 3, 0));
        }
        graphs
    }

    #[test]
    fn pipeline_fills_budget_with_valid_patterns() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(5, 4, 6);
        let (set, state) = Catapult::default().run_with_state(&col, &budget);
        assert!(!set.is_empty(), "should select patterns");
        assert!(set.len() <= 5);
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
            assert!(p.provenance.starts_with("catapult:csg"));
        }
        assert!(!state.csgs.is_empty());
        assert_eq!(state.feature_vectors.len(), col.len());
    }

    #[test]
    fn every_selected_pattern_covers_something() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(5, 4, 6);
        let (set, _) = Catapult::default().run_with_state(&col, &budget);
        for p in set.patterns() {
            let cov = vqi_core::score::pattern_coverage(&p.graph, &col);
            assert!(cov > 0.0, "pattern {} covers nothing", p.id.0);
        }
    }

    #[test]
    fn beats_random_selection_on_quality() {
        let _guard = crate::fault_test_lock();
        use vqi_core::selector::{PatternSelector, RandomSelector};
        let graphs = molecule_like();
        let repo = GraphRepository::collection(graphs);
        let budget = PatternBudget::new(5, 4, 6);
        let w = QualityWeights::default();
        let cat_set = Catapult::default().select(&repo, &budget);
        let rnd_set = RandomSelector::new(5).select(&repo, &budget);
        let cat_q = evaluate(&cat_set, &repo, w);
        let rnd_q = evaluate(&rnd_set, &repo, w);
        assert!(
            cat_q.score >= rnd_q.score,
            "catapult {:.3} < random {:.3}",
            cat_q.score,
            rnd_q.score
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(4, 4, 6);
        let (a, _) = Catapult::default().run_with_state(&col, &budget);
        let (b, _) = Catapult::default().run_with_state(&col, &budget);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(pa.code, pb.code);
        }
    }

    #[test]
    fn empty_collection_yields_empty_set() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(vec![]);
        let (set, state) = Catapult::default().run_with_state(&col, &PatternBudget::default());
        assert!(set.is_empty());
        assert!(state.csgs.is_empty());
    }

    #[test]
    fn selection_is_identical_across_thread_counts() {
        let _guard = crate::fault_test_lock();
        use vqi_graph::canon::CanonicalCode;
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(4, 4, 6);
        let codes_at = |cap: usize| -> Vec<CanonicalCode> {
            vqi_graph::par::set_thread_cap(cap);
            let (set, _) = Catapult::default().run_with_state(&col, &budget);
            vqi_graph::par::set_thread_cap(0);
            let mut codes: Vec<CanonicalCode> =
                set.patterns().iter().map(|p| p.code.clone()).collect();
            codes.sort();
            codes
        };
        let one = codes_at(1);
        assert!(!one.is_empty());
        assert_eq!(one, codes_at(2), "cap 2 changed the selection");
        assert_eq!(one, codes_at(4), "cap 4 changed the selection");
        // the sequential toggle is the same code path as cap 1
        vqi_graph::par::set_parallel_enabled(false);
        let (seq, _) = Catapult::default().run_with_state(&col, &budget);
        vqi_graph::par::set_parallel_enabled(true);
        let mut seq_codes: Vec<CanonicalCode> =
            seq.patterns().iter().map(|p| p.code.clone()).collect();
        seq_codes.sort();
        assert_eq!(one, seq_codes, "sequential toggle changed the selection");
    }

    #[test]
    fn observability_is_identical_across_thread_counts() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(4, 4, 6);
        // warm-up fills the kernel caches so every measured run sees
        // the same cache-hit pattern
        Catapult::default().run_with_state(&col, &budget);
        let run = || drop(Catapult::default().run_with_state(&col, &budget));
        let one = observed_aggregates(1, false, run);
        assert!(!one.0.is_empty(), "no spans recorded");
        assert!(one.1.values().sum::<u64>() > 0, "no journal events");
        assert_eq!(
            one,
            observed_aggregates(2, false, run),
            "cap 2 changed the observability output"
        );
        assert_eq!(
            one,
            observed_aggregates(4, false, run),
            "cap 4 changed the observability output"
        );
        assert_eq!(
            one,
            observed_aggregates(0, true, run),
            "sequential toggle changed the observability output"
        );
    }

    /// Runs `work` with metrics and the trace journal armed under the
    /// given thread cap (or the sequential toggle) and returns the
    /// order-normalized aggregates that must be thread-count invariant:
    /// per-name span invocation counts and the journal event multiset.
    /// Durations and `kernel.par.*` dispatch counters legitimately vary
    /// with the worker count and are deliberately excluded.
    fn observed_aggregates(
        cap: usize,
        sequential: bool,
        work: impl Fn(),
    ) -> (Vec<(String, u64)>, std::collections::BTreeMap<String, u64>) {
        if sequential {
            vqi_graph::par::set_parallel_enabled(false);
        } else {
            vqi_graph::par::set_thread_cap(cap);
        }
        vqi_observe::reset();
        vqi_observe::set_enabled(true);
        vqi_observe::set_journal_enabled(true);
        vqi_observe::journal_reset();
        work();
        let events = vqi_observe::journal_events();
        let multiset = vqi_observe::event_multiset(&events);
        let mut span_counts: Vec<(String, u64)> = vqi_observe::snapshot()
            .spans
            .iter()
            .map(|(name, h)| (name.clone(), h.count))
            .collect();
        span_counts.sort();
        vqi_observe::set_journal_enabled(false);
        vqi_observe::set_enabled(false);
        vqi_observe::journal_reset();
        vqi_observe::reset();
        if sequential {
            vqi_graph::par::set_parallel_enabled(true);
        } else {
            vqi_graph::par::set_thread_cap(0);
        }
        (span_counts, multiset)
    }

    /// Installs a fault plan and removes it on drop, so a failing
    /// assertion cannot leak the plan into other tests.
    struct PlanGuard;
    fn with_plan(plan: vqi_runtime::fault::FaultPlan) -> PlanGuard {
        vqi_runtime::fault::set_plan(plan);
        PlanGuard
    }
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            vqi_runtime::fault::reset();
        }
    }

    fn codes_in_order(set: &PatternSet) -> Vec<vqi_graph::canon::CanonicalCode> {
        set.patterns().iter().map(|p| p.code.clone()).collect()
    }

    #[test]
    fn ctrl_with_unlimited_budget_matches_plain() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(4, 4, 6);
        let (plain, plain_state) = Catapult::default().run_with_state(&col, &budget);
        let out = Catapult::default()
            .run_with_state_ctrl(&col, &budget, &vqi_core::Budget::unlimited())
            .expect("unlimited budget cannot fail");
        assert!(out.completeness.is_complete());
        let (set, state) = out.value;
        // bit-identical selection, in selection order
        assert_eq!(codes_in_order(&plain), codes_in_order(&set));
        assert_eq!(plain_state.csgs.len(), state.csgs.len());
    }

    #[test]
    fn greedy_quota_cancels_mid_selection_deterministically() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(4, 4, 6);
        let (full, _) = Catapult::default().run_with_state(&col, &budget);
        assert!(full.len() >= 3, "need enough rounds to cut");
        // the greedy meter ticks once per round: a 2-tick quota keeps
        // exactly the first two picks, at any thread count
        let ctrl = vqi_core::Budget::unlimited().with_kernel_ticks(2);
        let mut per_cap = Vec::new();
        for cap in [1usize, 2, 4] {
            vqi_graph::par::set_thread_cap(cap);
            let out = Catapult::default()
                .run_with_state_ctrl(&col, &budget, &ctrl)
                .expect("not fail-fast");
            vqi_graph::par::set_thread_cap(0);
            assert!(!out.completeness.is_complete(), "cap {cap} should degrade");
            per_cap.push(codes_in_order(&out.value.0));
        }
        assert_eq!(per_cap[0], per_cap[1]);
        assert_eq!(per_cap[0], per_cap[2]);
        assert_eq!(per_cap[0].len(), 2);
        // the degraded set is a prefix of the full selection
        assert_eq!(&per_cap[0][..], &codes_in_order(&full)[..2]);
    }

    #[test]
    fn injected_stage_timeouts_degrade_without_panicking() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(4, 4, 6);
        for seed in [1u64, 2] {
            let mut per_cap = Vec::new();
            for cap in [1usize, 2, 4] {
                let _plan = with_plan(vqi_runtime::fault::FaultPlan {
                    seed,
                    timeout_rate: 1.0,
                    ..Default::default()
                });
                vqi_graph::par::set_thread_cap(cap);
                let out = Catapult::default()
                    .run_with_state_ctrl(&col, &budget, &vqi_core::Budget::unlimited())
                    .expect("not fail-fast");
                vqi_graph::par::set_thread_cap(0);
                assert!(
                    !out.completeness.is_complete(),
                    "seed {seed} cap {cap}: a total timeout plan must degrade"
                );
                per_cap.push((codes_in_order(&out.value.0), out.completeness));
            }
            assert_eq!(per_cap[0], per_cap[1], "seed {seed}");
            assert_eq!(per_cap[0], per_cap[2], "seed {seed}");
        }
    }

    #[test]
    fn injected_panics_are_contained_and_deterministic() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(4, 4, 6);
        for seed in [1u64, 2] {
            let mut runs = Vec::new();
            for cap in [1usize, 2, 4] {
                let _plan = with_plan(vqi_runtime::fault::FaultPlan {
                    seed,
                    panic_rate: 1.0,
                    ..Default::default()
                });
                vqi_graph::par::set_thread_cap(cap);
                let out = Catapult::default()
                    .run_with_state_ctrl(&col, &budget, &vqi_core::Budget::unlimited())
                    .expect("panics must be absorbed, not propagated");
                vqi_graph::par::set_thread_cap(0);
                assert!(!out.completeness.is_complete(), "seed {seed} cap {cap}");
                runs.push((codes_in_order(&out.value.0), out.completeness));
            }
            assert_eq!(runs[0], runs[1], "seed {seed}");
            assert_eq!(runs[0], runs[2], "seed {seed}");
        }
    }

    #[test]
    fn injected_nan_scores_are_sanitized() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(3, 4, 6);
        // reinstall the plan per run: the fired-once registry models
        // transient faults, so a fresh plan is what makes two runs see
        // the same injections
        let plan = vqi_runtime::fault::FaultPlan {
            seed: 9,
            nan_rate: 1.0,
            ..Default::default()
        };
        let _p1 = with_plan(plan);
        let a = Catapult::default()
            .run_with_state_ctrl(&col, &budget, &vqi_core::Budget::unlimited())
            .expect("not fail-fast");
        let _p2 = with_plan(plan);
        let b = Catapult::default()
            .run_with_state_ctrl(&col, &budget, &vqi_core::Budget::unlimited())
            .expect("not fail-fast");
        // NaN scores are sanitized (degraded), never crash the argmax,
        // and the outcome is reproducible
        assert_eq!(codes_in_order(&a.value.0), codes_in_order(&b.value.0));
        assert_eq!(a.completeness, b.completeness);
    }

    #[test]
    fn fail_fast_propagates_the_first_fault() {
        let _guard = crate::fault_test_lock();
        let col = GraphCollection::new(molecule_like());
        let budget = PatternBudget::new(4, 4, 6);
        let _plan = with_plan(vqi_runtime::fault::FaultPlan {
            seed: 3,
            timeout_rate: 1.0,
            ..Default::default()
        });
        let ctrl = vqi_core::Budget::unlimited().with_fail_fast(true);
        let out = Catapult::default().run_with_state_ctrl(&col, &budget, &ctrl);
        assert!(out.is_err(), "fail-fast must propagate the stage fault");
    }
}
