//! CATAPULT — data-driven selection of canned patterns for a large
//! collection of small/medium data graphs (Huang et al., SIGMOD 2019, as
//! surveyed in §2.3 of the tutorial).
//!
//! The pipeline has three steps:
//!
//! 1. **Cluster** the collection by frequent-subtree feature similarity
//!    ([`vqi_mining::fst`] + [`vqi_mining::cluster`]);
//! 2. **Summarize** each cluster into a *cluster summary graph* (CSG) by
//!    iterated graph closure ([`vqi_mining::closure`]), so that every
//!    member graph embeds in its cluster's CSG;
//! 3. **Select** canned patterns greedily: candidates are proposed by
//!    weighted random walks over the CSGs (edge weights = how many
//!    members contributed the edge), and the candidate maximizing the
//!    *pattern score* — marginal coverage + diversity against the already
//!    selected set − cognitive load — is taken until the budget is filled
//!    or candidates run out.
//!
//! [`Catapult::run_with_state`] additionally returns the intermediate
//! artifacts (feature space, clustering, CSGs, candidate pool), which
//! MIDAS maintains incrementally instead of recomputing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod pipeline;
pub mod select;

pub use pipeline::{Catapult, CatapultConfig, CatapultState};

/// Serializes tests against the process-global fault-injection plan:
/// any test that runs a pipeline (whose stage bodies contain fault
/// sites) must not race a test that installs a plan.
#[cfg(test)]
pub(crate) fn fault_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
