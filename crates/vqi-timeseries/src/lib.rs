//! Data-driven sketch-based query interfaces for time series — the
//! "Beyond Graphs" direction of the tutorial's §2.5.
//!
//! Sketch-based querying of data series (Correll & Gleicher; Mannino &
//! Abouzied; Lee et al. — all cited by the tutorial) suffers the same
//! bottleneck as visual graph querying: users can't sketch a shape they
//! don't know exists. The tutorial predicts that a *data-driven sketch
//! panel* — canned shapes mined from the series the way canned patterns
//! are mined from graphs — mitigates this. This crate implements that
//! prediction end to end:
//!
//! * [`series`] — time-series storage, z-normalization, windowing,
//!   synthetic generators with planted motifs;
//! * [`motif`] — motif discovery via a (naive, early-abandoning) matrix
//!   profile: for every window, the distance to its nearest
//!   non-overlapping neighbor; motifs are the best-matching pairs;
//! * [`shapes`] — data-driven **Shape Panel** selection with the exact
//!   coverage / diversity / cognitive-load trinity of the graph side:
//!   coverage = fraction of windows within `ε` of a shape, diversity =
//!   1 − mean pairwise shape similarity, cognitive load = normalized
//!   turning-point count;
//! * [`sketch`] — sketch queries, their evaluation (top-k nearest
//!   windows), and a stroke-level formulation cost model mirroring the
//!   KLM model of `vqi-sim` (drawing from scratch = one stroke per
//!   direction change; starting from a canned shape = one pick plus
//!   amplitude adjustments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod motif;
pub mod series;
pub mod shapes;
pub mod sketch;

pub use motif::{matrix_profile, top_motifs, Motif};
pub use series::TimeSeries;
pub use shapes::{select_shapes, Shape, ShapeBudget, ShapePanel};
pub use sketch::{match_sketch, sketch_cost, SketchMatch};
