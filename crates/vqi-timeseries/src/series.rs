//! Time-series storage, normalization, and synthetic generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A univariate time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Wraps raw values.
    pub fn new(values: Vec<f64>) -> Self {
        TimeSeries { values }
    }

    /// Length in samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The window starting at `start` with `w` samples, if in range.
    pub fn window(&self, start: usize, w: usize) -> Option<&[f64]> {
        self.values.get(start..start + w)
    }

    /// Number of windows of width `w`.
    pub fn window_count(&self, w: usize) -> usize {
        if w == 0 || self.values.len() < w {
            0
        } else {
            self.values.len() - w + 1
        }
    }

    /// Sum of the trailing window of width `w` (the whole series when
    /// shorter than `w`). Left-to-right fold, so the result is
    /// deterministic for a given series. This is the sliding-window
    /// aggregate used by streaming drift signals: callers push one
    /// observation per batch and read the current window total.
    pub fn tail_sum(&self, w: usize) -> f64 {
        let start = self.values.len().saturating_sub(w);
        self.values[start..].iter().sum()
    }
}

/// Z-normalizes a window: zero mean, unit variance. Flat windows (zero
/// variance) normalize to all zeros.
pub fn znormalize(window: &[f64]) -> Vec<f64> {
    let n = window.len();
    if n == 0 {
        return vec![];
    }
    let mean = window.iter().sum::<f64>() / n as f64;
    let var = window.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let sd = var.sqrt();
    if sd < 1e-12 {
        return vec![0.0; n];
    }
    window.iter().map(|x| (x - mean) / sd).collect()
}

/// Euclidean distance between two z-normalized shapes of equal length.
pub fn shape_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "shapes must share a length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Distance between a z-normalized `shape` and the window of `series`
/// starting at `start` (the window is z-normalized first).
pub fn window_distance(series: &TimeSeries, start: usize, shape: &[f64]) -> f64 {
    let w = series.window(start, shape.len()).expect("window in range");
    shape_distance(&znormalize(w), shape)
}

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticParams {
    /// Series length.
    pub len: usize,
    /// Number of planted motif occurrences.
    pub motif_occurrences: usize,
    /// Motif width in samples.
    pub motif_width: usize,
    /// Noise amplitude.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            len: 2_000,
            motif_occurrences: 6,
            motif_width: 50,
            noise: 0.15,
            seed: 0x7E11,
        }
    }
}

/// A random-walk series with a planted sinusoidal-burst motif repeated at
/// random non-overlapping offsets. Returns the series and the planted
/// offsets (sorted).
pub fn synthetic_with_motifs(params: SyntheticParams) -> (TimeSeries, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut values = Vec::with_capacity(params.len);
    let mut level: f64 = 0.0;
    for _ in 0..params.len {
        level += rng.gen_range(-1.0..1.0) * 0.3;
        values.push(level + rng.gen_range(-params.noise..params.noise));
    }
    // the planted shape: one-and-a-half sine periods with a spike
    let w = params.motif_width;
    let shape: Vec<f64> = (0..w)
        .map(|i| {
            let t = i as f64 / w as f64;
            3.0 * (t * std::f64::consts::PI * 3.0).sin() + if i == w / 2 { 2.0 } else { 0.0 }
        })
        .collect();
    let mut offsets = Vec::new();
    let mut attempts = 0;
    while offsets.len() < params.motif_occurrences && attempts < 1_000 {
        attempts += 1;
        if params.len <= w {
            break;
        }
        let o = rng.gen_range(0..params.len - w);
        if offsets.iter().all(|&p: &usize| p.abs_diff(o) >= w) {
            offsets.push(o);
        }
    }
    for &o in &offsets {
        let base = values[o];
        for i in 0..w {
            values[o + i] = base + shape[i] + rng.gen_range(-params.noise..params.noise);
        }
    }
    offsets.sort_unstable();
    (TimeSeries::new(values), offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_sum_covers_short_and_long_series() {
        let s = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.tail_sum(2), 5.0);
        assert_eq!(s.tail_sum(3), 6.0);
        assert_eq!(s.tail_sum(10), 6.0, "short series sums entirely");
        assert_eq!(s.tail_sum(0), 0.0);
        assert_eq!(TimeSeries::new(vec![]).tail_sum(4), 0.0);
    }

    #[test]
    fn znormalize_properties() {
        let z = znormalize(&[1.0, 2.0, 3.0, 4.0]);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
        // flat windows and empties are safe
        assert_eq!(znormalize(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
        assert!(znormalize(&[]).is_empty());
    }

    #[test]
    fn znormalize_is_shift_and_scale_invariant() {
        let a = znormalize(&[1.0, 3.0, 2.0, 5.0]);
        let b = znormalize(&[10.0, 30.0, 20.0, 50.0]);
        let c = znormalize(&[101.0, 103.0, 102.0, 105.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
        for (x, y) in a.iter().zip(c.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn windows_and_counts() {
        let s = TimeSeries::new((0..10).map(|i| i as f64).collect());
        assert_eq!(s.window_count(3), 8);
        assert_eq!(s.window(7, 3).unwrap(), &[7.0, 8.0, 9.0]);
        assert!(s.window(8, 3).is_none());
        assert_eq!(s.window_count(11), 0);
        assert_eq!(s.window_count(0), 0);
    }

    #[test]
    fn shape_distance_basics() {
        let a = vec![0.0, 1.0, 0.0];
        let b = vec![0.0, 1.0, 0.0];
        assert_eq!(shape_distance(&a, &b), 0.0);
        let c = vec![1.0, 1.0, 0.0];
        assert!((shape_distance(&a, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_plants_motifs() {
        let params = SyntheticParams::default();
        let (series, offsets) = synthetic_with_motifs(params);
        assert_eq!(series.len(), params.len);
        assert_eq!(offsets.len(), params.motif_occurrences);
        // planted occurrences are mutually close in shape space
        let w = params.motif_width;
        let first = znormalize(series.window(offsets[0], w).unwrap());
        for &o in &offsets[1..] {
            let other = znormalize(series.window(o, w).unwrap());
            let d = shape_distance(&first, &other);
            assert!(d < 3.0, "planted motifs too far apart: {d}");
        }
    }

    #[test]
    fn synthetic_is_deterministic() {
        let (a, oa) = synthetic_with_motifs(SyntheticParams::default());
        let (b, ob) = synthetic_with_motifs(SyntheticParams::default());
        assert_eq!(a, b);
        assert_eq!(oa, ob);
    }
}
