//! Sketch queries: evaluation and formulation cost.
//!
//! A sketch query is a shape the user draws (or picks from the Shape
//! Panel and adjusts). Evaluation returns the top-k nearest windows.
//! Formulation cost mirrors the graph-side KLM model: free-hand drawing
//! costs one stroke per direction segment of the intended shape, while
//! starting from a canned shape costs one panel pick plus one adjustment
//! per segment where the canned shape deviates from the intention.

use crate::series::{window_distance, TimeSeries};
use crate::shapes::{Shape, ShapePanel};
use serde::Serialize;

/// One match of a sketch in the series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SketchMatch {
    /// Window offset.
    pub offset: usize,
    /// Distance between the z-normalized window and the sketch.
    pub distance: f64,
}

/// Finds the `k` nearest non-overlapping windows to a z-normalized
/// sketch.
pub fn match_sketch(series: &TimeSeries, sketch: &[f64], k: usize) -> Vec<SketchMatch> {
    let w = sketch.len();
    let n = series.window_count(w);
    if n == 0 || w == 0 {
        return vec![];
    }
    let mut all: Vec<SketchMatch> = (0..n)
        .map(|i| SketchMatch {
            offset: i,
            distance: window_distance(series, i, sketch),
        })
        .collect();
    // total_cmp instead of partial_cmp().expect("finite"): a NaN
    // distance (e.g. a constant window whose z-normalization divides by
    // zero) must never panic the match — it sorts after every finite
    // distance. The offset tiebreak makes equal-distance output
    // deterministic regardless of the sort algorithm or platform.
    all.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.offset.cmp(&b.offset))
    });
    // non-maximum suppression: drop overlapping windows
    let mut out: Vec<SketchMatch> = Vec::new();
    for m in all {
        if out.len() >= k {
            break;
        }
        if out.iter().all(|o| o.offset.abs_diff(m.offset) >= w / 2) {
            out.push(m);
        }
    }
    out
}

/// Number of monotone segments of a shape (direction changes + 1).
pub fn segment_count(values: &[f64]) -> usize {
    if values.len() < 2 {
        return 0;
    }
    let mut segments = 1usize;
    let mut dir = 0i8;
    for w in values.windows(2) {
        let d = (w[1] - w[0]).partial_cmp(&0.0).map_or(0i8, |o| match o {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        });
        if d != 0 {
            if dir != 0 && d != dir {
                segments += 1;
            }
            dir = d;
        }
    }
    segments
}

/// Costs of sketch formulation actions, in seconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SketchCosts {
    /// Drawing one monotone stroke segment free-hand.
    pub stroke: f64,
    /// Visually scanning one Shape Panel entry.
    pub scan_per_shape: f64,
    /// Dragging a canned shape onto the canvas.
    pub drag: f64,
    /// Adjusting one deviating segment of a canned shape.
    pub adjust: f64,
}

impl Default for SketchCosts {
    fn default() -> Self {
        SketchCosts {
            stroke: 1.4,
            scan_per_shape: 0.4,
            drag: 1.1,
            adjust: 0.9,
        }
    }
}

/// Modeled time to formulate the `intended` sketch.
///
/// Free-hand (no panel): one stroke per monotone segment. With a panel:
/// scan half the panel, drag the best canned shape, then adjust the
/// segments where the canned shape's direction profile deviates from the
/// intention; falls back to free-hand when that is cheaper.
pub fn sketch_cost(intended: &[f64], panel: Option<&ShapePanel>, costs: &SketchCosts) -> f64 {
    let freehand = segment_count(intended) as f64 * costs.stroke;
    let Some(panel) = panel else {
        return freehand;
    };
    if panel.shapes.is_empty() {
        return freehand;
    }
    let scan = costs.scan_per_shape * (panel.shapes.len() as f64 / 2.0).max(1.0);
    let best = panel
        .shapes
        .iter()
        .map(|s| canned_cost(intended, s, costs))
        .fold(f64::INFINITY, f64::min);
    (scan + best).min(freehand)
}

fn canned_cost(intended: &[f64], shape: &Shape, costs: &SketchCosts) -> f64 {
    let deviating = deviating_segments(intended, &shape.values);
    costs.drag + deviating as f64 * costs.adjust
}

/// Counts the monotone segments of `intended` whose direction disagrees
/// with the canned shape over the same span (resampled by index ratio).
pub fn deviating_segments(intended: &[f64], canned: &[f64]) -> usize {
    if intended.len() < 2 || canned.len() < 2 {
        return segment_count(intended);
    }
    let mut deviations = 0usize;
    let scale = (canned.len() - 1) as f64 / (intended.len() - 1) as f64;
    let mut i = 0usize;
    while i + 1 < intended.len() {
        // walk to the end of this monotone segment
        let start = i;
        let dir = (intended[i + 1] - intended[i]).signum();
        while i + 1 < intended.len() && (intended[i + 1] - intended[i]).signum() == dir {
            i += 1;
        }
        // compare against the canned shape's net direction on the span
        let ca = ((start as f64) * scale).round() as usize;
        let cb = ((i as f64) * scale).round() as usize;
        let ca = ca.min(canned.len() - 1);
        let cb = cb.min(canned.len() - 1);
        let canned_dir = (canned[cb] - canned[ca]).signum();
        if canned_dir != dir {
            deviations += 1;
        }
        if start == i {
            i += 1; // flat step, avoid stalling
        }
    }
    deviations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{synthetic_with_motifs, znormalize, SyntheticParams};
    use crate::shapes::{select_shapes, ShapeBudget};

    #[test]
    fn matching_finds_planted_occurrences() {
        let params = SyntheticParams {
            noise: 0.05,
            ..Default::default()
        };
        let (series, offsets) = synthetic_with_motifs(params);
        let sketch = znormalize(series.window(offsets[0], params.motif_width).unwrap());
        let matches = match_sketch(&series, &sketch, params.motif_occurrences);
        assert!(!matches.is_empty());
        // the top match is (nearly) the source window itself
        assert!(offsets.iter().any(|&o| o.abs_diff(matches[0].offset) <= 2));
        // several planted occurrences are retrieved
        let hits = matches
            .iter()
            .filter(|m| offsets.iter().any(|&o| o.abs_diff(m.offset) <= 5))
            .count();
        assert!(hits >= 2, "only {hits} planted occurrences retrieved");
    }

    #[test]
    fn matches_are_sorted_and_non_overlapping() {
        let (series, _) = synthetic_with_motifs(SyntheticParams::default());
        let sketch = znormalize(series.window(100, 50).unwrap());
        let matches = match_sketch(&series, &sketch, 5);
        for pair in matches.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        for i in 0..matches.len() {
            for j in (i + 1)..matches.len() {
                assert!(matches[i].offset.abs_diff(matches[j].offset) >= 25);
            }
        }
    }

    #[test]
    fn segment_counting() {
        assert_eq!(segment_count(&[0.0, 1.0, 2.0]), 1);
        assert_eq!(segment_count(&[0.0, 1.0, 0.0]), 2);
        assert_eq!(segment_count(&[0.0, 1.0, 0.0, 1.0]), 3);
        assert_eq!(segment_count(&[1.0]), 0);
    }

    #[test]
    fn panel_reduces_sketching_cost_for_known_shapes() {
        let params = SyntheticParams {
            noise: 0.05,
            ..Default::default()
        };
        let (series, offsets) = synthetic_with_motifs(params);
        let panel = select_shapes(
            &series,
            ShapeBudget {
                count: 4,
                width: params.motif_width,
                epsilon: 3.0,
            },
        );
        // the user intends to sketch the planted motif
        let intended = znormalize(series.window(offsets[0], params.motif_width).unwrap());
        let costs = SketchCosts::default();
        let freehand = sketch_cost(&intended, None, &costs);
        let assisted = sketch_cost(&intended, Some(&panel), &costs);
        assert!(
            assisted < freehand,
            "assisted {assisted:.1}s !< freehand {freehand:.1}s"
        );
    }

    #[test]
    fn panel_never_hurts() {
        let (series, _) = synthetic_with_motifs(SyntheticParams::default());
        let panel = select_shapes(&series, ShapeBudget::default());
        // a shape unrelated to the panel: a pure ramp
        let ramp: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let costs = SketchCosts::default();
        let freehand = sketch_cost(&ramp, None, &costs);
        let assisted = sketch_cost(&ramp, Some(&panel), &costs);
        assert!(assisted <= freehand + 1e-9);
    }

    #[test]
    fn non_finite_windows_never_panic_and_rank_last() {
        // a NaN sample poisons every window covering it; the old
        // partial_cmp().expect("finite") sort panicked here
        let mut values: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        values[10] = f64::NAN;
        let series = TimeSeries::new(values);
        let sketch = znormalize(series.window(20, 6).unwrap());
        let matches = match_sketch(&series, &sketch, 4);
        assert!(!matches.is_empty());
        // finite distances come first; NaN windows sort after all of them
        let first_nan = matches.iter().position(|m| m.distance.is_nan());
        if let Some(i) = first_nan {
            assert!(matches[i..].iter().all(|m| m.distance.is_nan()));
        }
        assert!(matches[0].distance.is_finite());
    }

    #[test]
    fn equal_distances_tie_break_by_offset() {
        // a strictly periodic series: every window at the same phase has
        // distance exactly 0 to the sketch, so ordering among ties is
        // decided solely by the (distance, offset) comparator
        let values: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let series = TimeSeries::new(values);
        let sketch = znormalize(series.window(0, 8).unwrap());
        let matches = match_sketch(&series, &sketch, 5);
        assert_eq!(matches.len(), 5);
        // all-zero distances picked in ascending offset order, spaced by
        // the w/2 = 4 non-overlap suppression
        let offsets: Vec<usize> = matches.iter().map(|m| m.offset).collect();
        assert_eq!(offsets, vec![0, 4, 8, 12, 16]);
        assert!(matches.iter().all(|m| m.distance.abs() < 1e-9));
        // byte-for-byte repeatable
        let again: Vec<usize> = match_sketch(&series, &sketch, 5)
            .iter()
            .map(|m| m.offset)
            .collect();
        assert_eq!(offsets, again);
    }

    #[test]
    fn degenerate_sketches() {
        let series = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        assert!(match_sketch(&series, &[], 3).is_empty());
        assert!(match_sketch(&TimeSeries::new(vec![]), &[0.0, 1.0], 3).is_empty());
        assert_eq!(sketch_cost(&[], None, &SketchCosts::default()), 0.0);
    }
}
