//! Motif discovery via a naive matrix profile.
//!
//! The matrix profile of a series under window width `w` records, for
//! every window, the distance to its nearest *non-trivially-overlapping*
//! neighbor. Low profile values mark repeated structure — motifs — which
//! are exactly the "representative objects" a data-driven sketch panel
//! needs. The implementation is the straightforward `O(n²·w)` scan with
//! early abandoning, parallelized over query windows; fine for the
//! series sizes of the experiments (a full MASS/STOMP implementation is
//! out of scope and orthogonal to the interface questions).

use crate::series::{znormalize, TimeSeries};
use rayon::prelude::*;
use serde::Serialize;

/// A discovered motif.
#[derive(Debug, Clone, Serialize)]
pub struct Motif {
    /// Window offset of the first occurrence.
    pub a: usize,
    /// Window offset of its nearest neighbor.
    pub b: usize,
    /// Distance between the two z-normalized windows.
    pub distance: f64,
    /// Window width.
    pub width: usize,
}

/// Computes the matrix profile: `(profile, profile_index)` where
/// `profile[i]` is the distance from window `i` to its nearest neighbor
/// at least `w/2` away, and `profile_index[i]` is that neighbor's offset.
/// Returns empty vectors when fewer than two non-overlapping windows fit.
pub fn matrix_profile(series: &TimeSeries, w: usize) -> (Vec<f64>, Vec<usize>) {
    let n = series.window_count(w);
    if n == 0 {
        return (vec![], vec![]);
    }
    let exclusion = (w / 2).max(1);
    let shapes: Vec<Vec<f64>> = (0..n)
        .map(|i| znormalize(series.window(i, w).expect("in range")))
        .collect();
    let results: Vec<(f64, usize)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut best = (f64::INFINITY, usize::MAX);
            for j in 0..n {
                if i.abs_diff(j) < exclusion {
                    continue;
                }
                // early abandoning squared-distance scan
                let mut acc = 0.0;
                let limit = best.0 * best.0;
                for (x, y) in shapes[i].iter().zip(shapes[j].iter()) {
                    acc += (x - y) * (x - y);
                    if acc > limit {
                        break;
                    }
                }
                if acc <= limit {
                    let d = acc.sqrt();
                    if d < best.0 {
                        best = (d, j);
                    }
                }
            }
            best
        })
        .collect();
    let profile = results.iter().map(|r| r.0).collect();
    let index = results.iter().map(|r| r.1).collect();
    (profile, index)
}

/// Extracts the top-`k` motifs: repeatedly take the window with the
/// lowest profile value, pair it with its nearest neighbor, and exclude
/// both neighborhoods from further selection.
pub fn top_motifs(series: &TimeSeries, w: usize, k: usize) -> Vec<Motif> {
    let (profile, index) = matrix_profile(series, w);
    let n = profile.len();
    let mut blocked = vec![false; n];
    let mut motifs = Vec::new();
    let exclusion = (w / 2).max(1);
    while motifs.len() < k {
        let best = (0..n)
            .filter(|&i| !blocked[i] && profile[i].is_finite() && !blocked[index[i]])
            .min_by(|&a, &b| profile[a].total_cmp(&profile[b]));
        let Some(i) = best else { break };
        let j = index[i];
        motifs.push(Motif {
            a: i.min(j),
            b: i.max(j),
            distance: profile[i],
            width: w,
        });
        for center in [i, j] {
            let lo = center.saturating_sub(exclusion);
            let hi = (center + exclusion).min(n - 1);
            for b in &mut blocked[lo..=hi] {
                *b = true;
            }
        }
    }
    motifs
}

/// The z-normalized shape of a motif's first occurrence.
pub fn motif_shape(series: &TimeSeries, motif: &Motif) -> Vec<f64> {
    znormalize(series.window(motif.a, motif.width).expect("in range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{synthetic_with_motifs, SyntheticParams};

    #[test]
    fn profile_finds_planted_motifs() {
        let params = SyntheticParams {
            len: 1_200,
            motif_occurrences: 4,
            motif_width: 40,
            noise: 0.05,
            seed: 3,
        };
        let (series, offsets) = synthetic_with_motifs(params);
        let motifs = top_motifs(&series, params.motif_width, 1);
        assert_eq!(motifs.len(), 1);
        let m = &motifs[0];
        // the best motif pair should land near two planted offsets
        let near = |x: usize| offsets.iter().any(|&o| o.abs_diff(x) <= 5);
        assert!(
            near(m.a) && near(m.b),
            "motif at {}/{} vs planted {:?}",
            m.a,
            m.b,
            offsets
        );
    }

    #[test]
    fn non_finite_profile_entries_never_panic_motif_extraction() {
        // NaN samples poison the matrix profile around them; extraction
        // must skip those entries (not panic in the argmin comparator)
        // and still report motifs from the finite remainder
        let params = SyntheticParams {
            len: 600,
            motif_occurrences: 3,
            motif_width: 30,
            noise: 0.05,
            seed: 9,
        };
        let (series, _) = synthetic_with_motifs(params);
        let mut values = series.values().to_vec();
        values[300] = f64::NAN;
        values[301] = f64::INFINITY;
        let poisoned = TimeSeries::new(values);
        let motifs = top_motifs(&poisoned, params.motif_width, 2);
        assert!(!motifs.is_empty());
        assert!(motifs.iter().all(|m| m.distance.is_finite()));
    }

    #[test]
    fn profile_respects_exclusion_zone() {
        let (series, _) = synthetic_with_motifs(SyntheticParams {
            len: 400,
            motif_width: 30,
            motif_occurrences: 2,
            noise: 0.1,
            seed: 4,
        });
        let w = 30;
        let (profile, index) = matrix_profile(&series, w);
        for (i, &j) in index.iter().enumerate() {
            if profile[i].is_finite() {
                assert!(i.abs_diff(j) >= w / 2, "trivial match at {i}->{j}");
            }
        }
    }

    #[test]
    fn top_motifs_do_not_overlap() {
        let (series, _) = synthetic_with_motifs(SyntheticParams::default());
        let w = 50;
        let motifs = top_motifs(&series, w, 4);
        assert!(motifs.len() >= 2);
        for (x, y) in motifs.iter().zip(motifs.iter().skip(1)) {
            assert!(
                x.distance <= y.distance,
                "motifs must come sorted by distance"
            );
        }
        for i in 0..motifs.len() {
            for j in (i + 1)..motifs.len() {
                assert!(
                    motifs[i].a.abs_diff(motifs[j].a) >= w / 2,
                    "motif anchors overlap"
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty = TimeSeries::new(vec![]);
        assert!(matrix_profile(&empty, 10).0.is_empty());
        assert!(top_motifs(&empty, 10, 3).is_empty());
        let tiny = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        assert!(top_motifs(&tiny, 10, 3).is_empty());
    }

    #[test]
    fn motif_shape_is_normalized() {
        let (series, _) = synthetic_with_motifs(SyntheticParams::default());
        let motifs = top_motifs(&series, 50, 1);
        let shape = motif_shape(&series, &motifs[0]);
        let mean: f64 = shape.iter().sum::<f64>() / shape.len() as f64;
        assert!(mean.abs() < 1e-9);
    }
}
