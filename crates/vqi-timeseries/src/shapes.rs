//! Data-driven Shape Panel selection — the coverage / diversity /
//! cognitive-load trinity transplanted from graphs to series shapes.

use crate::motif::{motif_shape, top_motifs};
use crate::series::{shape_distance, window_distance, TimeSeries};
use rayon::prelude::*;
use serde::Serialize;

/// A canned shape on the Shape Panel.
#[derive(Debug, Clone, Serialize)]
pub struct Shape {
    /// The z-normalized shape values.
    pub values: Vec<f64>,
    /// Where it was mined from (window offset).
    pub provenance: usize,
}

impl Shape {
    /// Window width.
    pub fn width(&self) -> usize {
        self.values.len()
    }
}

/// Budget for shape selection.
#[derive(Debug, Clone, Copy)]
pub struct ShapeBudget {
    /// Number of shapes to display.
    pub count: usize,
    /// Window width in samples.
    pub width: usize,
    /// A window is covered by a shape if within this distance.
    pub epsilon: f64,
}

impl Default for ShapeBudget {
    fn default() -> Self {
        ShapeBudget {
            count: 5,
            width: 50,
            epsilon: 3.0,
        }
    }
}

/// The populated Shape Panel with its quality report.
#[derive(Debug, Clone, Serialize)]
pub struct ShapePanel {
    /// Selected shapes.
    pub shapes: Vec<Shape>,
    /// Fraction of series windows within `ε` of some shape.
    pub coverage: f64,
    /// `1 − mean pairwise similarity` of the shapes.
    pub diversity: f64,
    /// Mean normalized turning-point count.
    pub cognitive_load: f64,
}

/// Cognitive load of a shape: the fraction of interior points that are
/// direction changes (turning points). A monotone ramp scores 0; a
/// zig-zag scores 1. Mirrors the "topologically complex patterns demand
/// more effort" rationale on the graph side.
pub fn shape_cognitive_load(values: &[f64]) -> f64 {
    if values.len() < 3 {
        return 0.0;
    }
    let mut turns = 0usize;
    for w in values.windows(3) {
        let d1 = w[1] - w[0];
        let d2 = w[2] - w[1];
        if d1 * d2 < 0.0 {
            turns += 1;
        }
    }
    turns as f64 / (values.len() - 2) as f64
}

/// Coverage bitset of one shape over all windows of the series.
fn coverage_bits(series: &TimeSeries, shape: &[f64], epsilon: f64) -> Vec<bool> {
    let n = series.window_count(shape.len());
    (0..n)
        .into_par_iter()
        .map(|i| window_distance(series, i, shape) <= epsilon)
        .collect()
}

/// Selects a Shape Panel from the series: candidates are the top motifs
/// (3× the budget), greedily chosen by marginal window coverage +
/// diversity − cognitive load, exactly like the graph-side selectors.
pub fn select_shapes(series: &TimeSeries, budget: ShapeBudget) -> ShapePanel {
    let candidates = top_motifs(series, budget.width, budget.count * 3);
    let shapes: Vec<Shape> = candidates
        .iter()
        .map(|m| Shape {
            values: motif_shape(series, m),
            provenance: m.a,
        })
        .collect();
    let bits: Vec<Vec<bool>> = shapes
        .iter()
        .map(|s| coverage_bits(series, &s.values, budget.epsilon))
        .collect();
    let n_windows = series.window_count(budget.width).max(1);

    let mut chosen: Vec<usize> = Vec::new();
    let mut covered = vec![false; n_windows];
    while chosen.len() < budget.count {
        let mut best: Option<(f64, usize)> = None;
        for (i, s) in shapes.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let gain = bits[i]
                .iter()
                .zip(covered.iter())
                .filter(|(&c, &d)| c && !d)
                .count() as f64
                / n_windows as f64;
            let div = if chosen.is_empty() {
                1.0
            } else {
                let max_sim = chosen
                    .iter()
                    .map(|&j| {
                        let d = shape_distance(&s.values, &shapes[j].values);
                        // similarity: distance mapped to (0, 1]
                        1.0 / (1.0 + d)
                    })
                    .fold(0.0f64, f64::max);
                1.0 - max_sim
            };
            let score = gain + 0.5 * div - 0.5 * shape_cognitive_load(&s.values);
            if best.is_none_or(|(b, _)| score > b) {
                best = Some((score, i));
            }
        }
        let Some((_, i)) = best else { break };
        chosen.push(i);
        for (c, &b) in covered.iter_mut().zip(bits[i].iter()) {
            *c |= b;
        }
    }

    let selected: Vec<Shape> = chosen.iter().map(|&i| shapes[i].clone()).collect();
    let coverage = covered.iter().filter(|&&c| c).count() as f64 / n_windows as f64;
    let diversity = if selected.len() <= 1 {
        1.0
    } else {
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..selected.len() {
            for j in (i + 1)..selected.len() {
                total += 1.0 / (1.0 + shape_distance(&selected[i].values, &selected[j].values));
                pairs += 1;
            }
        }
        1.0 - total / pairs as f64
    };
    let cognitive_load = if selected.is_empty() {
        0.0
    } else {
        selected
            .iter()
            .map(|s| shape_cognitive_load(&s.values))
            .sum::<f64>()
            / selected.len() as f64
    };
    ShapePanel {
        shapes: selected,
        coverage,
        diversity,
        cognitive_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{synthetic_with_motifs, SyntheticParams};

    fn series() -> TimeSeries {
        synthetic_with_motifs(SyntheticParams::default()).0
    }

    #[test]
    fn panel_selects_within_budget() {
        let panel = select_shapes(&series(), ShapeBudget::default());
        assert!(!panel.shapes.is_empty());
        assert!(panel.shapes.len() <= 5);
        for s in &panel.shapes {
            assert_eq!(s.width(), 50);
        }
        assert!((0.0..=1.0).contains(&panel.coverage));
        assert!((0.0..=1.0).contains(&panel.diversity));
        assert!((0.0..=1.0).contains(&panel.cognitive_load));
    }

    #[test]
    fn panel_covers_planted_motifs() {
        let params = SyntheticParams {
            noise: 0.05,
            ..Default::default()
        };
        let (series, offsets) = synthetic_with_motifs(params);
        let panel = select_shapes(
            &series,
            ShapeBudget {
                count: 3,
                width: params.motif_width,
                epsilon: 3.0,
            },
        );
        // at least one planted occurrence is within epsilon of a shape
        let hit = offsets.iter().any(|&o| {
            panel
                .shapes
                .iter()
                .any(|s| crate::series::window_distance(&series, o, &s.values) <= 3.0)
        });
        assert!(hit, "no shape matches a planted motif");
    }

    #[test]
    fn cognitive_load_ordering() {
        let ramp: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let zigzag: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        assert_eq!(shape_cognitive_load(&ramp), 0.0);
        assert!(shape_cognitive_load(&zigzag) > 0.9);
        assert_eq!(shape_cognitive_load(&[1.0]), 0.0);
    }

    #[test]
    fn empty_series_panel() {
        let panel = select_shapes(&TimeSeries::new(vec![]), ShapeBudget::default());
        assert!(panel.shapes.is_empty());
        assert_eq!(panel.coverage, 0.0);
    }
}
