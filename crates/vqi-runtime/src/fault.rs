//! Seeded, deterministic fault injection.
//!
//! Tests and the `exp_faults` bench activate a global [`FaultPlan`]
//! (seed + per-kind rates); instrumented sites then ask "does a fault
//! fire here?" with a *stable key* — a candidate index, a partition
//! index, a stage name — and the answer is a pure function of
//! `(seed, site, key, kind)`. Because decisions are keyed by data and
//! never by call order or wall clock, the same plan injects the same
//! faults at thread caps 1, 2, and 4, which is what lets the
//! degraded-output determinism tests assert bit-identical results.
//!
//! Faults are **transient**: each `(site, key, kind)` fires at most
//! once per plan (a fired-once registry records it), so a retry of the
//! same work item succeeds — modelling the transient failures the
//! retry machinery exists for, deterministically.
//!
//! Observability: every fired fault bumps the `fault.injected`
//! counter; retry sites bump `fault.retried`; pipelines bump
//! `fault.degraded` when a stage is cut.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// What faults to inject and how often.
///
/// Rates are probabilities in `[0, 1]` applied independently per
/// `(site, key)`; `0` disables a kind, `1` fires it at every site
/// (once each, per the fired-once rule).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision; two seeds give two distinct
    /// (but each internally deterministic) fault patterns.
    pub seed: u64,
    /// Probability that [`maybe_panic`] panics.
    pub panic_rate: f64,
    /// Probability that [`maybe_timeout`] reports a stage timeout.
    pub timeout_rate: f64,
    /// Probability that [`nan_score`] poisons a score with NaN.
    pub nan_rate: f64,
    /// Probability that a crash point ([`maybe_crash`] /
    /// [`torn_write`]) kills the process. Unlike the other kinds a
    /// crash is *not* transient — the process dies — so it is meant for
    /// child-run harnesses that spawn a sacrificial process, observe
    /// the simulated `kill -9`, and then drive recovery from the
    /// parent.
    pub crash_rate: f64,
}

impl FaultPlan {
    /// A plan injecting all three *transient* kinds at `rate` with the
    /// given seed. Crash points stay disabled: a crash kills the whole
    /// process, so it is opted into explicitly by harnesses that spawn
    /// a sacrificial child.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_rate: rate,
            timeout_rate: rate,
            nan_rate: rate,
            crash_rate: 0.0,
        }
    }
}

struct State {
    plan: FaultPlan,
    fired: HashSet<u64>,
    /// When set, crash points fire only at this exact site — how the
    /// crash-matrix harness arms one crash mode at a time while the
    /// other modes' sites stay live in the same code path.
    crash_site: Option<String>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State {
            plan: FaultPlan::default(),
            fired: HashSet::new(),
            crash_site: None,
        })
    })
}

/// Activates `plan`, clearing the fired-once registry. Injection is
/// process-global; tests serialize around it.
pub fn set_plan(plan: FaultPlan) {
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.plan = plan;
    st.fired.clear();
    st.crash_site = None;
    ACTIVE.store(
        plan.panic_rate > 0.0
            || plan.timeout_rate > 0.0
            || plan.nan_rate > 0.0
            || plan.crash_rate > 0.0,
        Ordering::Relaxed,
    );
}

/// Restricts crash points to the named site (`None` lifts the
/// restriction). Call after [`set_plan`], which clears the filter.
pub fn set_crash_site(site: Option<&str>) {
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.crash_site = site.map(str::to_string);
}

/// Deactivates injection and clears the fired-once registry.
pub fn reset() {
    set_plan(FaultPlan::default());
}

/// Whether any fault kind is currently armed. The inactive fast path
/// of every injection site is this single relaxed load.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// FNV-1a over the site name: stable across runs and platforms.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer: the bit mixer used throughout the workspace.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

const KIND_PANIC: u64 = 0x50414e49; // "PANI"
const KIND_TIMEOUT: u64 = 0x54494d45; // "TIME"
const KIND_NAN: u64 = 0x4e414e53; // "NANS"
const KIND_CRASH: u64 = 0x43525348; // "CRSH"

/// The keyed decision: pure in `(seed, site, key, kind)`, subject to
/// the fired-once rule.
fn decide(kind: u64, site: &str, key: u64, rate: impl Fn(&FaultPlan) -> f64) -> bool {
    if !active() {
        return false;
    }
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    let r = rate(&st.plan).clamp(0.0, 1.0);
    if r <= 0.0 {
        return false;
    }
    let h = mix64(
        st.plan
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(fnv1a(site))
            ^ mix64(key.wrapping_add(kind)),
    );
    // map the hash to [0, 1) and compare against the rate
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    if u >= r {
        return false;
    }
    if !st.fired.insert(h ^ kind) {
        // already fired for this (site, key, kind): the retry passes
        return false;
    }
    drop(st);
    vqi_observe::incr("fault.injected", 1);
    if vqi_observe::journal_recording() {
        vqi_observe::instant(&format!("fault.injected:{site}#{key}"));
    }
    true
}

/// Panics (an injected kernel fault) when the plan says this
/// `(site, key)` should fail — at most once per plan.
pub fn maybe_panic(site: &str, key: u64) {
    if decide(KIND_PANIC, site, key, |p| p.panic_rate) {
        panic!("injected fault at {site}#{key}");
    }
}

/// Whether an injected stage timeout fires at this `(site, key)`.
pub fn maybe_timeout(site: &str, key: u64) -> bool {
    decide(KIND_TIMEOUT, site, key, |p| p.timeout_rate)
}

/// Returns `v`, or NaN when the plan poisons this `(site, key)`.
pub fn nan_score(site: &str, key: u64, v: f64) -> f64 {
    if decide(KIND_NAN, site, key, |p| p.nan_rate) {
        f64::NAN
    } else {
        v
    }
}

/// The crash decision: like [`decide`] but additionally gated on the
/// [`set_crash_site`] filter, and returning the decision hash so torn
/// writes can derive a seeded byte offset from it.
fn decide_crash(site: &str, key: u64) -> Option<u64> {
    if !active() {
        return None;
    }
    let st = state().lock().unwrap_or_else(|e| e.into_inner());
    let r = st.plan.crash_rate.clamp(0.0, 1.0);
    if r <= 0.0 {
        return None;
    }
    if let Some(filter) = &st.crash_site {
        if filter != site {
            return None;
        }
    }
    let h = mix64(
        st.plan
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(fnv1a(site))
            ^ mix64(key.wrapping_add(KIND_CRASH)),
    );
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    if u >= r {
        return None;
    }
    Some(h)
}

/// Kills the process on the spot — the simulated `kill -9` the crash
/// points resolve to. `abort` raises `SIGABRT` without unwinding or
/// flushing buffered writers, so whatever the code under test had not
/// pushed to the OS is genuinely lost, exactly like real process death.
pub fn crash_now(site: &str, key: u64) -> ! {
    // the counter is in-memory and dies with us; the stderr line is for
    // humans debugging a harness, parents only look at the exit status
    eprintln!("vqi-runtime: injected crash at {site}#{key}");
    std::process::abort();
}

/// Crash point: kills the process when the plan (and the crash-site
/// filter) says this `(site, key)` dies here. Pure per `(seed, site,
/// key)` like every other kind, so the same plan crashes the same
/// batch at any thread cap.
pub fn maybe_crash(site: &str, key: u64) {
    if decide_crash(site, key).is_some() {
        crash_now(site, key);
    }
}

/// Torn-write decision: when the plan crashes this `(site, key)`,
/// returns the seeded byte offset (in `[0, len)`) at which the caller
/// should cut its write before dying via [`crash_now`]. The offset is a
/// pure function of `(seed, site, key, len)`, so a torn tail lands at
/// the same byte in every run of the plan. Returns `None` (write
/// everything, live on) when the crash does not fire or `len` is 0.
pub fn torn_write(site: &str, key: u64, len: usize) -> Option<usize> {
    if len == 0 {
        return None;
    }
    decide_crash(site, key).map(|h| (mix64(h ^ 0x70524e) % len as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The plan is process-global; serialize the tests that touch it.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inactive_plan_never_fires() {
        let _g = lock();
        reset();
        assert!(!active());
        maybe_panic("site", 1); // must not panic
        maybe_crash("site", 1); // must not abort
        assert!(!maybe_timeout("site", 1));
        assert_eq!(nan_score("site", 1, 2.5), 2.5);
        assert_eq!(torn_write("site", 1, 100), None);
    }

    #[test]
    fn crash_decisions_are_pure_and_honor_the_site_filter() {
        let _g = lock();
        let plan = FaultPlan {
            seed: 11,
            crash_rate: 0.5,
            ..Default::default()
        };
        set_plan(plan);
        let offsets: Vec<Option<usize>> = (0..64).map(|k| torn_write("wal.append", k, 512)).collect();
        assert!(offsets.iter().any(|o| o.is_some()), "rate 0.5 fired nowhere");
        assert!(offsets.iter().any(|o| o.is_none()), "rate 0.5 fired everywhere");
        for o in offsets.iter().flatten() {
            assert!(*o < 512, "offset must cut inside the record");
        }
        // re-arming reproduces the exact offsets (pure in seed/site/key)
        set_plan(plan);
        let again: Vec<Option<usize>> = (0..64).map(|k| torn_write("wal.append", k, 512)).collect();
        assert_eq!(offsets, again);
        // repeated queries agree too: crashes bypass the fired-once
        // registry, because a fired crash never returns to ask again
        assert_eq!(torn_write("wal.append", 0, 512), again[0]);

        // a filter on another site silences this one; matching re-arms it
        set_plan(plan);
        set_crash_site(Some("wal.checkpoint"));
        assert!((0..64).all(|k| torn_write("wal.append", k, 512).is_none()));
        assert!((0..64).all(|k| {
            // maybe_crash must not abort while filtered out
            maybe_crash("wal.append", k);
            true
        }));
        set_crash_site(Some("wal.append"));
        let filtered: Vec<Option<usize>> = (0..64).map(|k| torn_write("wal.append", k, 512)).collect();
        assert_eq!(filtered, again, "the filter must not change decisions");
        reset();
    }

    #[test]
    fn decisions_are_keyed_not_ordered() {
        let _g = lock();
        let plan = FaultPlan {
            seed: 42,
            timeout_rate: 0.5,
            ..Default::default()
        };
        // query forward, record, then re-arm and query backward:
        // identical per-key answers regardless of order
        set_plan(plan);
        let forward: Vec<bool> = (0..64).map(|k| maybe_timeout("order", k)).collect();
        set_plan(plan);
        let backward: Vec<bool> = (0..64).rev().map(|k| maybe_timeout("order", k)).collect();
        let backward_fwd: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_fwd);
        assert!(forward.iter().any(|&b| b), "rate 0.5 fired nowhere");
        assert!(!forward.iter().all(|&b| b), "rate 0.5 fired everywhere");
        reset();
    }

    #[test]
    fn fired_once_lets_the_retry_pass() {
        let _g = lock();
        set_plan(FaultPlan {
            seed: 7,
            timeout_rate: 1.0,
            ..Default::default()
        });
        assert!(maybe_timeout("retry.site", 3));
        // the retry of the same work item succeeds
        assert!(!maybe_timeout("retry.site", 3));
        // a different key still fires
        assert!(maybe_timeout("retry.site", 4));
        reset();
    }

    #[test]
    fn seeds_and_sites_change_the_pattern() {
        let _g = lock();
        let pattern = |seed: u64, site: &str| -> Vec<bool> {
            set_plan(FaultPlan {
                seed,
                nan_rate: 0.4,
                ..Default::default()
            });
            let v = (0..128).map(|k| nan_score(site, k, 1.0).is_nan()).collect();
            reset();
            v
        };
        let a1 = pattern(1, "s");
        let a1_again = pattern(1, "s");
        let a2 = pattern(2, "s");
        let b1 = pattern(1, "t");
        assert_eq!(a1, a1_again, "same plan must reproduce exactly");
        assert_ne!(a1, a2, "different seeds should differ");
        assert_ne!(a1, b1, "different sites should differ");
    }

    #[test]
    fn injected_panic_carries_the_site() {
        let _g = lock();
        set_plan(FaultPlan {
            seed: 1,
            panic_rate: 1.0,
            ..Default::default()
        });
        let r = std::panic::catch_unwind(|| maybe_panic("kernel.vf2", 9));
        let payload = r.unwrap_err();
        let msg = crate::error::panic_reason(payload.as_ref());
        assert!(msg.contains("kernel.vf2#9"), "got: {msg}");
        reset();
    }
}
