//! The error vocabulary shared by every pipeline stage and kernel.

/// Why a stage or kernel could not run to completion.
///
/// Every pipeline stage returns `Result<_, VqiError>` on its
/// budget-aware path; the pipeline converts stage errors into a
/// `Degraded` outcome (or propagates them under `fail_fast`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VqiError {
    /// Malformed input text: the offending 1-based line and a reason.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// The wall-clock deadline of the [`crate::Budget`] passed.
    DeadlineExceeded {
        /// The stage or kernel that observed the deadline.
        stage: String,
    },
    /// The [`crate::CancelToken`] was triggered.
    Canceled {
        /// The stage or kernel that observed the cancellation.
        stage: String,
    },
    /// A deterministic per-invocation tick/node quota ran out.
    QuotaExceeded {
        /// The stage or kernel whose quota tripped.
        stage: String,
    },
    /// A stage or chunk panicked and the panic was isolated.
    Panic {
        /// The stage or kernel that panicked.
        stage: String,
        /// The panic payload, rendered best-effort.
        reason: String,
    },
}

impl VqiError {
    /// The stage name the error is attributed to (`None` for parse
    /// errors, which carry a line instead).
    pub fn stage(&self) -> Option<&str> {
        match self {
            VqiError::Parse { .. } => None,
            VqiError::DeadlineExceeded { stage }
            | VqiError::Canceled { stage }
            | VqiError::QuotaExceeded { stage }
            | VqiError::Panic { stage, .. } => Some(stage),
        }
    }

    /// A short stable tag (`deadline`, `canceled`, ...) used in fault
    /// lists and metrics names.
    pub fn tag(&self) -> &'static str {
        match self {
            VqiError::Parse { .. } => "parse",
            VqiError::DeadlineExceeded { .. } => "deadline",
            VqiError::Canceled { .. } => "canceled",
            VqiError::QuotaExceeded { .. } => "quota",
            VqiError::Panic { .. } => "panic",
        }
    }
}

impl std::fmt::Display for VqiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VqiError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            VqiError::DeadlineExceeded { stage } => write!(f, "deadline exceeded in {stage}"),
            VqiError::Canceled { stage } => write!(f, "canceled in {stage}"),
            VqiError::QuotaExceeded { stage } => write!(f, "work quota exceeded in {stage}"),
            VqiError::Panic { stage, reason } => write!(f, "panic in {stage}: {reason}"),
        }
    }
}

impl std::error::Error for VqiError {}

/// Renders a panic payload from `catch_unwind` best-effort: `&str` and
/// `String` payloads (the overwhelmingly common cases) are shown
/// verbatim, anything else as a placeholder.
pub fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_stage_and_line() {
        let e = VqiError::Parse {
            line: 7,
            reason: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 7: bad token");
        assert_eq!(e.stage(), None);
        assert_eq!(e.tag(), "parse");

        let e = VqiError::DeadlineExceeded {
            stage: "catapult.greedy".into(),
        };
        assert!(e.to_string().contains("catapult.greedy"));
        assert_eq!(e.stage(), Some("catapult.greedy"));
        assert_eq!(e.tag(), "deadline");

        let e = VqiError::Panic {
            stage: "tattoo.map".into(),
            reason: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        assert_eq!(e.tag(), "panic");
    }

    #[test]
    fn panic_reason_renders_common_payloads() {
        let r = std::panic::catch_unwind(|| panic!("plain message")).unwrap_err();
        assert_eq!(panic_reason(r.as_ref()), "plain message");
        let r = std::panic::catch_unwind(|| panic!("{} {}", "formatted", 3)).unwrap_err();
        assert_eq!(panic_reason(r.as_ref()), "formatted 3");
        let r = std::panic::catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert_eq!(panic_reason(r.as_ref()), "opaque panic payload");
    }
}
