//! `vqi-runtime` — the runtime-robustness layer shared by every
//! selection pipeline.
//!
//! The paper's systems sit behind an *interactive* GUI: a slow or
//! failed kernel must degrade the canned-pattern set, never hang or
//! crash the interface. This crate provides the three mechanisms the
//! pipelines thread through their stages and hot kernels:
//!
//! * [`ctrl`] — a shared [`Budget`] combining a wall-clock deadline, a
//!   cooperative [`CancelToken`], and a deterministic per-invocation
//!   kernel-tick quota, consulted via cheap periodic [`Meter::tick`]
//!   checks inside VF2 / MCS / truss / ESU recursions and via
//!   [`Budget::check`] at stage and candidate granularity;
//! * [`error`] — the [`VqiError`] type every stage returns instead of
//!   panicking;
//! * [`fault`] — a seeded, *deterministic* fault-injection harness
//!   (kernel panics, stage timeouts, NaN scores) used by tests and the
//!   `exp_faults` bench to prove every pipeline ends `Complete` or
//!   `Degraded`, never panics, with identical outcomes at any thread
//!   count.
//!
//! Determinism contract: tick quotas and fault decisions are keyed by
//! *stable data* (per-invocation counters, site names, item indices) —
//! never by wall-clock or call order across threads — so a tripped
//! budget or injected fault produces the same degraded output at
//! thread caps 1, 2, and 4. The wall-clock deadline and the cancel
//! flag are best-effort by nature: they only decide *whether* a run
//! degrades, while the tick-quota path keeps *what* a degraded run
//! returns reproducible in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctrl;
pub mod error;
pub mod fault;

pub use ctrl::{run_stage, Budget, CancelToken, Meter};
pub use error::VqiError;
