//! Budgets, cancellation, and periodic in-kernel checks.
//!
//! A [`Budget`] is created once per pipeline run and threaded by
//! reference through every stage. Stages call [`Budget::check`] at
//! coarse granularity (per stage, per candidate, per greedy round);
//! hot kernels obtain a fresh [`Meter`] per invocation and call
//! [`Meter::tick`] once per recursion node / peeled edge / extension,
//! which costs a branch and a counter on the common path and polls the
//! wall clock and cancel flag only every [`POLL_INTERVAL`] ticks.
//!
//! Two of the three limits are deterministic and two are best-effort:
//!
//! * the **kernel-tick quota** is per-invocation and counts work
//!   items, so the same input trips at the same tick at any thread
//!   count — this is what determinism tests use;
//! * the **wall-clock deadline** and the **cancel flag** depend on
//!   real time and so decide only *whether* a run degrades, not what
//!   a degraded run contains.

use crate::error::VqiError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many [`Meter::tick`]s pass between wall-clock/cancel polls.
pub const POLL_INTERVAL: u32 = 1024;

/// Marks a budget trip in the trace journal so a trace shows *why* a
/// run degraded. Only error paths reach this, so the hot tick/check
/// paths stay free of it; the disabled cost is one relaxed load.
#[inline]
fn trip_instant(kind: &str, stage: &str) {
    if vqi_observe::journal_recording() {
        vqi_observe::instant(&format!("budget.trip:{kind}:{stage}"));
    }
}

/// A shared cooperative cancellation flag.
///
/// Clones share the flag: a GUI (or test) holds one clone and calls
/// [`CancelToken::cancel`]; the pipeline's meters observe it at the
/// next poll boundary.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-canceled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The per-run budget: wall-clock deadline, cancel flag, deterministic
/// kernel-tick quota, and the fail-fast policy switch.
///
/// The default ([`Budget::unlimited`]) imposes no limits; pipelines
/// running under it produce output bit-identical to the budget-free
/// entry points.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: CancelToken,
    kernel_ticks: Option<u64>,
    fail_fast: bool,
}

impl Budget {
    /// A budget with no deadline, no quota, and a fresh cancel token.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets a wall-clock deadline `ms` milliseconds from now.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self
    }

    /// Sets a deterministic per-kernel-invocation tick quota. Every
    /// [`Meter`] handed out by this budget starts with `ticks`
    /// remaining, so the quota trips at the same point in the same
    /// kernel call regardless of thread count.
    pub fn with_kernel_ticks(mut self, ticks: u64) -> Self {
        self.kernel_ticks = Some(ticks);
        self
    }

    /// Attaches an externally held cancel token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Makes stage errors propagate as `Err` out of the pipeline
    /// instead of degrading the outcome.
    pub fn with_fail_fast(mut self, on: bool) -> Self {
        self.fail_fast = on;
        self
    }

    /// The cancel token this budget polls.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The wall-clock deadline, if one is set. Blocking layers in front
    /// of a pipeline (e.g. `vqi-serve` admission queues) bound their
    /// waits by this instant so a queued request cannot outlive its own
    /// budget.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time remaining until the deadline (`None` when no deadline is
    /// set, zero when it has already passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether stage errors should propagate instead of degrade.
    pub fn fail_fast(&self) -> bool {
        self.fail_fast
    }

    /// Whether this budget can never trip (no deadline, no quota, and
    /// the token has not been canceled yet).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.kernel_ticks.is_none() && !self.cancel.is_canceled()
    }

    /// Coarse-grained check used at stage/candidate/round boundaries.
    /// Cancel wins over deadline when both are due.
    #[inline]
    pub fn check(&self, stage: &str) -> Result<(), VqiError> {
        if self.cancel.is_canceled() {
            trip_instant("canceled", stage);
            return Err(VqiError::Canceled {
                stage: stage.to_string(),
            });
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                trip_instant("deadline", stage);
                return Err(VqiError::DeadlineExceeded {
                    stage: stage.to_string(),
                });
            }
        }
        Ok(())
    }

    /// A fresh per-invocation [`Meter`] for a kernel call attributed
    /// to `stage`.
    pub fn meter(&self, stage: &'static str) -> Meter {
        Meter {
            stage,
            quota: self.kernel_ticks,
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            since_poll: 0,
        }
    }
}

/// A per-kernel-invocation tick counter; see [`Budget::meter`].
#[derive(Clone, Debug)]
pub struct Meter {
    stage: &'static str,
    /// Remaining deterministic ticks, `None` = no quota.
    quota: Option<u64>,
    deadline: Option<Instant>,
    cancel: CancelToken,
    since_poll: u32,
}

impl Meter {
    /// A meter that never trips (for kernel paths whose caller has no
    /// budget).
    pub fn unarmed(stage: &'static str) -> Meter {
        Meter {
            stage,
            quota: None,
            deadline: None,
            cancel: CancelToken::new(),
            since_poll: 0,
        }
    }

    /// Counts one unit of kernel work. The deterministic quota is
    /// decremented every call; the wall clock and cancel flag are
    /// polled every [`POLL_INTERVAL`] calls.
    #[inline]
    pub fn tick(&mut self) -> Result<(), VqiError> {
        if let Some(left) = &mut self.quota {
            if *left == 0 {
                trip_instant("quota", self.stage);
                return Err(VqiError::QuotaExceeded {
                    stage: self.stage.to_string(),
                });
            }
            *left -= 1;
        }
        self.since_poll += 1;
        if self.since_poll >= POLL_INTERVAL {
            self.since_poll = 0;
            if self.cancel.is_canceled() {
                trip_instant("canceled", self.stage);
                return Err(VqiError::Canceled {
                    stage: self.stage.to_string(),
                });
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    trip_instant("deadline", self.stage);
                    return Err(VqiError::DeadlineExceeded {
                        stage: self.stage.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Runs one pipeline stage under the budget: checks the budget first,
/// honors an injected stage timeout, and isolates panics into
/// [`VqiError::Panic`].
///
/// The closure's own `Result` (if any) is the caller's to flatten;
/// this wrapper only adds the budget/panic envelope.
pub fn run_stage<T>(budget: &Budget, stage: &str, f: impl FnOnce() -> T) -> Result<T, VqiError> {
    budget.check(stage)?;
    if crate::fault::maybe_timeout(stage, 0) {
        if vqi_observe::journal_recording() {
            vqi_observe::instant(&format!("fault.timeout:{stage}"));
        }
        return Err(VqiError::DeadlineExceeded {
            stage: stage.to_string(),
        });
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            if vqi_observe::journal_recording() {
                vqi_observe::instant(&format!("stage.panic:{stage}"));
            }
            Err(VqiError::Panic {
                stage: stage.to_string(),
                reason: crate::error::panic_reason(payload.as_ref()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check("s").is_ok());
        let mut m = b.meter("kernel.test");
        for _ in 0..10_000 {
            assert!(m.tick().is_ok());
        }
    }

    #[test]
    fn tick_quota_trips_at_exactly_n() {
        let b = Budget::unlimited().with_kernel_ticks(5);
        assert!(!b.is_unlimited());
        let mut m = b.meter("kernel.test");
        for _ in 0..5 {
            assert!(m.tick().is_ok());
        }
        let err = m.tick().unwrap_err();
        assert_eq!(
            err,
            VqiError::QuotaExceeded {
                stage: "kernel.test".into()
            }
        );
        // each invocation gets a fresh meter: the quota is per-call
        let mut m2 = b.meter("kernel.test");
        assert!(m2.tick().is_ok());
    }

    #[test]
    fn deadline_accessors_report_the_budget() {
        let b = Budget::unlimited();
        assert!(b.deadline().is_none());
        assert!(b.remaining().is_none());
        let b = Budget::unlimited().with_deadline_ms(60_000);
        let d = b.deadline().expect("deadline set");
        assert!(d > Instant::now());
        let left = b.remaining().expect("remaining set");
        assert!(left > Duration::from_secs(1) && left <= Duration::from_secs(60));
        let expired = Budget::unlimited().with_deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancel_is_seen_by_check_and_meter() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        assert!(b.check("s").is_ok());
        token.cancel();
        assert!(matches!(b.check("s"), Err(VqiError::Canceled { .. })));
        let mut m = b.meter("kernel.test");
        let mut tripped = None;
        for _ in 0..(POLL_INTERVAL * 2) {
            if let Err(e) = m.tick() {
                tripped = Some(e);
                break;
            }
        }
        assert!(matches!(tripped, Some(VqiError::Canceled { .. })));
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let b = Budget::unlimited().with_deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            b.check("s"),
            Err(VqiError::DeadlineExceeded { .. })
        ));
        let mut m = b.meter("kernel.test");
        let mut tripped = false;
        for _ in 0..(POLL_INTERVAL * 2) {
            if m.tick().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn run_stage_isolates_panics() {
        let b = Budget::unlimited();
        assert_eq!(run_stage(&b, "ok", || 7).unwrap(), 7);
        let err = run_stage(&b, "bad", || -> i32 { panic!("kaboom") }).unwrap_err();
        match err {
            VqiError::Panic { stage, reason } => {
                assert_eq!(stage, "bad");
                assert_eq!(reason, "kaboom");
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn run_stage_respects_budget_before_running() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited().with_cancel(token);
        let mut ran = false;
        let r = run_stage(&b, "s", || ran = true);
        assert!(matches!(r, Err(VqiError::Canceled { .. })));
        assert!(!ran);
    }
}
