//! Synthetic datasets standing in for the proprietary corpora used by the
//! surveyed systems (substitutions documented in DESIGN.md §3).
//!
//! * [`molecules`] — AIDS/PubChem-style collections: many small sparse
//!   labeled graphs with fused ring systems and pendant chains, skewed
//!   atom/bond label distributions;
//! * [`networks`] — DBLP/Twitter-style large networks: heavy-tailed
//!   degree distributions (Barabási–Albert) with optional triangle
//!   reinforcement, plus Erdős–Rényi controls.
//!
//! All builders are deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod molecules;
pub mod networks;

pub use molecules::{aids_like, pubchem_like, MoleculeParams};
pub use networks::{dblp_like, social_like, NetworkParams};
