//! Molecule-like data-graph collections.
//!
//! Chemical-compound repositories (AIDS antiviral screen, PubChem,
//! eMolecules) are the canonical CATAPULT workload: thousands of small
//! sparse graphs built from fused rings and chains, with a heavily skewed
//! atom alphabet (mostly carbon) and a handful of bond types. The
//! generator reproduces those regime features:
//!
//! * each molecule is 0–3 fused 5/6-rings plus pendant chains;
//! * atom labels: C 70 %, N 12 %, O 12 %, S 4 %, Cl 2 %
//!   (labels 0–4 in that order);
//! * bond labels: single 80 %, double 18 %, triple 2 % (labels 0–2);
//! * every molecule is connected.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vqi_graph::{Graph, Label, NodeId};

/// Atom label constants.
pub mod atoms {
    /// Carbon.
    pub const C: u32 = 0;
    /// Nitrogen.
    pub const N: u32 = 1;
    /// Oxygen.
    pub const O: u32 = 2;
    /// Sulfur.
    pub const S: u32 = 3;
    /// Chlorine.
    pub const CL: u32 = 4;
}

/// Bond label constants.
pub mod bonds {
    /// Single bond.
    pub const SINGLE: u32 = 0;
    /// Double bond.
    pub const DOUBLE: u32 = 1;
    /// Triple bond.
    pub const TRIPLE: u32 = 2;
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct MoleculeParams {
    /// Number of molecules.
    pub count: usize,
    /// Maximum fused rings per molecule.
    pub max_rings: usize,
    /// Maximum pendant chains per molecule.
    pub max_chains: usize,
    /// Maximum pendant-chain length.
    pub max_chain_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoleculeParams {
    fn default() -> Self {
        MoleculeParams {
            count: 100,
            max_rings: 3,
            max_chains: 4,
            max_chain_len: 4,
            seed: 0xD47A,
        }
    }
}

fn atom_label<R: Rng>(rng: &mut R) -> Label {
    let x: f64 = rng.gen();
    if x < 0.70 {
        atoms::C
    } else if x < 0.82 {
        atoms::N
    } else if x < 0.94 {
        atoms::O
    } else if x < 0.98 {
        atoms::S
    } else {
        atoms::CL
    }
}

fn bond_label<R: Rng>(rng: &mut R) -> Label {
    let x: f64 = rng.gen();
    if x < 0.80 {
        bonds::SINGLE
    } else if x < 0.98 {
        bonds::DOUBLE
    } else {
        bonds::TRIPLE
    }
}

/// Generates one molecule.
pub fn molecule<R: Rng>(params: &MoleculeParams, rng: &mut R) -> Graph {
    let mut g = Graph::new();
    let rings = rng.gen_range(0..=params.max_rings);
    let mut ring_atoms: Vec<NodeId> = Vec::new();
    for r in 0..rings {
        let len = if rng.gen_bool(0.6) { 6 } else { 5 };
        if r == 0 || ring_atoms.is_empty() {
            // fresh ring
            let first = g.add_node(atom_label(rng));
            let mut prev = first;
            let mut atoms_in_ring = vec![first];
            for _ in 1..len {
                let v = g.add_node(atom_label(rng));
                g.add_edge(prev, v, bond_label(rng));
                atoms_in_ring.push(v);
                prev = v;
            }
            g.add_edge(prev, first, bond_label(rng));
            ring_atoms.extend(atoms_in_ring);
        } else {
            // fuse to an existing ring edge: share two adjacent atoms
            let share_idx = rng.gen_range(0..ring_atoms.len());
            let a = ring_atoms[share_idx];
            let b = g
                .neighbors(a)
                .map(|(v, _)| v)
                .next()
                .unwrap_or(ring_atoms[0]);
            let mut prev = a;
            let mut added = Vec::new();
            for _ in 0..(len - 2) {
                let v = g.add_node(atom_label(rng));
                g.add_edge(prev, v, bond_label(rng));
                added.push(v);
                prev = v;
            }
            g.add_edge(prev, b, bond_label(rng));
            ring_atoms.extend(added);
        }
    }
    if g.node_count() == 0 {
        // acyclic molecule: start from a single atom
        g.add_node(atom_label(rng));
    }
    // pendant chains
    let chains = rng.gen_range(0..=params.max_chains);
    for _ in 0..chains {
        let attach_to = NodeId(rng.gen_range(0..g.node_count() as u32));
        let len = rng.gen_range(1..=params.max_chain_len);
        let mut prev = attach_to;
        for _ in 0..len {
            let v = g.add_node(atom_label(rng));
            g.add_edge(prev, v, bond_label(rng));
            prev = v;
        }
    }
    g
}

/// An AIDS-like collection: `params.count` molecules.
pub fn aids_like(params: MoleculeParams) -> Vec<Graph> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    (0..params.count)
        .map(|_| molecule(&params, &mut rng))
        .collect()
}

/// A PubChem-like collection: larger molecules, more rings and chains.
pub fn pubchem_like(count: usize, seed: u64) -> Vec<Graph> {
    aids_like(MoleculeParams {
        count,
        max_rings: 4,
        max_chains: 6,
        max_chain_len: 5,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::traversal::is_connected;

    #[test]
    fn molecules_are_connected_and_labeled() {
        let graphs = aids_like(MoleculeParams {
            count: 50,
            ..Default::default()
        });
        assert_eq!(graphs.len(), 50);
        for g in &graphs {
            assert!(g.node_count() >= 1);
            assert!(is_connected(g), "disconnected molecule {}", g.summary());
            for v in g.nodes() {
                assert!(g.node_label(v) <= atoms::CL);
            }
            for e in g.edges() {
                assert!(g.edge_label(e) <= bonds::TRIPLE);
            }
        }
    }

    #[test]
    fn carbon_dominates() {
        let graphs = aids_like(MoleculeParams {
            count: 100,
            ..Default::default()
        });
        let mut carbon = 0usize;
        let mut total = 0usize;
        for g in &graphs {
            for v in g.nodes() {
                total += 1;
                if g.node_label(v) == atoms::C {
                    carbon += 1;
                }
            }
        }
        let frac = carbon as f64 / total as f64;
        assert!(frac > 0.6 && frac < 0.8, "carbon fraction {frac}");
    }

    #[test]
    fn ring_systems_produce_cycles() {
        let graphs = aids_like(MoleculeParams {
            count: 100,
            ..Default::default()
        });
        let with_cycle = graphs
            .iter()
            .filter(|g| g.edge_count() >= g.node_count())
            .count();
        assert!(with_cycle > 30, "only {with_cycle} cyclic molecules");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = aids_like(MoleculeParams::default());
        let b = aids_like(MoleculeParams::default());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.node_count(), y.node_count());
            assert_eq!(x.edge_count(), y.edge_count());
        }
    }

    #[test]
    fn pubchem_like_is_bigger_on_average() {
        let small = aids_like(MoleculeParams {
            count: 80,
            seed: 1,
            ..Default::default()
        });
        let big = pubchem_like(80, 1);
        let avg = |gs: &[Graph]| {
            gs.iter().map(|g| g.node_count()).sum::<usize>() as f64 / gs.len() as f64
        };
        assert!(avg(&big) > avg(&small));
    }
}
