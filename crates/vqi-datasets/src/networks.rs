//! Large-network datasets.
//!
//! Coauthorship (DBLP) and social (Twitter) networks share heavy-tailed
//! degree distributions and — for coauthorship — strong triangle
//! closure. The builders here start from Barabási–Albert preferential
//! attachment, optionally reinforce triangles (each new node also closes
//! a random wedge with probability `closure_prob`), and assign skewed
//! labels to model entity/relationship types.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vqi_graph::generate::{assign_labels, barabasi_albert};
use vqi_graph::{Graph, NodeId};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetworkParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Attachment edges per new node.
    pub attachment: usize,
    /// Probability of closing a wedge per new node (triangle
    /// reinforcement).
    pub closure_prob: f64,
    /// Number of node label classes.
    pub node_labels: u32,
    /// Number of edge label classes.
    pub edge_labels: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            nodes: 1_000,
            attachment: 3,
            closure_prob: 0.4,
            node_labels: 6,
            edge_labels: 3,
            seed: 0xBEEF,
        }
    }
}

/// Builds a network per `params`.
pub fn network(params: NetworkParams) -> Graph {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut g = barabasi_albert(params.nodes, params.attachment, 0, &mut rng);
    // triangle reinforcement: close random wedges
    let closures = (params.nodes as f64 * params.closure_prob) as usize;
    for _ in 0..closures {
        let v = NodeId(rng.gen_range(0..g.node_count() as u32));
        let nbrs: Vec<NodeId> = g.neighbors(v).map(|(u, _)| u).collect();
        if nbrs.len() >= 2 {
            let a = nbrs[rng.gen_range(0..nbrs.len())];
            let b = nbrs[rng.gen_range(0..nbrs.len())];
            if a != b {
                g.add_edge(a, b, 0);
            }
        }
    }
    assign_labels(&mut g, params.node_labels, params.edge_labels, &mut rng);
    g
}

/// A DBLP-like coauthorship network: strong clustering, modest label
/// alphabet.
pub fn dblp_like(nodes: usize, seed: u64) -> Graph {
    network(NetworkParams {
        nodes,
        attachment: 3,
        closure_prob: 0.6,
        node_labels: 5,
        edge_labels: 2,
        seed,
    })
}

/// A social-network-like graph: bigger hubs, weaker closure.
pub fn social_like(nodes: usize, seed: u64) -> Graph {
    network(NetworkParams {
        nodes,
        attachment: 5,
        closure_prob: 0.2,
        node_labels: 8,
        edge_labels: 4,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::metrics::clustering_coefficient;
    use vqi_graph::traversal::is_connected;

    #[test]
    fn networks_are_connected() {
        let g = dblp_like(500, 1);
        assert_eq!(g.node_count(), 500);
        assert!(is_connected(&g));
    }

    #[test]
    fn closure_raises_clustering() {
        let open = network(NetworkParams {
            nodes: 600,
            closure_prob: 0.0,
            seed: 2,
            ..Default::default()
        });
        let closed = network(NetworkParams {
            nodes: 600,
            closure_prob: 1.5,
            seed: 2,
            ..Default::default()
        });
        assert!(
            clustering_coefficient(&closed) > clustering_coefficient(&open),
            "triangle reinforcement should raise clustering"
        );
    }

    #[test]
    fn labels_are_in_range() {
        let g = social_like(300, 3);
        for v in g.nodes() {
            assert!(g.node_label(v) < 8);
        }
        for e in g.edges() {
            assert!(g.edge_label(e) < 4);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = dblp_like(200, 9);
        let b = dblp_like(200, 9);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn heavy_tail_exists() {
        let g = social_like(800, 4);
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(max_deg as f64 > 4.0 * avg, "max {max_deg} vs avg {avg}");
    }
}
