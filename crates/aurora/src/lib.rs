//! AURORA — data-driven construction of visual graph query interfaces
//! from frequent subgraphs (Bhowmick et al., SIGMOD 2020 — reference
//! [12] of the tutorial, the system whose codebase headlines Table 1's
//! "Data-driven construction" row).
//!
//! Where CATAPULT proposes candidates from cluster summaries, the
//! AURORA lineage draws them from the **frequent subgraphs** of the
//! repository: a pattern users will want is, almost by definition, a
//! structure that recurs across data graphs. The pipeline here:
//!
//! 1. mine frequent connected subgraphs within the budget's size range
//!    ([`vqi_mining::fsg`] — pattern growth with cycle closure, so ring
//!    structures are first-class, unlike tree-feature mining);
//! 2. keep the budget-admissible patterns as candidates (their support
//!    sets double as exact coverage bitsets — no extra VF2 pass);
//! 3. select greedily under the same coverage / diversity /
//!    cognitive-load score as every other selector in this workspace,
//!    so E3-style comparisons are apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rayon::prelude::*;
use vqi_core::budget::PatternBudget;
use vqi_core::pattern::{PatternKind, PatternSet};
use vqi_core::repo::{GraphCollection, GraphRepository};
use vqi_core::score::{cognitive_load, QualityWeights};
use vqi_core::selector::PatternSelector;
use vqi_graph::mcs::mcs_similarity;
use vqi_graph::Graph;
use vqi_mining::fsg::{mine_frequent_subgraphs, FrequentSubgraph, FsgParams};

/// AURORA configuration.
#[derive(Debug, Clone, Copy)]
pub struct AuroraConfig {
    /// Minimum support as a fraction of the collection size.
    pub min_support_frac: f64,
    /// Per-level mining beam width.
    pub beam_width: usize,
    /// Score weights.
    pub weights: QualityWeights,
}

impl Default for AuroraConfig {
    fn default() -> Self {
        AuroraConfig {
            min_support_frac: 0.1,
            beam_width: 150,
            weights: QualityWeights::default(),
        }
    }
}

/// The AURORA selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aurora {
    /// Configuration.
    pub config: AuroraConfig,
}

impl Aurora {
    /// A selector with the given configuration.
    pub fn new(config: AuroraConfig) -> Self {
        Aurora { config }
    }

    /// Runs the pipeline on a collection.
    pub fn run(&self, collection: &GraphCollection, budget: &PatternBudget) -> PatternSet {
        let ids = collection.ids();
        let n = ids.len();
        let mut set = PatternSet::new();
        if n == 0 {
            return set;
        }
        let graphs: Vec<Graph> = ids
            .iter()
            .map(|&id| collection.get(id).expect("live id").clone())
            .collect();
        let min_support = ((self.config.min_support_frac * n as f64).ceil() as usize)
            .max(2)
            .min(n);
        let mined = mine_frequent_subgraphs(
            &graphs,
            FsgParams {
                min_support,
                max_nodes: budget.max_size,
                beam_width: self.config.beam_width,
            },
        );
        // candidates: admissible frequent subgraphs; support sets are
        // exact coverage over `graphs` positions
        let candidates: Vec<FrequentSubgraph> = mined
            .into_iter()
            .filter(|m| budget.admits(&m.graph))
            .collect();
        let loads: Vec<f64> = candidates
            .par_iter()
            .map(|c| cognitive_load(&c.graph))
            .collect();

        let mut covered = vec![false; n];
        let mut available: Vec<usize> = (0..candidates.len()).collect();
        let mut chosen_graphs: Vec<&Graph> = Vec::new();
        while set.len() < budget.count && !available.is_empty() {
            let scores: Vec<f64> = available
                .par_iter()
                .map(|&ci| {
                    let c = &candidates[ci];
                    let gain = c.support_set.iter().filter(|&&pos| !covered[pos]).count() as f64
                        / n as f64;
                    let div = if chosen_graphs.is_empty() {
                        1.0
                    } else {
                        1.0 - chosen_graphs
                            .iter()
                            .map(|q| mcs_similarity(&c.graph, q))
                            .fold(0.0f64, f64::max)
                    };
                    gain + self.config.weights.diversity * div
                        - self.config.weights.cognitive * loads[ci]
                })
                .collect();
            // total_cmp instead of partial_cmp().expect("finite"): with
            // non-finite weights the score arithmetic can produce NaN
            // (inf - inf), which must pick a deterministic argmax rather
            // than panic the selection
            let (best_pos, &best) = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("nonempty");
            let ci = available[best_pos];
            let gains = candidates[ci].support_set.iter().any(|&pos| !covered[pos]);
            if best <= 0.0 && !gains {
                break;
            }
            available.swap_remove(best_pos);
            for &pos in &candidates[ci].support_set {
                covered[pos] = true;
            }
            let prov = format!("aurora:sup{}", candidates[ci].support());
            if set
                .insert(candidates[ci].graph.clone(), PatternKind::Canned, prov)
                .is_ok()
            {
                chosen_graphs.push(&candidates[ci].graph);
            }
        }
        set
    }
}

impl PatternSelector for Aurora {
    fn name(&self) -> &'static str {
        "aurora"
    }

    fn select(&self, repo: &GraphRepository, budget: &PatternBudget) -> PatternSet {
        match repo {
            GraphRepository::Collection(c) => self.run(c, budget),
            GraphRepository::Network(g) => {
                // mirror CATAPULT's honest network fallback: ego-network
                // decomposition, since frequent-subgraph support needs a
                // collection of contexts
                const EGO_CAP: usize = 20;
                let egos: Vec<Graph> = g
                    .nodes()
                    .map(|v| {
                        let mut nodes = vec![v];
                        nodes.extend(g.neighbors(v).map(|(u, _)| u).take(EGO_CAP));
                        g.induced_subgraph(&nodes).0
                    })
                    .collect();
                self.run(&GraphCollection::new(egos), budget)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_core::score::{evaluate, pattern_coverage};
    use vqi_datasets::{aids_like, MoleculeParams};
    use vqi_graph::generate::{chain, cycle, star};
    use vqi_graph::traversal::is_connected;

    fn collection() -> GraphCollection {
        let mut graphs = Vec::new();
        for i in 0..8 {
            graphs.push(cycle(5 + i % 2, 1, 0));
            graphs.push(chain(6 + i % 3, 1, 0));
            graphs.push(star(4 + i % 2, 2, 0));
        }
        GraphCollection::new(graphs)
    }

    #[test]
    fn selection_contract() {
        let col = collection();
        let budget = PatternBudget::new(5, 4, 6);
        let set = Aurora::default().run(&col, &budget);
        assert!(!set.is_empty());
        assert!(set.len() <= 5);
        for p in set.patterns() {
            assert!(budget.admits(&p.graph));
            assert!(is_connected(&p.graph));
            assert!(pattern_coverage(&p.graph, &col) > 0.0);
            assert!(p.provenance.starts_with("aurora:sup"));
        }
    }

    #[test]
    fn non_finite_weights_never_panic_selection() {
        // infinite weights make every score after the first pick
        // inf - inf = NaN; total_cmp picks a deterministic argmax where
        // the old partial_cmp().expect("finite") panicked
        let col = collection();
        let budget = PatternBudget::new(4, 4, 6);
        let aurora = Aurora::new(AuroraConfig {
            weights: QualityWeights {
                diversity: f64::INFINITY,
                cognitive: f64::INFINITY,
            },
            ..Default::default()
        });
        let a = aurora.run(&col, &budget);
        let b = aurora.run(&col, &budget);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len(), "NaN argmax must stay deterministic");
        for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(pa.code, pb.code);
        }
    }

    #[test]
    fn finds_ring_patterns() {
        let col = collection();
        let budget = PatternBudget::new(6, 4, 6);
        let set = Aurora::default().run(&col, &budget);
        // half the collection is rings; a cyclic pattern must be selected
        assert!(
            set.graphs().any(|g| g.edge_count() >= g.node_count()),
            "no cyclic pattern selected"
        );
    }

    #[test]
    fn competitive_with_random_on_molecules() {
        use vqi_core::selector::RandomSelector;
        let graphs = aids_like(MoleculeParams {
            count: 50,
            seed: 3,
            max_rings: 1,
            max_chains: 2,
            max_chain_len: 2,
        });
        let repo = GraphRepository::collection(graphs);
        let budget = PatternBudget::new(5, 4, 6);
        let w = QualityWeights::default();
        let aurora_q = evaluate(&Aurora::default().select(&repo, &budget), &repo, w);
        let random_q = evaluate(&RandomSelector::new(9).select(&repo, &budget), &repo, w);
        assert!(
            aurora_q.score >= random_q.score,
            "aurora {:.3} < random {:.3}",
            aurora_q.score,
            random_q.score
        );
    }

    #[test]
    fn empty_collection() {
        let set = Aurora::default().run(&GraphCollection::new(vec![]), &PatternBudget::default());
        assert!(set.is_empty());
    }

    #[test]
    fn deterministic() {
        let col = collection();
        let budget = PatternBudget::new(4, 4, 6);
        let a = Aurora::default().run(&col, &budget);
        let b = Aurora::default().run(&col, &budget);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(pa.code, pb.code);
        }
    }
}
