//! Minimal flag parser (no external dependency): `--key value` or
//! `--key=value` pairs and one positional subcommand. `--metrics`
//! (shorthand for `--metrics=table`) and `--fail-fast` (shorthand for
//! `--fail-fast=true`) are the valueless flags.

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// `--key value` options.
    pub options: BTreeMap<String, String>,
}

/// Errors from parsing or validating arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if let Some((k, v)) = key.split_once('=') {
                    args.options.insert(k.to_string(), v.to_string());
                } else if key == "metrics" {
                    // bare `--metrics` is shorthand for `--metrics=table`
                    args.options
                        .insert("metrics".to_string(), "table".to_string());
                } else if key == "fail-fast" {
                    // bare `--fail-fast` is shorthand for `--fail-fast=true`
                    args.options
                        .insert("fail-fast".to_string(), "true".to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
                    args.options.insert(key.to_string(), value);
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected positional argument '{tok}'")));
            }
        }
        Ok(args)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| ArgError(format!("missing required --{key}")))
    }

    /// An optional string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// An optional parsed option with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} has invalid value '{v}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Result<Args, ArgError> {
        Args::parse(toks.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["construct", "--selector", "tattoo", "--count", "5"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("construct"));
        assert_eq!(a.require("selector").unwrap(), "tattoo");
        assert_eq!(a.parse_or::<usize>("count", 0).unwrap(), 5);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["evaluate"]).unwrap();
        assert_eq!(a.get_or("selector", "catapult"), "catapult");
        assert_eq!(a.parse_or::<usize>("count", 6).unwrap(), 6);
    }

    #[test]
    fn equals_form_parses() {
        let a = parse(&["construct", "--selector=tattoo", "--count=5"]).unwrap();
        assert_eq!(a.require("selector").unwrap(), "tattoo");
        assert_eq!(a.parse_or::<usize>("count", 0).unwrap(), 5);
    }

    #[test]
    fn metrics_flag_forms() {
        let bare = parse(&["evaluate", "--metrics"]).unwrap();
        assert_eq!(bare.get_or("metrics", "off"), "table");
        let json = parse(&["evaluate", "--metrics=json"]).unwrap();
        assert_eq!(json.get_or("metrics", "off"), "json");
        // bare --metrics must not swallow a following option pair
        let mixed = parse(&["evaluate", "--metrics", "--count", "3"]).unwrap();
        assert_eq!(mixed.get_or("metrics", "off"), "table");
        assert_eq!(mixed.parse_or::<usize>("count", 0).unwrap(), 3);
    }

    #[test]
    fn fail_fast_flag_forms() {
        let bare = parse(&["construct", "--fail-fast"]).unwrap();
        assert!(bare.parse_or::<bool>("fail-fast", false).unwrap());
        let explicit = parse(&["construct", "--fail-fast=false"]).unwrap();
        assert!(!explicit.parse_or::<bool>("fail-fast", true).unwrap());
        // bare --fail-fast must not swallow a following option pair
        let mixed = parse(&["construct", "--fail-fast", "--deadline-ms", "250"]).unwrap();
        assert!(mixed.parse_or::<bool>("fail-fast", false).unwrap());
        assert_eq!(mixed.parse_or::<u64>("deadline-ms", 0).unwrap(), 250);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["x", "--flag"]).is_err());
        assert!(parse(&["x", "y"]).is_err());
        let a = parse(&["x", "--n", "abc"]).unwrap();
        assert!(a.parse_or::<usize>("n", 0).is_err());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn empty_args() {
        let a = parse(&[]).unwrap();
        assert!(a.command.is_none());
    }
}
