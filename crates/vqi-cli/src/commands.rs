//! The CLI subcommands.

use crate::args::{ArgError, Args};
use catapult::Catapult;
use tattoo::Tattoo;
use vqi_core::budget::PatternBudget;
use vqi_core::ctrl::{Budget, Completeness};
use vqi_core::render::{ascii_summary, svg_graph, svg_interface};
use vqi_core::repo::GraphRepository;
use vqi_core::score::{evaluate, QualityWeights};
use vqi_core::selector::{PatternSelector, RandomSelector};
use vqi_core::vqi::VisualQueryInterface;
use vqi_graph::io::{parse_transactions, write_transactions};
use vqi_graph::Graph;
use vqi_modular::ModularPipeline;

/// Runs one subcommand; returns the text to print.
pub fn run(args: &Args) -> Result<String, ArgError> {
    match args.command.as_deref() {
        Some("construct") => construct(args),
        Some("evaluate") => evaluate_cmd(args),
        Some("dataset") => dataset(args),
        Some("render") => render(args),
        Some("show") => show(args),
        Some("search") => search(args),
        Some("serve") => serve(args),
        Some("recover") => recover_cmd(args),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(ArgError(format!(
            "unknown command '{other}'; try 'vqi help'"
        ))),
    }
}

/// Usage text.
pub fn usage() -> String {
    "vqi — data-driven visual query interfaces for graphs

USAGE:
  vqi construct --input FILE [--selector catapult|aurora|tattoo|modular|random]
                [--count K] [--min-size N] [--max-size M]
                [--network true] [--svg OUT.svg] [--save OUT.vqi]
  vqi evaluate  --input FILE [--selector ...] [--count K] [...]
  vqi dataset   --kind aids|pubchem|dblp|social --out FILE
                [--size N] [--seed S]
  vqi render    --input FILE --out OUT.svg
  vqi show      --load FILE.vqi [--svg OUT.svg]
  vqi search    --input FILE --query QFILE [--index none|triple|ctree]
  vqi serve     [--input FILE] [--graphs N] [--seed S] [--sessions N]
                [--requests N] [--update-every K] [--selector ...]
                [--count K] [--min-size N] [--max-size M]
                [--deadline-ms N] [--midas true] [--verify false]
                [--wal-dir DIR] [--checkpoint-every K]
  vqi recover   --wal-dir DIR [--checkpoint-every K]

serve boots the multi-tenant service core on FILE (or on N generated
molecule graphs) and drives it with a loopback session mix: every
session interleaves pattern selection and subgraph queries while
session 0 applies update batches. Reads are snapshot-isolated
(epoch-swapped collection snapshots) and, with --verify (the
default), every completed selection is re-derived from scratch on its
pinned snapshot and asserted bit-identical. Prints per-endpoint
p50/p99 latency, the pattern-cache hit rate, and — when tracing is on
— a begin/end balance check of the recorded journal.

With --wal-dir, serve runs durably: every update batch is appended to
a write-ahead log and fsync'd before its epoch publishes, with an
epoch-consistent checkpoint every K updates (default 16). An empty
DIR is bootstrapped; a DIR holding durable state is recovered first
(newest valid checkpoint + WAL replay, torn tail truncated) and the
run continues its epoch sequence. recover performs only that recovery
and prints the report — checkpoint used, records replayed, torn bytes
truncated, final epoch, collection digest — without serving load.

Any command also accepts --metrics[=table|json]: pipeline spans,
counters, and gauges are recorded while the command runs and the
*per-run* delta (this command only, not process lifetime) is printed
to stderr afterwards (stdout stays clean).

Any command also accepts --trace-out=FILE: the run is recorded into
the structured trace journal and exported when the command finishes —
as flamegraph collapsed stacks when FILE ends in .folded or .txt, as
Chrome trace_event JSON (load in chrome://tracing or Perfetto)
otherwise. Combined with --metrics, a total/self-time profile of the
run is printed to stderr as well. Injected faults, budget trips, and
degraded stages appear as instant events in the trace.

construct and evaluate also accept a run budget:
  --deadline-ms N   wall-clock budget for selection; when it trips the
                    best-so-far (anytime) pattern set is kept and a
                    degradation warning goes to stderr (0 = unlimited)
  --fail-fast       abort on the first stage failure instead of
                    degrading
Both are recorded in the --metrics snapshot (cli.deadline_ms,
cli.fail_fast gauges). Options may be written --key value or
--key=value.

Input files use the classic graph-transaction text format
(t # / v <id> <label> / e <u> <v> <label>). With --network true the
first graph of the file is treated as one large network; otherwise the
file is a collection of data graphs.
"
    .to_string()
}

/// Writes the recorded trace journal to `path`, choosing the format by
/// extension: `.folded` / `.txt` → flamegraph collapsed stacks,
/// anything else (canonically `.json`) → Chrome `trace_event` JSON.
pub fn write_trace(path: &str) -> Result<(), ArgError> {
    let events = vqi_observe::journal_events();
    let folded = path.ends_with(".folded") || path.ends_with(".txt");
    let body = if folded {
        vqi_observe::folded_stacks(&events)
    } else {
        vqi_observe::chrome_trace(&events)
    };
    std::fs::write(path, body).map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

fn load_repo(args: &Args) -> Result<GraphRepository, ArgError> {
    let path = args.require("input")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let graphs =
        parse_transactions(&text).map_err(|e| ArgError(format!("parse error in {path}: {e}")))?;
    if graphs.is_empty() {
        return Err(ArgError(format!("{path} contains no graphs")));
    }
    let network: bool = args.parse_or("network", false)?;
    Ok(if network {
        GraphRepository::network(graphs.into_iter().next().expect("nonempty"))
    } else {
        GraphRepository::collection(graphs)
    })
}

fn budget(args: &Args) -> Result<PatternBudget, ArgError> {
    let count = args.parse_or("count", 6usize)?;
    let min_size = args.parse_or("min-size", 4usize)?;
    let max_size = args.parse_or("max-size", 8usize)?;
    if min_size < 2 || min_size > max_size {
        return Err(ArgError("invalid size range".into()));
    }
    Ok(PatternBudget::new(count, min_size, max_size))
}

/// The run budget from `--deadline-ms` (0 = unlimited) and
/// `--fail-fast`. Both are surfaced as gauges so a `--metrics` snapshot
/// records the budget the command ran under.
fn ctrl_budget(args: &Args) -> Result<Budget, ArgError> {
    let deadline_ms = args.parse_or("deadline-ms", 0u64)?;
    let fail_fast = args.parse_or("fail-fast", false)?;
    vqi_observe::gauge_set("cli.deadline_ms", deadline_ms as i64);
    vqi_observe::gauge_set("cli.fail_fast", i64::from(fail_fast));
    let mut ctrl = Budget::unlimited().with_fail_fast(fail_fast);
    if deadline_ms > 0 {
        ctrl = ctrl.with_deadline_ms(deadline_ms);
    }
    Ok(ctrl)
}

/// Reports an anytime result on stderr so stdout stays clean.
fn warn_if_degraded(completeness: &Completeness) {
    if let Completeness::Degraded { stages_cut, faults } = completeness {
        eprintln!(
            "warning: result is degraded (stages cut: {}; {} fault(s))",
            stages_cut.join(", "),
            faults.len()
        );
    }
}

fn selector(args: &Args) -> Result<Box<dyn PatternSelector>, ArgError> {
    Ok(match args.get_or("selector", "catapult") {
        "catapult" => Box::new(Catapult::default()),
        "aurora" => Box::new(aurora::Aurora::default()),
        "tattoo" => Box::new(Tattoo::default()),
        "modular" => Box::new(ModularPipeline::standard()),
        "random" => Box::new(RandomSelector::new(args.parse_or("seed", 0u64)?)),
        other => return Err(ArgError(format!("unknown selector '{other}'"))),
    })
}

fn construct(args: &Args) -> Result<String, ArgError> {
    let repo = load_repo(args)?;
    let budget = budget(args)?;
    let sel = selector(args)?;
    let ctrl = ctrl_budget(args)?;
    let outcome = VisualQueryInterface::data_driven_ctrl(&repo, sel.as_ref(), &budget, &ctrl)
        .map_err(|e| ArgError(format!("selection failed: {e}")))?;
    warn_if_degraded(&outcome.completeness);
    let vqi = outcome.value;
    if let Some(path) = args.options.get("svg") {
        std::fs::write(path, svg_interface(&vqi))
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = args.options.get("save") {
        std::fs::write(path, vqi_core::persist::save_interface(&vqi))
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    }
    Ok(ascii_summary(&vqi))
}

fn evaluate_cmd(args: &Args) -> Result<String, ArgError> {
    let repo = load_repo(args)?;
    let budget = budget(args)?;
    let sel = selector(args)?;
    let ctrl = ctrl_budget(args)?;
    let outcome = sel
        .select_ctrl(&repo, &budget, &ctrl)
        .map_err(|e| ArgError(format!("selection failed: {e}")))?;
    warn_if_degraded(&outcome.completeness);
    let q = evaluate(&outcome.value, &repo, QualityWeights::default());
    serde_json::to_string_pretty(&q).map_err(|e| ArgError(format!("serialize: {e}")))
}

fn dataset(args: &Args) -> Result<String, ArgError> {
    let kind = args.require("kind")?.to_string();
    let out = args.require("out")?.to_string();
    let size = args.parse_or("size", 100usize)?;
    let seed = args.parse_or("seed", 1u64)?;
    let graphs: Vec<Graph> = match kind.as_str() {
        "aids" => vqi_datasets_aids(size, seed),
        "pubchem" => vqi_datasets::pubchem_like(size, seed),
        "dblp" => vec![vqi_datasets::dblp_like(size, seed)],
        "social" => vec![vqi_datasets::social_like(size, seed)],
        other => return Err(ArgError(format!("unknown dataset kind '{other}'"))),
    };
    let n = graphs.len();
    std::fs::write(&out, write_transactions(&graphs))
        .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    Ok(format!("wrote {n} graph(s) to {out}\n"))
}

fn vqi_datasets_aids(size: usize, seed: u64) -> Vec<Graph> {
    vqi_datasets::aids_like(vqi_datasets::MoleculeParams {
        count: size,
        seed,
        ..Default::default()
    })
}

fn render(args: &Args) -> Result<String, ArgError> {
    let path = args.require("input")?;
    let out = args.require("out")?.to_string();
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let graphs = parse_transactions(&text).map_err(|e| ArgError(format!("parse error: {e}")))?;
    let g = graphs
        .first()
        .ok_or_else(|| ArgError("no graphs in input".into()))?;
    std::fs::write(&out, svg_graph(g, Default::default()))
        .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    Ok(format!("rendered {} to {out}\n", g.summary()))
}

/// Reloads a saved interface and prints (or renders) it.
fn show(args: &Args) -> Result<String, ArgError> {
    let path = args.require("load")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let vqi = vqi_core::persist::load_interface(&text)
        .map_err(|e| ArgError(format!("cannot load {path}: {e}")))?;
    if let Some(out) = args.options.get("svg") {
        std::fs::write(out, svg_interface(&vqi))
            .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    }
    Ok(ascii_summary(&vqi))
}

/// Subgraph search over a collection file with a chosen index.
fn search(args: &Args) -> Result<String, ArgError> {
    let repo_path = args.require("input")?;
    let query_path = args.require("query")?;
    let repo_text = std::fs::read_to_string(repo_path)
        .map_err(|e| ArgError(format!("cannot read {repo_path}: {e}")))?;
    let graphs = parse_transactions(&repo_text)
        .map_err(|e| ArgError(format!("parse error in {repo_path}: {e}")))?;
    let query_text = std::fs::read_to_string(query_path)
        .map_err(|e| ArgError(format!("cannot read {query_path}: {e}")))?;
    let query = vqi_graph::io::parse_graph(&query_text)
        .map_err(|e| ArgError(format!("parse error in {query_path}: {e}")))?;
    let t0 = std::time::Instant::now();
    let hits: Vec<usize> = match args.get_or("index", "triple") {
        "none" => {
            use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
            graphs
                .iter()
                .enumerate()
                .filter(|(_, g)| is_subgraph_isomorphic(&query, g, MatchOptions::with_wildcards()))
                .map(|(i, _)| i)
                .collect()
        }
        "triple" => vqi_index::TripleIndex::build(graphs.iter().enumerate())
            .search(&query, |id| &graphs[id]),
        "ctree" => {
            vqi_index::ClosureTree::bulk_load(graphs.iter().enumerate(), 8)
                .search(&query, |id| &graphs[id])
                .0
        }
        other => return Err(ArgError(format!("unknown index '{other}'"))),
    };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    Ok(format!(
        "{} match(es) in {:.1} ms (index: {}): {:?}\n",
        hits.len(),
        ms,
        args.get_or("index", "triple"),
        hits
    ))
}

/// Boots the multi-tenant service core and drives it with a loopback
/// session mix — the deployment smoke test (no network involved).
/// True when `dir` already holds durable serve state (a checkpoint).
fn has_durable_state(dir: &std::path::Path) -> bool {
    std::fs::read_dir(dir).is_ok_and(|entries| {
        entries.flatten().any(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("ckpt-") && name.ends_with(".ckpt")
        })
    })
}

fn durability(args: &Args) -> Result<vqi_serve::DurabilityConfig, ArgError> {
    Ok(vqi_serve::DurabilityConfig {
        checkpoint_every: args.parse_or("checkpoint-every", 16u64)?,
        ..Default::default()
    })
}

fn serve(args: &Args) -> Result<String, ArgError> {
    use vqi_serve::{run_load, LoadParams, MaintenanceMode, SelectorKind, ServeConfig, VqiService};

    let select_budget = budget(args)?;
    let sessions = args.parse_or("sessions", 4usize)?;
    let requests = args.parse_or("requests", 8usize)?;
    let update_every = args.parse_or("update-every", 4usize)?;
    let deadline_ms = args.parse_or("deadline-ms", 0u64)?;
    let verify = args.parse_or("verify", true)?;
    let midas = args.parse_or("midas", false)?;
    let seed = args.parse_or("seed", 7u64)?;

    let graphs: Vec<Graph> = if args.options.contains_key("input") {
        match load_repo(args)? {
            GraphRepository::Collection(c) => c.iter().map(|(_, g)| g.clone()).collect(),
            GraphRepository::Network(_) => {
                return Err(ArgError("serve needs a collection, not a network".into()))
            }
        }
    } else {
        vqi_datasets_aids(args.parse_or("graphs", 18usize)?, seed)
    };

    // the session mix: queries are small graphs of the collection itself
    // (guaranteed satisfiable); batches cycle fresh molecules in and old
    // slots out
    let mut queries: Vec<Graph> = graphs
        .iter()
        .filter(|g| g.node_count() <= 8)
        .take(4)
        .cloned()
        .collect();
    if queries.is_empty() {
        queries.push(graphs[0].clone());
    }
    let extra = vqi_datasets_aids(8, seed ^ 0xBA7C4);
    let batches: Vec<vqi_core::repo::BatchUpdate> = (0..4)
        .map(|i| vqi_core::repo::BatchUpdate {
            additions: vec![extra[2 * i].clone(), extra[2 * i + 1].clone()],
            removals: if i < graphs.len() { vec![i] } else { vec![] },
        })
        .collect();

    let maintenance = if midas {
        MaintenanceMode::Midas {
            budget: select_budget,
            config: midas::MidasConfig::default(),
        }
    } else {
        MaintenanceMode::ApplyOnly
    };
    let config = ServeConfig {
        maintenance,
        ..Default::default()
    };
    let initial = vqi_core::repo::GraphCollection::new(graphs);
    // --wal-dir makes the run durable: bootstrap an empty directory,
    // recover (and continue the epoch sequence of) a populated one
    let (service, recovery) = match args.options.get("wal-dir") {
        None => (VqiService::new(initial, config), None),
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let durability = durability(args)?;
            if has_durable_state(dir) {
                let (s, report) = VqiService::recover(dir, config, durability)
                    .map_err(|e| ArgError(format!("recovery failed: {e}")))?;
                (s, Some(report))
            } else {
                let s = VqiService::with_durability(initial, config, dir, durability)
                    .map_err(|e| ArgError(format!("cannot bootstrap durable log: {e}")))?;
                (s, None)
            }
        }
    };
    let selector = match args.get_or("selector", "catapult") {
        "catapult" => SelectorKind::Catapult,
        "modular" => SelectorKind::Modular,
        "random" => SelectorKind::Random { seed },
        other => return Err(ArgError(format!("serve cannot use selector '{other}'"))),
    };
    let report = run_load(
        &service,
        &LoadParams {
            sessions,
            requests_per_session: requests,
            update_every,
            selector,
            select_budget,
            deadline_ms: if deadline_ms == 0 {
                None
            } else {
                Some(deadline_ms)
            },
            seed,
            queries,
            batches,
            verify_isolation: verify,
            ..Default::default()
        },
    );

    let mut out = String::new();
    out.push_str(&format!(
        "served {} request(s) from {} session(s)\n",
        report.total_requests(),
        sessions
    ));
    out.push_str(&format!(
        "  select: {} answered ({} degraded, {} rejected), p50 {} us, p99 {} us\n",
        report.select.count,
        report.select.degraded,
        report.select.rejected,
        report.select.p50_us(),
        report.select.p99_us()
    ));
    out.push_str(&format!(
        "  query:  {} answered ({} degraded, {} rejected), p50 {} us, p99 {} us\n",
        report.query.count,
        report.query.degraded,
        report.query.rejected,
        report.query.p50_us(),
        report.query.p99_us()
    ));
    out.push_str(&format!(
        "  update: {} applied, final epoch {}\n",
        report.update.count, report.final_epoch
    ));
    if let Some(dir) = args.options.get("wal-dir") {
        match &recovery {
            Some(r) => out.push_str(&format!(
                "  wal:    recovered {dir} to epoch {} (checkpoint {} + {} replayed, \
                 {} torn byte(s) truncated), now durable\n",
                r.final_epoch, r.checkpoint_epoch, r.replayed, r.truncated_bytes
            )),
            None => out.push_str(&format!("  wal:    bootstrapped durable log in {dir}\n")),
        }
    }
    out.push_str(&format!(
        "  cache:  {} hit(s) / {} miss(es) (hit rate {:.2})\n",
        report.cache_hits,
        report.cache_misses,
        report.cache_hit_rate()
    ));
    if verify {
        out.push_str(&format!(
            "  isolation: {} selection(s) verified bit-identical on their pinned snapshots\n",
            report.isolation_checks
        ));
    }
    if vqi_observe::journal_recording() {
        let events = vqi_observe::journal_events();
        let begins = events
            .iter()
            .filter(|e| matches!(e.kind, vqi_observe::EventKind::Begin))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e.kind, vqi_observe::EventKind::End))
            .count();
        if begins != ends {
            return Err(ArgError(format!(
                "trace imbalance: {begins} begin vs {ends} end events"
            )));
        }
        out.push_str(&format!(
            "  trace:  {begins} spans, begin/end balanced: yes\n"
        ));
    }
    Ok(out)
}

/// Recovers durable serve state and prints the report, without serving
/// any load — the operational "is this directory intact, and what would
/// a restart see?" probe.
fn recover_cmd(args: &Args) -> Result<String, ArgError> {
    use vqi_serve::{collection_digest, ServeConfig, VqiService};
    let dir = args.require("wal-dir")?.to_string();
    let durability = durability(args)?;
    let (service, report) =
        VqiService::recover(std::path::Path::new(&dir), ServeConfig::default(), durability)
            .map_err(|e| ArgError(format!("recovery failed: {e}")))?;
    let snapshot = service.store().pin();
    Ok(format!(
        "recovered {dir} to epoch {}\n\
         \x20 checkpoint: epoch {} ({} skipped as corrupt)\n\
         \x20 replay:     {} record(s) applied, {} stale skipped, {} torn byte(s) truncated\n\
         \x20 collection: {} live graph(s), digest {:016x}\n\
         \x20 elapsed:    {} ms\n",
        report.final_epoch,
        report.checkpoint_epoch,
        report.checkpoints_skipped,
        report.replayed,
        report.skipped_records,
        report.truncated_bytes,
        snapshot.collection().len(),
        collection_digest(snapshot.collection()),
        report.elapsed_ms,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(toks: &[&str]) -> Args {
        Args::parse(toks.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("vqi_cli_test_{name}"))
            .to_string_lossy()
            .into_owned()
    }

    /// Serializes tests that reset or snapshot the process-global
    /// metrics registry.
    fn observe_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&args(&[])).unwrap().contains("USAGE"));
        assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn serve_smoke_runs_a_verified_session_mix() {
        let out = run(&args(&[
            "serve",
            "--graphs",
            "10",
            "--sessions",
            "2",
            "--requests",
            "4",
            "--count",
            "3",
            "--min-size",
            "3",
            "--max-size",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("served"), "{out}");
        assert!(out.contains("isolation:"), "{out}");
        assert!(out.contains("cache:"), "{out}");
    }

    #[test]
    fn serve_wal_dir_bootstraps_recovers_and_reports() {
        let dir = tmp("wal_cli");
        std::fs::remove_dir_all(&dir).ok();
        let serve_args = [
            "serve",
            "--graphs",
            "8",
            "--sessions",
            "2",
            "--requests",
            "4",
            "--update-every",
            "2",
            "--count",
            "3",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--checkpoint-every",
            "2",
            "--wal-dir",
            &dir,
        ];
        // first run bootstraps the durable log...
        let first = run(&args(&serve_args)).unwrap();
        assert!(first.contains("bootstrapped durable log"), "{first}");
        // ...recover reports what a restart would see...
        let probe = run(&args(&["recover", "--wal-dir", &dir])).unwrap();
        assert!(probe.contains("recovered"), "{probe}");
        assert!(probe.contains("checkpoint:"), "{probe}");
        assert!(probe.contains("digest"), "{probe}");
        // ...and a second serve run recovers and keeps going
        let second = run(&args(&serve_args)).unwrap();
        assert!(second.contains("recovered"), "{second}");
        // recovery of a directory with no durable state is a clean error
        let empty = tmp("wal_cli_empty");
        std::fs::remove_dir_all(&empty).ok();
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run(&args(&["recover", "--wal-dir", &empty])).is_err());
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn dataset_then_construct_then_evaluate() {
        let file = tmp("aids.txt");
        let out = run(&args(&[
            "dataset", "--kind", "aids", "--out", &file, "--size", "30", "--seed", "7",
        ]))
        .unwrap();
        assert!(out.contains("30 graph(s)"));

        let svg = tmp("vqi.svg");
        let summary = run(&args(&[
            "construct",
            "--input",
            &file,
            "--selector",
            "random",
            "--count",
            "4",
            "--min-size",
            "4",
            "--max-size",
            "6",
            "--svg",
            &svg,
        ]))
        .unwrap();
        assert!(summary.contains("canned"));
        assert!(std::fs::read_to_string(&svg)
            .unwrap()
            .contains("Pattern Panel"));

        let eval = run(&args(&[
            "evaluate",
            "--input",
            &file,
            "--selector",
            "random",
            "--count",
            "4",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&eval).unwrap();
        assert!(v.get("coverage").is_some());
    }

    #[test]
    fn network_mode_and_render() {
        let file = tmp("net.txt");
        run(&args(&[
            "dataset", "--kind", "dblp", "--out", &file, "--size", "120",
        ]))
        .unwrap();
        let out = run(&args(&[
            "construct",
            "--input",
            &file,
            "--selector",
            "tattoo",
            "--network",
            "true",
            "--count",
            "3",
            "--min-size",
            "4",
            "--max-size",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("tattoo"));

        let svg = tmp("net.svg");
        let r = run(&args(&["render", "--input", &file, "--out", &svg])).unwrap();
        assert!(r.contains("rendered"));
        assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));
    }

    #[test]
    fn save_and_show_round_trip() {
        let file = tmp("save_src.txt");
        run(&args(&[
            "dataset", "--kind", "aids", "--out", &file, "--size", "20",
        ]))
        .unwrap();
        let saved = tmp("iface.vqi");
        run(&args(&[
            "construct",
            "--input",
            &file,
            "--selector",
            "random",
            "--count",
            "3",
            "--min-size",
            "4",
            "--max-size",
            "5",
            "--save",
            &saved,
        ]))
        .unwrap();
        let shown = run(&args(&["show", "--load", &saved])).unwrap();
        assert!(shown.contains("random"));
        assert!(shown.contains("canned"));
    }

    #[test]
    fn search_finds_matches_with_every_index() {
        let file = tmp("search_repo.txt");
        run(&args(&[
            "dataset", "--kind", "aids", "--out", &file, "--size", "25",
        ]))
        .unwrap();
        // query: a 3-carbon chain, ubiquitous in molecules
        let qfile = tmp("search_query.txt");
        let q = vqi_graph::generate::chain(3, 0, 0);
        std::fs::write(&qfile, vqi_graph::io::write_graph(&q, 0)).unwrap();
        let mut results = Vec::new();
        for index in ["none", "triple", "ctree"] {
            let out = run(&args(&[
                "search", "--input", &file, "--query", &qfile, "--index", index,
            ]))
            .unwrap();
            results.push(out.split(" match").next().unwrap().to_string());
        }
        assert_eq!(results[0], results[1], "triple index changed results");
        assert_eq!(results[0], results[2], "ctree changed results");
    }

    #[test]
    fn metrics_capture_every_pipeline() {
        let _observe = observe_lock();
        let col = tmp("metrics_col.txt");
        run(&args(&[
            "dataset", "--kind", "aids", "--out", &col, "--size", "20",
        ]))
        .unwrap();
        let net = tmp("metrics_net.txt");
        run(&args(&[
            "dataset", "--kind", "dblp", "--out", &net, "--size", "100",
        ]))
        .unwrap();

        vqi_observe::reset();
        vqi_observe::set_enabled(true);
        run(&args(&[
            "construct",
            "--input",
            &col,
            "--selector",
            "catapult",
            "--count",
            "3",
            "--min-size",
            "4",
            "--max-size",
            "5",
        ]))
        .unwrap();
        run(&args(&[
            "construct",
            "--input",
            &col,
            "--selector",
            "modular",
            "--count",
            "3",
            "--min-size",
            "4",
            "--max-size",
            "5",
        ]))
        .unwrap();
        run(&args(&[
            "construct",
            "--input",
            &net,
            "--selector",
            "tattoo",
            "--network",
            "true",
            "--count",
            "3",
            "--min-size",
            "4",
            "--max-size",
            "5",
        ]))
        .unwrap();
        // midas has no subcommand yet; drive its maintenance loop directly
        {
            use vqi_core::repo::{BatchUpdate, GraphCollection};
            let graphs = vqi_datasets::aids_like(vqi_datasets::MoleculeParams {
                count: 12,
                seed: 3,
                ..Default::default()
            });
            let mut m = midas::Midas::bootstrap(
                GraphCollection::new(graphs),
                PatternBudget::new(3, 4, 6),
                midas::MidasConfig::default(),
            );
            m.apply_update(BatchUpdate::adding(vec![vqi_graph::generate::clique(
                5, 3, 0,
            )]));
        }
        vqi_observe::set_enabled(false);

        let s = vqi_observe::snapshot();
        for system in ["catapult", "tattoo", "midas", "modular"] {
            assert!(
                s.spans.keys().any(|k| k.starts_with(system)),
                "no span from {system}: {:?}",
                s.spans.keys().collect::<Vec<_>>()
            );
            assert!(
                s.counters.keys().any(|k| k.starts_with(system)),
                "no counter from {system}: {:?}",
                s.counters.keys().collect::<Vec<_>>()
            );
        }
        let json = s.to_json();
        assert!(json.contains("\"catapult.run\""));
        assert!(json.contains("\"spans\""));
        assert!(!s.render_table().is_empty());
        vqi_observe::reset();
    }

    #[test]
    fn deadline_and_fail_fast_flags_drive_the_run_budget() {
        let _observe = observe_lock();
        let file = tmp("budget_col.txt");
        run(&args(&[
            "dataset", "--kind", "aids", "--out", &file, "--size", "20", "--seed", "5",
        ]))
        .unwrap();
        // a roomy deadline changes nothing: same selection as no flag
        let plain = run(&args(&[
            "evaluate",
            "--input",
            &file,
            "--selector",
            "catapult",
            "--count",
            "3",
        ]))
        .unwrap();
        let budgeted = run(&args(&[
            "evaluate",
            "--input",
            &file,
            "--selector",
            "catapult",
            "--count",
            "3",
            "--deadline-ms",
            "600000",
            "--fail-fast",
        ]))
        .unwrap();
        assert_eq!(plain, budgeted);
        // metrics gauges record the budget the command ran under
        vqi_observe::reset();
        vqi_observe::set_enabled(true);
        run(&args(&[
            "evaluate",
            "--input",
            &file,
            "--selector",
            "random",
            "--count",
            "3",
            "--deadline-ms",
            "600000",
        ]))
        .unwrap();
        vqi_observe::set_enabled(false);
        let s = vqi_observe::snapshot();
        assert_eq!(s.gauges.get("cli.deadline_ms").copied(), Some(600000));
        assert_eq!(s.gauges.get("cli.fail_fast").copied(), Some(0));
        vqi_observe::reset();
        // a bad value is a one-line error, not a panic
        let bad = Args::parse(
            ["evaluate", "--input", &file, "--deadline-ms", "soon"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(run(&bad).is_err());
    }

    #[test]
    fn an_expired_deadline_degrades_instead_of_crashing() {
        let file = tmp("deadline_col.txt");
        run(&args(&[
            "dataset", "--kind", "aids", "--out", &file, "--size", "20", "--seed", "6",
        ]))
        .unwrap();
        // deadline of 1 ms: selection is cut, but the command still
        // succeeds with an (empty or partial) anytime result
        let out = run(&args(&[
            "evaluate",
            "--input",
            &file,
            "--selector",
            "catapult",
            "--count",
            "3",
            "--deadline-ms",
            "1",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v.get("coverage").is_some());
    }

    /// Arms the metrics registry + trace journal for one test and
    /// disarms both (and clears the journal) on drop, even on panic.
    struct JournalGuard;
    fn arm_journal() -> JournalGuard {
        vqi_observe::reset();
        vqi_observe::journal_reset();
        vqi_observe::set_enabled(true);
        vqi_observe::set_journal_enabled(true);
        JournalGuard
    }
    impl Drop for JournalGuard {
        fn drop(&mut self) {
            vqi_observe::set_journal_enabled(false);
            vqi_observe::set_enabled(false);
            vqi_observe::journal_reset();
            vqi_observe::reset();
        }
    }

    #[test]
    fn trace_out_chrome_is_valid_and_parented() {
        let _observe = observe_lock();
        let net = tmp("trace_net.txt");
        run(&args(&[
            "dataset", "--kind", "dblp", "--out", &net, "--size", "150", "--seed", "9",
        ]))
        .unwrap();
        let _journal = arm_journal();
        run(&args(&[
            "construct",
            "--input",
            &net,
            "--selector",
            "tattoo",
            "--network",
            "true",
            "--count",
            "3",
            "--min-size",
            "4",
            "--max-size",
            "5",
        ]))
        .unwrap();
        let out = tmp("trace.json");
        write_trace(&out).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        let stats =
            vqi_observe::validate_chrome_trace(&json).expect("emitted chrome trace must validate");
        assert!(stats.spans > 0, "run must record spans");
        assert!(json.contains("\"tattoo.run\""), "run root span present");
        // every span below the root has a resolvable, non-zero parent:
        // the run root is the only parentless Begin event
        let roots = json
            .lines()
            .filter(|l| l.contains("\"ph\":\"B\"") && l.contains("\"parent\":0}"))
            .count();
        assert_eq!(roots, 1, "exactly one root span (the run): {roots}");
        // the profile built from the same journal attributes the run
        let events = vqi_observe::journal_events();
        let profile = vqi_observe::profile(&events, None);
        assert!(profile.nodes.contains_key("tattoo.run"));
        assert!(profile
            .critical_path
            .first()
            .is_some_and(|(p, _)| p == "tattoo.run"));
    }

    #[test]
    fn trace_out_folded_extension_selects_collapsed_stacks() {
        let _observe = observe_lock();
        let col = tmp("trace_fold_col.txt");
        run(&args(&[
            "dataset", "--kind", "aids", "--out", &col, "--size", "20", "--seed", "4",
        ]))
        .unwrap();
        let _journal = arm_journal();
        run(&args(&[
            "construct",
            "--input",
            &col,
            "--selector",
            "catapult",
            "--count",
            "3",
            "--min-size",
            "4",
            "--max-size",
            "5",
        ]))
        .unwrap();
        let out = tmp("trace.folded");
        write_trace(&out).unwrap();
        let folded = std::fs::read_to_string(&out).unwrap();
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("'<stack> <weight>' lines");
            assert!(!path.is_empty());
            weight.parse::<u64>().expect("integer self-time weight");
        }
        assert!(
            folded.lines().any(|l| l.starts_with("catapult.run")),
            "stacks rooted at the run:\n{folded}"
        );
    }

    #[test]
    fn trace_out_shows_faults_and_degradations() {
        let _observe = observe_lock();
        let col = tmp("trace_fault_col.txt");
        run(&args(&[
            "dataset", "--kind", "aids", "--out", &col, "--size", "20", "--seed", "8",
        ]))
        .unwrap();
        let _journal = arm_journal();
        // every stage times out once: the run degrades but completes
        vqi_runtime::fault::set_plan(vqi_runtime::fault::FaultPlan {
            seed: 5,
            timeout_rate: 1.0,
            ..Default::default()
        });
        let res = run(&args(&[
            "construct",
            "--input",
            &col,
            "--selector",
            "catapult",
            "--count",
            "3",
            "--min-size",
            "4",
            "--max-size",
            "5",
        ]));
        vqi_runtime::fault::reset();
        res.unwrap();
        let out = tmp("trace_faults.json");
        write_trace(&out).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        let stats = vqi_observe::validate_chrome_trace(&json).expect("trace must validate");
        assert!(stats.instants > 0, "fault instants must be recorded");
        assert!(json.contains("fault.injected:"), "injected-fault instants");
        assert!(json.contains("run.degraded:"), "degradation instants");
        // the aggregate counters tell the same story
        let s = vqi_observe::snapshot();
        assert!(s.counters.get("fault.injected").copied().unwrap_or(0) > 0);
        assert!(s.counters.get("fault.degraded").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(run(&args(&["construct", "--input", "/nonexistent/x.txt"])).is_err());
        assert!(run(&args(&["dataset", "--kind", "nope", "--out", "/tmp/x"])).is_err());
        let file = tmp("bad.txt");
        std::fs::write(&file, "garbage line\n").unwrap();
        assert!(run(&args(&["construct", "--input", &file])).is_err());
    }
}
