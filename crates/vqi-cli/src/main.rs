//! `vqi` — construct, evaluate, and render data-driven visual query
//! interfaces from the command line. Run `vqi help` for usage.

mod args;
mod commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    let metrics_mode = match parsed.options.get("metrics").map(|s| s.as_str()) {
        None => None,
        Some(m @ ("table" | "json")) => Some(m.to_string()),
        Some(other) => {
            eprintln!("error: --metrics must be 'table' or 'json', got '{other}'");
            std::process::exit(2);
        }
    };
    let trace_out = parsed.options.get("trace-out").cloned();
    if metrics_mode.is_some() || trace_out.is_some() {
        vqi_observe::set_enabled(true);
    }
    if trace_out.is_some() {
        vqi_observe::set_journal_enabled(true);
        vqi_observe::journal_reset();
    }
    // metrics accumulate for the process lifetime; subtracting this
    // baseline afterwards turns the snapshot into per-run numbers
    // (a fresh process has an empty baseline, so the delta is total)
    let baseline = vqi_observe::snapshot();
    match commands::run(&parsed) {
        Ok(out) => {
            print!("{out}");
            if let Some(path) = &trace_out {
                if let Err(e) = commands::write_trace(path) {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
                eprintln!("trace written to {path}");
            }
            // metrics go to stderr so stdout stays machine-parseable
            // (e.g. `vqi evaluate` prints JSON on stdout)
            match metrics_mode.as_deref() {
                Some("json") => {
                    eprintln!("{}", vqi_observe::snapshot().delta(&baseline).to_json());
                }
                Some(_) => {
                    eprint!(
                        "{}",
                        vqi_observe::snapshot().delta(&baseline).render_table()
                    );
                    if vqi_observe::journal_enabled() {
                        let events = vqi_observe::journal_events();
                        eprint!("{}", vqi_observe::profile(&events, None).render());
                    }
                }
                None => {}
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            std::process::exit(1);
        }
    }
}
