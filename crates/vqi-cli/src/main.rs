//! `vqi` — construct, evaluate, and render data-driven visual query
//! interfaces from the command line. Run `vqi help` for usage.

mod args;
mod commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    match commands::run(&parsed) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
