//! `vqi` — construct, evaluate, and render data-driven visual query
//! interfaces from the command line. Run `vqi help` for usage.

mod args;
mod commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    let metrics_mode = match parsed.options.get("metrics").map(|s| s.as_str()) {
        None => None,
        Some(m @ ("table" | "json")) => Some(m.to_string()),
        Some(other) => {
            eprintln!("error: --metrics must be 'table' or 'json', got '{other}'");
            std::process::exit(2);
        }
    };
    if metrics_mode.is_some() {
        vqi_observe::set_enabled(true);
    }
    match commands::run(&parsed) {
        Ok(out) => {
            print!("{out}");
            // metrics go to stderr so stdout stays machine-parseable
            // (e.g. `vqi evaluate` prints JSON on stdout)
            match metrics_mode.as_deref() {
                Some("json") => eprintln!("{}", vqi_observe::snapshot().to_json()),
                Some(_) => eprint!("{}", vqi_observe::snapshot().render_table()),
                None => {}
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            std::process::exit(1);
        }
    }
}
