//! Property-based tests of the simulated user: plan soundness and the
//! pattern-assistance guarantee for arbitrary targets and pattern sets.

use proptest::prelude::*;
use vqi_core::pattern::{default_basic_patterns, PatternKind, PatternSet};
use vqi_graph::iso::are_isomorphic;
use vqi_graph::{Graph, NodeId};
use vqi_sim::cost::ActionCosts;
use vqi_sim::plan::{plan_edge_at_a_time, plan_with_patterns};

fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
        let labels = proptest::collection::vec(0u32..3, n);
        let extra = proptest::collection::vec(proptest::bool::weighted(0.25), n * (n - 1) / 2);
        (labels, parents, extra).prop_map(move |(nl, ps, ex)| {
            let mut g = Graph::new();
            let nodes: Vec<NodeId> = nl.iter().map(|&l| g.add_node(l)).collect();
            for (i, p) in ps.iter().enumerate() {
                g.add_edge(nodes[i + 1], nodes[*p], 0);
            }
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if ex[idx] {
                        g.add_edge(nodes[i], nodes[j], 1);
                    }
                    idx += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plans with arbitrary pattern sets are sound and never worse than
    /// manual formulation.
    #[test]
    fn plans_sound_and_helpful(
        target in arb_connected(8),
        pattern_graphs in proptest::collection::vec(arb_connected(5), 0..4),
    ) {
        let mut patterns = default_basic_patterns();
        for g in pattern_graphs {
            let _ = patterns.insert(g, PatternKind::Canned, "prop");
        }
        let manual = plan_edge_at_a_time(&target);
        prop_assert!(are_isomorphic(&manual.replay(), &target));
        let assisted = plan_with_patterns(&target, &patterns);
        prop_assert!(are_isomorphic(&assisted.replay(), &target), "assisted plan unsound");
        prop_assert!(assisted.steps() <= manual.steps());
    }

    /// Dropping the target itself as a pattern yields a 1-step plan.
    #[test]
    fn exact_pattern_shortcut(target in arb_connected(7)) {
        let mut patterns = PatternSet::new();
        patterns
            .insert(target.clone(), PatternKind::Canned, "exact")
            .unwrap();
        let plan = plan_with_patterns(&target, &patterns);
        prop_assert_eq!(plan.steps(), 1);
        prop_assert_eq!(plan.patterns_used, 1);
        prop_assert!(are_isomorphic(&plan.replay(), &target));
    }

    /// Modeled plan time is positive and additive in the ops (action
    /// time plus expected error-correction time).
    #[test]
    fn times_are_additive(target in arb_connected(6)) {
        let costs = ActionCosts::default();
        let plan = plan_edge_at_a_time(&target);
        let total = costs.plan_cost(&plan.ops, 5);
        let by_parts: f64 = plan.ops.iter().map(|o| costs.cost_of(o, 5)).sum::<f64>()
            + costs.plan_errors(&plan.ops) * costs.error_correction;
        prop_assert!((total - by_parts).abs() < 1e-9);
        prop_assert!(total > 0.0);
        prop_assert!(costs.plan_errors(&plan.ops) > 0.0);
    }
}
