//! Formulation planning: the action sequences a competent user produces.
//!
//! The planner's *pattern-at-a-time* mode mirrors how the usability
//! studies describe pattern usage: the user scans the Pattern Panel for
//! the largest pattern that maps onto a chunk of the query they have in
//! mind, drops it (one action), fuses overlapping nodes, fixes up any
//! wildcard or mismatched labels, and finishes the remainder
//! edge-at-a-time. A pattern is only used when it strictly reduces the
//! number of actions versus drawing the same chunk manually.
//!
//! Plans are sound by construction: [`FormulationPlan::replay`] applies
//! the ops to a fresh [`QueryBuilder`] and the result is isomorphic to
//! the target (DESIGN.md invariant 7).

use vqi_core::pattern::PatternSet;
use vqi_core::query::{EditOp, QNode, QueryBuilder};
use vqi_graph::graph::WILDCARD_LABEL;
use vqi_graph::iso::{enumerate_embeddings, MatchOptions};
use vqi_graph::{Graph, NodeId};

/// A planned sequence of atomic edits that reconstructs a target query.
#[derive(Debug, Clone)]
pub struct FormulationPlan {
    /// The atomic edits, in order.
    pub ops: Vec<EditOp>,
    /// How many canned/basic patterns the plan drops onto the canvas.
    pub patterns_used: usize,
}

impl FormulationPlan {
    /// Number of atomic actions.
    pub fn steps(&self) -> usize {
        self.ops.len()
    }

    /// Replays the plan on a fresh builder and returns the resulting
    /// query graph. Panics if any op fails (plans must be sound).
    pub fn replay(&self) -> Graph {
        let mut q = QueryBuilder::new();
        for op in &self.ops {
            q.apply(op).expect("plan ops are sound");
        }
        q.to_graph().0
    }
}

/// Plans the target query edge-at-a-time (nodes first, then edges) —
/// what a user of a pattern-less interface must do.
pub fn plan_edge_at_a_time(target: &Graph) -> FormulationPlan {
    let mut ops = Vec::with_capacity(target.node_count() + target.edge_count());
    for v in target.nodes() {
        ops.push(EditOp::AddNode {
            label: target.node_label(v),
        });
    }
    for e in target.edges() {
        let (u, v) = target.endpoints(e);
        ops.push(EditOp::AddEdge {
            a: QNode(u.index()),
            b: QNode(v.index()),
            label: target.edge_label(e),
        });
    }
    FormulationPlan {
        ops,
        patterns_used: 0,
    }
}

/// Match options for fitting patterns onto the target query.
fn fit_options() -> MatchOptions {
    MatchOptions {
        induced: false,
        wildcard: true,
        max_embeddings: 200,
        max_states: 200_000,
    }
}

/// One candidate placement of a pattern onto the target.
struct Placement {
    pattern_idx: usize,
    /// `mapping[p]` = target node for pattern node `p`.
    mapping: Vec<NodeId>,
    /// Net step savings vs. drawing the same chunk manually.
    savings: i64,
}

/// Evaluates one embedding: how many steps it saves.
fn placement_savings(
    pattern: &Graph,
    mapping: &[NodeId],
    target: &Graph,
    placed: &[Option<QNode>],
    edge_covered: &[bool],
) -> i64 {
    let mut new_nodes = 0i64;
    let mut merges = 0i64;
    let mut node_relabels = 0i64;
    for p in pattern.nodes() {
        let t = mapping[p.index()];
        if placed[t.index()].is_some() {
            merges += 1;
        } else {
            new_nodes += 1;
            if pattern.node_label(p) != target.node_label(t) {
                node_relabels += 1;
            }
        }
    }
    let mut new_edges = 0i64;
    let mut edge_relabels = 0i64;
    for e in pattern.edges() {
        let (u, v) = pattern.endpoints(e);
        let te = target
            .edge_between(mapping[u.index()], mapping[v.index()])
            .expect("embedding preserves edges");
        if !edge_covered[te.index()] {
            new_edges += 1;
            if pattern.edge_label(e) != target.edge_label(te) {
                edge_relabels += 1;
            }
        }
    }
    if new_edges == 0 && new_nodes == 0 {
        return i64::MIN; // contributes nothing
    }
    let manual_steps = new_nodes + new_edges;
    let pattern_steps = 1 + merges + node_relabels + edge_relabels;
    manual_steps - pattern_steps
}

/// Plans the target query using the Pattern Panel where beneficial.
pub fn plan_with_patterns(target: &Graph, patterns: &PatternSet) -> FormulationPlan {
    let mut ops: Vec<EditOp> = Vec::new();
    let mut patterns_used = 0usize;
    let mut placed: Vec<Option<QNode>> = vec![None; target.node_count()];
    let mut edge_covered = vec![false; target.edge_count()];
    let mut next_builder_node = 0usize;

    // sort patterns by decreasing size so ties favor bigger chunks
    let mut order: Vec<usize> = (0..patterns.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(patterns.patterns()[i].graph.edge_count()));

    loop {
        let mut best: Option<Placement> = None;
        for &pi in &order {
            let pg = &patterns.patterns()[pi].graph;
            if pg.edge_count() == 0 || pg.node_count() > target.node_count() {
                continue;
            }
            enumerate_embeddings(pg, target, fit_options(), |mapping| {
                let savings = placement_savings(pg, mapping, target, &placed, &edge_covered);
                if savings > 0 && best.as_ref().is_none_or(|b| savings > b.savings) {
                    best = Some(Placement {
                        pattern_idx: pi,
                        mapping: mapping.to_vec(),
                        savings,
                    });
                }
                true
            });
        }
        let Some(p) = best else { break };
        let pg = patterns.patterns()[p.pattern_idx].graph.clone();
        // drop the pattern (one action); its nodes get sequential builder ids
        let base = next_builder_node;
        next_builder_node += pg.node_count();
        ops.push(EditOp::AddPattern {
            pattern: pg.clone(),
        });
        patterns_used += 1;
        // merge overlapping nodes, record fresh ones
        for pn in pg.nodes() {
            let t = p.mapping[pn.index()];
            let created = QNode(base + pn.index());
            match placed[t.index()] {
                Some(keep) => {
                    ops.push(EditOp::MergeNodes {
                        keep,
                        merge: created,
                    });
                }
                None => {
                    placed[t.index()] = Some(created);
                    let want = target.node_label(t);
                    if pg.node_label(pn) != want {
                        ops.push(EditOp::SetNodeLabel {
                            node: created,
                            label: want,
                        });
                    }
                }
            }
        }
        // fix edge labels of newly covered edges, then mark them covered
        for pe in pg.edges() {
            let (u, v) = pg.endpoints(pe);
            let (tu, tv) = (p.mapping[u.index()], p.mapping[v.index()]);
            let te = target.edge_between(tu, tv).expect("embedding edge");
            if !edge_covered[te.index()] {
                edge_covered[te.index()] = true;
                let want = target.edge_label(te);
                if pg.edge_label(pe) != want {
                    ops.push(EditOp::SetEdgeLabel {
                        a: placed[tu.index()].expect("placed"),
                        b: placed[tv.index()].expect("placed"),
                        label: want,
                    });
                }
            }
        }
    }

    // finish manually: remaining nodes, then remaining edges
    for t in target.nodes() {
        if placed[t.index()].is_none() {
            placed[t.index()] = Some(QNode(next_builder_node));
            next_builder_node += 1;
            ops.push(EditOp::AddNode {
                label: target.node_label(t),
            });
        }
    }
    for e in target.edges() {
        if !edge_covered[e.index()] {
            let (u, v) = target.endpoints(e);
            ops.push(EditOp::AddEdge {
                a: placed[u.index()].expect("all nodes placed"),
                b: placed[v.index()].expect("all nodes placed"),
                label: target.edge_label(e),
            });
        }
    }
    let _ = WILDCARD_LABEL; // semantic anchor: wildcards relabel above
    FormulationPlan { ops, patterns_used }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_core::pattern::{default_basic_patterns, PatternKind};
    use vqi_graph::generate::{chain, cycle, star};
    use vqi_graph::iso::are_isomorphic;

    fn canned(graphs: Vec<Graph>) -> PatternSet {
        let mut set = default_basic_patterns();
        for g in graphs {
            set.insert(g, PatternKind::Canned, "test").unwrap();
        }
        set
    }

    #[test]
    fn edge_at_a_time_is_sound() {
        for target in [chain(5, 1, 2), cycle(6, 3, 4), star(4, 5, 6)] {
            let plan = plan_edge_at_a_time(&target);
            assert_eq!(plan.steps(), target.node_count() + target.edge_count());
            assert!(are_isomorphic(&plan.replay(), &target));
        }
    }

    #[test]
    fn exact_pattern_is_one_drop() {
        let target = cycle(5, 1, 0);
        let set = canned(vec![cycle(5, 1, 0)]);
        let plan = plan_with_patterns(&target, &set);
        assert_eq!(plan.patterns_used, 1);
        assert_eq!(plan.steps(), 1, "exact match needs a single action");
        assert!(are_isomorphic(&plan.replay(), &target));
    }

    #[test]
    fn pattern_plus_manual_completion() {
        // target: 5-cycle with a pendant node
        let mut target = cycle(5, 1, 0);
        let x = target.add_node(2);
        target.add_edge(NodeId(0), x, 7);
        let set = canned(vec![cycle(5, 1, 0)]);
        let plan = plan_with_patterns(&target, &set);
        assert_eq!(plan.patterns_used, 1);
        // 1 drop + AddNode + AddEdge = 3
        assert_eq!(plan.steps(), 3);
        assert!(are_isomorphic(&plan.replay(), &target));
    }

    #[test]
    fn wildcard_basic_patterns_need_relabeling() {
        let target = cycle(3, 9, 8);
        let set = default_basic_patterns(); // includes wildcard triangle
        let plan = plan_with_patterns(&target, &set);
        assert!(are_isomorphic(&plan.replay(), &target));
        // triangle drop (1) + 3 node relabels + 3 edge relabels = 7,
        // beats 3 + 3 = 6 manual? it doesn't — the planner must choose
        // manual construction here
        assert!(plan.steps() <= 6);
    }

    #[test]
    fn overlapping_patterns_merge() {
        // target: two triangles sharing one node (bowtie)
        let mut target = cycle(3, 1, 0);
        let a = target.add_node(1);
        let b = target.add_node(1);
        target.add_edge(NodeId(0), a, 0);
        target.add_edge(NodeId(0), b, 0);
        target.add_edge(a, b, 0);
        let set = canned(vec![cycle(3, 1, 0)]);
        let plan = plan_with_patterns(&target, &set);
        assert!(are_isomorphic(&plan.replay(), &target));
        assert_eq!(plan.patterns_used, 2);
        // 2 drops + 1 merge = 3 steps
        assert_eq!(plan.steps(), 3);
    }

    #[test]
    fn patterns_always_beat_or_match_edgewise() {
        let targets = vec![chain(6, 1, 0), cycle(6, 1, 0), star(5, 1, 0)];
        let set = canned(vec![chain(4, 1, 0), cycle(6, 1, 0), star(5, 1, 0)]);
        for target in targets {
            let manual = plan_edge_at_a_time(&target);
            let assisted = plan_with_patterns(&target, &set);
            assert!(
                assisted.steps() <= manual.steps(),
                "assisted {} > manual {} for {}",
                assisted.steps(),
                manual.steps(),
                target.summary()
            );
            assert!(are_isomorphic(&assisted.replay(), &target));
        }
    }

    #[test]
    fn empty_pattern_set_degrades_to_manual() {
        let target = chain(4, 1, 0);
        let plan = plan_with_patterns(&target, &PatternSet::new());
        assert_eq!(plan.patterns_used, 0);
        assert_eq!(plan.steps(), plan_edge_at_a_time(&target).steps());
        assert!(are_isomorphic(&plan.replay(), &target));
    }

    use vqi_graph::NodeId;
}
