//! The usability-study harness.
//!
//! Mirrors the evaluation methodology summarized in §2.3–2.4: a shared
//! query workload is formulated on each interface by the simulated user,
//! and the *performance measures* — formulation steps and modeled
//! formulation time — are aggregated. (The papers' *preference measures*
//! come from questionnaires and have no faithful simulation; the closest
//! observable proxy, the fraction of queries where an interface needed
//! fewer actions, is reported as `preferred_fraction`.)

use crate::cost::ActionCosts;
use crate::plan::{plan_with_patterns, FormulationPlan};
use serde::Serialize;
use vqi_core::vqi::VisualQueryInterface;
use vqi_graph::Graph;

/// Aggregated measures of one interface over a workload.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct UsabilityStats {
    /// Mean formulation steps per query.
    pub mean_steps: f64,
    /// Mean modeled formulation time per query (seconds), including
    /// expected error-correction time.
    pub mean_time: f64,
    /// Mean expected slips per query (the "errors" usability criterion).
    pub mean_errors: f64,
    /// Mean number of patterns used per query.
    pub mean_patterns_used: f64,
    /// Queries evaluated.
    pub queries: usize,
}

/// Outcome of comparing interface A against interface B.
#[derive(Debug, Clone, Serialize)]
pub struct StudyOutcome {
    /// Stats for interface A.
    pub a: UsabilityStats,
    /// Stats for interface B.
    pub b: UsabilityStats,
    /// Fraction of queries where A needed strictly fewer steps than B
    /// (ties excluded) — the preference proxy.
    pub preferred_fraction: f64,
    /// Modeled satisfaction of A (see [`satisfaction`]).
    pub satisfaction_a: f64,
    /// Modeled satisfaction of B.
    pub satisfaction_b: f64,
}

/// A *preference measure* proxy (§2.3 separates quantifiable performance
/// measures from questionnaire-based preference measures): satisfaction
/// blends speed, accuracy, and the aesthetic pleasantness of the Pattern
/// Panel — the three levers the tutorial says drive it (efficiency,
/// errors, aesthetics). Each term lies in `(0, 1]`; the result is their
/// mean.
pub fn satisfaction(stats: &UsabilityStats, panel_pleasantness: f64) -> f64 {
    let speed = 1.0 / (1.0 + stats.mean_time / 60.0);
    let accuracy = 1.0 / (1.0 + stats.mean_errors);
    (speed + accuracy + panel_pleasantness.clamp(0.0, 1.0)) / 3.0
}

/// Pleasantness of an interface's Pattern Panel under the Berlyne model
/// with the default optimum (a moderate 5-cycle-like complexity).
pub fn panel_pleasantness_of(vqi: &VisualQueryInterface) -> f64 {
    let graphs: Vec<&vqi_graph::Graph> = vqi.pattern_set().graphs().collect();
    vqi_core::aesthetics::panel_pleasantness(&graphs, 2.4, 1.5)
}

/// Plans every query on `vqi` and aggregates the measures.
pub fn evaluate_interface(
    vqi: &VisualQueryInterface,
    queries: &[Graph],
    costs: &ActionCosts,
) -> UsabilityStats {
    let panel = vqi.pattern_set().len();
    let mut steps = 0usize;
    let mut time = 0.0f64;
    let mut errors = 0.0f64;
    let mut used = 0usize;
    for q in queries {
        let plan: FormulationPlan = plan_with_patterns(q, vqi.pattern_set());
        steps += plan.steps();
        time += costs.plan_cost(&plan.ops, panel);
        errors += costs.plan_errors(&plan.ops);
        used += plan.patterns_used;
    }
    let n = queries.len().max(1) as f64;
    UsabilityStats {
        mean_steps: steps as f64 / n,
        mean_time: time / n,
        mean_errors: errors / n,
        mean_patterns_used: used as f64 / n,
        queries: queries.len(),
    }
}

/// Compares two interfaces on a shared workload.
pub fn compare(
    a: &VisualQueryInterface,
    b: &VisualQueryInterface,
    queries: &[Graph],
    costs: &ActionCosts,
) -> StudyOutcome {
    let stats_a = evaluate_interface(a, queries, costs);
    let stats_b = evaluate_interface(b, queries, costs);
    let mut a_wins = 0usize;
    for q in queries {
        let pa = plan_with_patterns(q, a.pattern_set()).steps();
        let pb = plan_with_patterns(q, b.pattern_set()).steps();
        if pa < pb {
            a_wins += 1;
        }
    }
    StudyOutcome {
        satisfaction_a: satisfaction(&stats_a, panel_pleasantness_of(a)),
        satisfaction_b: satisfaction(&stats_b, panel_pleasantness_of(b)),
        a: stats_a,
        b: stats_b,
        preferred_fraction: a_wins as f64 / queries.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{sample_queries, WorkloadParams};
    use vqi_core::budget::PatternBudget;
    use vqi_core::repo::GraphRepository;
    use vqi_core::selector::RandomSelector;
    use vqi_graph::generate::{chain, cycle, star};

    fn repo() -> GraphRepository {
        let mut graphs = Vec::new();
        for i in 0..6 {
            graphs.push(chain(7 + i % 3, 1, 0));
            graphs.push(cycle(6 + i % 2, 1, 0));
            graphs.push(star(6 + i % 2, 1, 0));
        }
        GraphRepository::collection(graphs)
    }

    #[test]
    fn data_driven_beats_manual_on_steps() {
        let repo = repo();
        let dd = VisualQueryInterface::data_driven(
            &repo,
            &RandomSelector::new(2),
            &PatternBudget::new(8, 4, 6),
        );
        let manual = VisualQueryInterface::manual(vec![1], vec![0], vec![]);
        let queries = sample_queries(
            &repo,
            &WorkloadParams {
                count: 15,
                sizes: vec![4, 5, 6],
                seed: 3,
            },
        );
        assert!(!queries.is_empty());
        let outcome = compare(&dd, &manual, &queries, &ActionCosts::default());
        assert!(
            outcome.a.mean_steps <= outcome.b.mean_steps,
            "data-driven {} > manual {}",
            outcome.a.mean_steps,
            outcome.b.mean_steps
        );
        assert!(outcome.a.mean_patterns_used >= outcome.b.mean_patterns_used);
        // the "errors" usability criterion: fewer, coarser actions mean
        // fewer expected slips
        assert!(
            outcome.a.mean_errors <= outcome.b.mean_errors + 1e-9,
            "data-driven errors {} > manual {}",
            outcome.a.mean_errors,
            outcome.b.mean_errors
        );
    }

    #[test]
    fn stats_are_consistent() {
        let repo = repo();
        let manual = VisualQueryInterface::manual(vec![1], vec![0], vec![]);
        let queries = sample_queries(&repo, &WorkloadParams::default());
        let stats = evaluate_interface(&manual, &queries, &ActionCosts::default());
        assert_eq!(stats.queries, queries.len());
        assert!(stats.mean_steps > 0.0);
        assert!(stats.mean_time > 0.0);
    }

    #[test]
    fn satisfaction_rewards_speed_accuracy_aesthetics() {
        let fast = UsabilityStats {
            mean_steps: 5.0,
            mean_time: 10.0,
            mean_errors: 0.2,
            mean_patterns_used: 1.0,
            queries: 10,
        };
        let slow = UsabilityStats {
            mean_time: 120.0,
            ..fast
        };
        let sloppy = UsabilityStats {
            mean_errors: 3.0,
            ..fast
        };
        let p = 0.8;
        assert!(satisfaction(&fast, p) > satisfaction(&slow, p));
        assert!(satisfaction(&fast, p) > satisfaction(&sloppy, p));
        assert!(satisfaction(&fast, 0.9) > satisfaction(&fast, 0.1));
        let s = satisfaction(&fast, p);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn compare_reports_satisfaction() {
        let repo = repo();
        let manual = VisualQueryInterface::manual(vec![1], vec![0], vec![]);
        let queries = sample_queries(&repo, &WorkloadParams::default());
        let outcome = compare(&manual, &manual, &queries, &ActionCosts::default());
        assert!((outcome.satisfaction_a - outcome.satisfaction_b).abs() < 1e-12);
        assert!(outcome.satisfaction_a > 0.0);
    }

    #[test]
    fn empty_workload_is_safe() {
        let manual = VisualQueryInterface::manual(vec![1], vec![0], vec![]);
        let stats = evaluate_interface(&manual, &[], &ActionCosts::default());
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.mean_steps, 0.0);
        let outcome = compare(&manual, &manual, &[], &ActionCosts::default());
        assert_eq!(outcome.preferred_fraction, 0.0);
    }
}
