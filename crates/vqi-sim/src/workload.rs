//! Query workload generation.
//!
//! Simulated users draw queries that actually exist in the repository
//! (sampling connected subgraphs of data graphs / the network), matching
//! how usability studies task participants with satisfiable queries.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vqi_core::repo::GraphRepository;
use vqi_graph::traversal::sample_connected_subgraph;
use vqi_graph::Graph;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Number of queries to generate.
    pub count: usize,
    /// Query sizes (nodes) to draw from, uniformly.
    pub sizes: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            count: 20,
            sizes: vec![4, 6, 8],
            seed: 0x4031,
        }
    }
}

/// Samples a workload of satisfiable queries from the repository.
/// Queries that cannot be sampled at a requested size are skipped, so the
/// result may be shorter than `params.count` on tiny repositories.
pub fn sample_queries(repo: &GraphRepository, params: &WorkloadParams) -> Vec<Graph> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let sources: Vec<&Graph> = match repo {
        GraphRepository::Collection(c) => c.iter().map(|(_, g)| g).collect(),
        GraphRepository::Network(g) => vec![g],
    };
    let mut out = Vec::with_capacity(params.count);
    if sources.is_empty() || params.sizes.is_empty() {
        return out;
    }
    let mut attempts = 0usize;
    while out.len() < params.count && attempts < params.count * 20 {
        attempts += 1;
        let &src = sources.choose(&mut rng).expect("nonempty");
        let &size = params.sizes.choose(&mut rng).expect("nonempty");
        if let Some((sub, _)) = sample_connected_subgraph(src, size, 5, &mut rng) {
            out.push(sub);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_graph::generate::{barabasi_albert, chain, cycle};
    use vqi_graph::iso::{is_subgraph_isomorphic, MatchOptions};
    use vqi_graph::traversal::is_connected;

    #[test]
    fn queries_are_satisfiable_subgraphs() {
        let graphs = vec![chain(10, 1, 0), cycle(9, 2, 0)];
        let repo = GraphRepository::collection(graphs.clone());
        let queries = sample_queries(
            &repo,
            &WorkloadParams {
                count: 10,
                sizes: vec![3, 4],
                seed: 5,
            },
        );
        assert!(!queries.is_empty());
        for q in &queries {
            assert!(is_connected(q));
            assert!(
                graphs
                    .iter()
                    .any(|g| is_subgraph_isomorphic(q, g, MatchOptions::default())),
                "query not satisfiable"
            );
        }
    }

    #[test]
    fn network_workload() {
        let mut rng = SmallRng::seed_from_u64(1);
        let net = barabasi_albert(100, 2, 1, &mut rng);
        let repo = GraphRepository::network(net);
        let queries = sample_queries(&repo, &WorkloadParams::default());
        assert_eq!(queries.len(), 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let repo = GraphRepository::collection(vec![chain(12, 1, 0)]);
        let p = WorkloadParams::default();
        let a = sample_queries(&repo, &p);
        let b = sample_queries(&repo, &p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.node_count(), y.node_count());
            assert_eq!(x.edge_count(), y.edge_count());
        }
    }

    #[test]
    fn empty_repo_or_sizes() {
        let repo = GraphRepository::collection(vec![]);
        assert!(sample_queries(&repo, &WorkloadParams::default()).is_empty());
        let repo2 = GraphRepository::collection(vec![chain(5, 1, 0)]);
        let p = WorkloadParams {
            sizes: vec![],
            ..Default::default()
        };
        assert!(sample_queries(&repo2, &p).is_empty());
    }
}
