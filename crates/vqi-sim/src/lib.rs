//! Simulated users and usability evaluation.
//!
//! The usability studies the tutorial summarizes (§2.3–2.4) measured how
//! long real users took to formulate subgraph queries on data-driven vs.
//! manual VQIs, and in how many steps. Human participants are replaced
//! here (DESIGN.md §3) by a deterministic simulated user:
//!
//! * [`cost`] — a keystroke-level model (KLM) pricing each atomic action
//!   (point, click, drag, label pick, pattern-panel scan);
//! * [`plan`] — a formulation planner producing the action sequence a
//!   competent user would: *edge-at-a-time* uses only the Attribute
//!   Panel; *pattern-at-a-time* greedily drops the largest useful canned
//!   pattern, merges it into the canvas, and fills the rest edge-wise.
//!   Plans are **sound**: replaying one reconstructs the target query
//!   exactly (enforced by tests and the property suite);
//! * [`workload`] — query generators that sample connected subgraphs
//!   from the repository, so simulated queries are always satisfiable;
//! * [`usability`] — study harness comparing two interfaces on a shared
//!   workload (performance measures: steps and modeled time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod plan;
pub mod usability;
pub mod workload;

pub use cost::ActionCosts;
pub use plan::{plan_edge_at_a_time, plan_with_patterns, FormulationPlan};
pub use usability::{compare, evaluate_interface, StudyOutcome, UsabilityStats};
