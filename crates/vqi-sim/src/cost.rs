//! Keystroke-level cost model for atomic VQI actions.
//!
//! Constants follow the classic KLM operator estimates (pointing ≈ 1.1 s,
//! button press ≈ 0.2 s, homing/drag ≈ 1.1 s) with an added per-item
//! pattern-panel scan cost: browsing a longer Pattern Panel costs time,
//! which is exactly the display-budget tension the tutorial describes —
//! more patterns help coverage but hurt browsing.

use serde::Serialize;
use vqi_core::query::EditOp;

/// Per-action time costs in seconds, plus the error model.
///
/// Error probabilities follow the HCI observation the tutorial cites:
/// fine-grained atomic actions (placing nodes, wiring edges, picking
/// labels) are individually error-prone, while dropping a prefabricated
/// pattern is nearly error-free — so plans with fewer, coarser actions
/// accumulate fewer expected slips. An expected error costs
/// `error_correction` seconds of undo/redo.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ActionCosts {
    /// Moving the pointer to a target.
    pub point: f64,
    /// Pressing/releasing a button.
    pub click: f64,
    /// Dragging an item onto the canvas.
    pub drag: f64,
    /// Choosing a label from the Attribute Panel.
    pub label_pick: f64,
    /// Visually scanning one Pattern Panel entry.
    pub scan_per_pattern: f64,
    /// Slip probability of a node placement.
    pub err_node: f64,
    /// Slip probability of an edge drag (endpoint mis-targeting).
    pub err_edge: f64,
    /// Slip probability of a label pick (wrong list entry).
    pub err_label: f64,
    /// Slip probability of a pattern drop or node merge.
    pub err_pattern: f64,
    /// Seconds to recover from one slip (undo + redo).
    pub error_correction: f64,
}

impl Default for ActionCosts {
    fn default() -> Self {
        ActionCosts {
            point: 1.1,
            click: 0.2,
            drag: 1.1,
            label_pick: 1.2,
            scan_per_pattern: 0.3,
            err_node: 0.02,
            err_edge: 0.04,
            err_label: 0.03,
            err_pattern: 0.01,
            error_correction: 3.0,
        }
    }
}

impl ActionCosts {
    /// Modeled time of one edit, given the number of patterns on display
    /// (scanned when the user reaches for a pattern).
    pub fn cost_of(&self, op: &EditOp, panel_patterns: usize) -> f64 {
        match op {
            EditOp::AddNode { .. } => self.point + self.click + self.label_pick,
            EditOp::AddEdge { .. } => self.drag + self.label_pick,
            EditOp::AddPattern { .. } => {
                // expected scan of half the panel, then a drag
                self.scan_per_pattern * (panel_patterns as f64 / 2.0).max(1.0) + self.drag
            }
            EditOp::MergeNodes { .. } => self.drag,
            EditOp::SetNodeLabel { .. } | EditOp::SetEdgeLabel { .. } => {
                self.point + self.click + self.label_pick
            }
        }
    }

    /// Expected number of slips for one edit.
    pub fn error_of(&self, op: &EditOp) -> f64 {
        match op {
            EditOp::AddNode { .. } => self.err_node + self.err_label,
            EditOp::AddEdge { .. } => self.err_edge + self.err_label,
            EditOp::AddPattern { .. } | EditOp::MergeNodes { .. } => self.err_pattern,
            EditOp::SetNodeLabel { .. } | EditOp::SetEdgeLabel { .. } => self.err_label,
        }
    }

    /// Expected slips over a whole plan.
    pub fn plan_errors(&self, ops: &[EditOp]) -> f64 {
        ops.iter().map(|op| self.error_of(op)).sum()
    }

    /// Total modeled time of a plan, including expected error-correction
    /// time.
    pub fn plan_cost(&self, ops: &[EditOp], panel_patterns: usize) -> f64 {
        let action_time: f64 = ops.iter().map(|op| self.cost_of(op, panel_patterns)).sum();
        action_time + self.plan_errors(ops) * self.error_correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqi_core::query::QNode;
    use vqi_graph::generate::cycle;

    #[test]
    fn node_and_edge_costs_are_positive() {
        let c = ActionCosts::default();
        assert!(c.cost_of(&EditOp::AddNode { label: 1 }, 0) > 0.0);
        assert!(
            c.cost_of(
                &EditOp::AddEdge {
                    a: QNode(0),
                    b: QNode(1),
                    label: 0
                },
                0
            ) > 0.0
        );
    }

    #[test]
    fn pattern_cost_grows_with_panel_size() {
        let c = ActionCosts::default();
        let op = EditOp::AddPattern {
            pattern: cycle(3, 0, 0),
        };
        assert!(c.cost_of(&op, 20) > c.cost_of(&op, 4));
    }

    #[test]
    fn dropping_a_pattern_beats_rebuilding_it() {
        // a 5-cycle: 5 AddNode + 5 AddEdge vs one AddPattern from a
        // 10-pattern panel plus nothing else
        let c = ActionCosts::default();
        let edgewise: f64 = 5.0 * c.cost_of(&EditOp::AddNode { label: 0 }, 10)
            + 5.0
                * c.cost_of(
                    &EditOp::AddEdge {
                        a: QNode(0),
                        b: QNode(1),
                        label: 0,
                    },
                    10,
                );
        let patternwise = c.cost_of(
            &EditOp::AddPattern {
                pattern: cycle(5, 0, 0),
            },
            10,
        );
        assert!(patternwise < edgewise);
    }

    #[test]
    fn plan_cost_sums_actions_and_errors() {
        let c = ActionCosts::default();
        let ops = vec![
            EditOp::AddNode { label: 0 },
            EditOp::AddNode { label: 0 },
            EditOp::AddEdge {
                a: QNode(0),
                b: QNode(1),
                label: 0,
            },
        ];
        let total = c.plan_cost(&ops, 0);
        let by_hand: f64 = ops.iter().map(|o| c.cost_of(o, 0)).sum::<f64>()
            + c.plan_errors(&ops) * c.error_correction;
        assert!((total - by_hand).abs() < 1e-12);
    }

    #[test]
    fn pattern_actions_are_less_error_prone() {
        let c = ActionCosts::default();
        let pattern_op = EditOp::AddPattern {
            pattern: cycle(5, 0, 0),
        };
        let edge_op = EditOp::AddEdge {
            a: QNode(0),
            b: QNode(1),
            label: 0,
        };
        assert!(c.error_of(&pattern_op) < c.error_of(&edge_op));
        // rebuilding a 5-cycle manually accumulates ~10 error-prone
        // actions; one drop accumulates one near-error-free action
        let manual: f64 =
            5.0 * c.error_of(&EditOp::AddNode { label: 0 }) + 5.0 * c.error_of(&edge_op);
        assert!(c.error_of(&pattern_op) < manual / 5.0);
    }
}
