//! Allocation accounting for the disabled observability path.
//!
//! The overhead contract says a `span!` site costs one relaxed atomic
//! load while recording is disabled — in particular it must not heap
//! allocate, not even to materialize the span name. This test installs
//! a counting global allocator and pins that down; it also checks the
//! enabled fast path for a literal (non-interpolated) span name, which
//! borrows the `&'static str` instead of formatting into a `String`.
//!
//! Lives in `tests/` rather than the unit-test module because a
//! `#[global_allocator]` needs `unsafe impl GlobalAlloc`, and the
//! library itself forbids unsafe code.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic and never influences allocation behaviour.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_span_sites_do_not_allocate() {
    // one process-wide test (no #[serial] harness here), so exercise
    // both phases in sequence: disabled first, then the enabled
    // borrowed-literal path
    vqi_observe::set_enabled(false);
    vqi_observe::set_journal_enabled(false);

    let disabled = allocations_during(|| {
        for i in 0..64 {
            let _s = vqi_observe::span!("alloc.test.disabled");
            // the format arguments must stay unevaluated too
            let _t = vqi_observe::span!("alloc.test.shard{i}");
            vqi_observe::count!(format!("alloc.test.{i}"), 1);
            vqi_observe::instant("alloc.test.instant");
        }
    });
    assert_eq!(
        disabled, 0,
        "disabled observability sites must not heap-allocate"
    );

    // enabled, literal name: SpanGuard::enter borrows the &'static str
    // for the journal event; histogram/tree recording on drop does
    // allocate (name keys, tree nodes), so compare against a formatted
    // name to show the literal path saves the format allocation
    vqi_observe::set_enabled(true);
    vqi_observe::reset();
    let warm = allocations_during(|| {
        let _s = vqi_observe::span!("alloc.test.literal");
    });
    let literal = allocations_during(|| {
        let _s = vqi_observe::span!("alloc.test.literal");
    });
    assert!(
        literal <= warm,
        "spans on warmed paths should not allocate more than cold ones"
    );
    let formatted = allocations_during(|| {
        let _s = vqi_observe::span!("alloc.test.{}", "formatted");
    });
    assert!(
        formatted > 0,
        "interpolated names materialize a String while enabled"
    );
    vqi_observe::set_enabled(false);
    vqi_observe::reset();
}
