//! Property-based tests of the observability substrate: histogram
//! merge forms a commutative monoid, quantiles respect bounds, and
//! concurrent recording from `rayon` fan-out loses nothing.

use proptest::prelude::*;
use rayon::prelude::*;
use vqi_observe::{Histogram, HistogramSnapshot, Registry};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..20),
        b in proptest::collection::vec(any::<u64>(), 0..20),
        c in proptest::collection::vec(any::<u64>(), 0..20),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    #[test]
    fn histogram_merge_is_commutative_with_identity(
        a in proptest::collection::vec(any::<u64>(), 0..20),
        b in proptest::collection::vec(any::<u64>(), 0..20),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&HistogramSnapshot::empty()), sa.clone());
        prop_assert_eq!(HistogramSnapshot::empty().merge(&sa), sa);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        a in proptest::collection::vec(0u64..1_000_000, 0..30),
        b in proptest::collection::vec(0u64..1_000_000, 0..30),
    ) {
        let merged = snapshot_of(&a).merge(&snapshot_of(&b));
        let both: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, snapshot_of(&both));
    }

    #[test]
    fn quantiles_are_monotone_and_within_bounds(
        values in proptest::collection::vec(any::<u64>(), 1..50),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..6),
    ) {
        let s = snapshot_of(&values);
        let mut sorted = qs.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut last = 0u64;
        for q in sorted {
            let e = s.quantile(q);
            prop_assert!(e >= s.min && e <= s.max);
            prop_assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn snapshot_count_matches_bucket_mass(
        values in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let s = snapshot_of(&values);
        prop_assert_eq!(s.count as usize, values.len());
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        if let Some(&max) = values.iter().max() {
            prop_assert_eq!(s.max, max);
            prop_assert_eq!(s.min, *values.iter().min().unwrap());
        }
    }
}

#[test]
fn rayon_counter_increments_sum_exactly() {
    // a fresh registry, not the global one, so parallel test binaries
    // cannot interfere
    let r = Registry::new();
    let n = 100_000u64;
    (0..n).into_par_iter().for_each(|i| {
        r.counter("obs.par.count").inc();
        r.counter("obs.par.weighted").add(i % 7);
        r.histogram("obs.par.hist").record(i);
    });
    let s = r.snapshot();
    assert_eq!(s.counters["obs.par.count"], n);
    assert_eq!(
        s.counters["obs.par.weighted"],
        (0..n).map(|i| i % 7).sum::<u64>()
    );
    assert_eq!(s.values["obs.par.hist"].count, n);
    assert_eq!(s.values["obs.par.hist"].min, 0);
    assert_eq!(s.values["obs.par.hist"].max, n - 1);
}

#[test]
fn rayon_sharded_merge_equals_global_recording() {
    // shard-local histograms reduced in arbitrary order must equal one
    // histogram that saw every value (the partitioned-TATTOO pattern)
    let values: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(2654435761)).collect();
    let global = snapshot_of(&values);
    let merged = values
        .par_chunks(97)
        .map(snapshot_of)
        .reduce(HistogramSnapshot::empty, |a, b| a.merge(&b));
    assert_eq!(global, merged);
}

#[test]
fn span_guards_record_on_rayon_threads() {
    vqi_observe::set_enabled(true);
    (0..64u64).into_par_iter().for_each(|_| {
        let _s = vqi_observe::span("obs.par.shard");
    });
    vqi_observe::set_enabled(false);
    let s = vqi_observe::snapshot();
    assert_eq!(s.spans["obs.par.shard"].count, 64);
}
