//! Snapshot types and exporters.
//!
//! A [`MetricsReport`] is a point-in-time copy of the registry, cheap
//! to clone and safe to hold across further recording. It renders as a
//! human-readable table ([`MetricsReport::render_table`]) or as JSON
//! ([`MetricsReport::to_json`]); with the `serde` feature it also
//! derives `Serialize` for embedding into larger documents.

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use crate::json::JsonWriter;
use std::collections::BTreeMap;

/// Aggregate of one trace-tree path (`parent/child` span nesting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct TraceNode {
    /// Times the path was entered.
    pub count: u64,
    /// Total nanoseconds on the path, children included.
    pub total_ns: u64,
}

/// A point-in-time snapshot of every metric in a registry.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct MetricsReport {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// User-value histograms by name (unit defined by the call site).
    pub values: BTreeMap<String, HistogramSnapshot>,
    /// Span wall-time histograms by span name, in nanoseconds.
    pub spans: BTreeMap<String, HistogramSnapshot>,
    /// Trace tree keyed by `/`-joined span paths.
    pub trace: BTreeMap<String, TraceNode>,
}

/// Formats nanoseconds as a compact human duration.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

impl MetricsReport {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.values.is_empty()
            && self.spans.is_empty()
            && self.trace.is_empty()
    }

    /// Subtracts an earlier snapshot of the *same* registry, leaving
    /// only what was recorded in between — this is how the CLI turns
    /// process-lifetime aggregates into per-run metrics. Counters,
    /// histograms, and trace nodes subtract (entries with a zero count
    /// delta are omitted); gauges are *levels*, not totals, so the
    /// current value is kept as-is for any gauge that changed.
    pub fn delta(&self, baseline: &MetricsReport) -> MetricsReport {
        let mut d = MetricsReport::default();
        for (k, &v) in &self.counters {
            let dv = v.saturating_sub(baseline.counters.get(k).copied().unwrap_or(0));
            if dv > 0 {
                d.counters.insert(k.clone(), dv);
            }
        }
        for (k, &v) in &self.gauges {
            if baseline.gauges.get(k) != Some(&v) {
                d.gauges.insert(k.clone(), v);
            }
        }
        let empty = HistogramSnapshot::empty();
        for (k, h) in &self.values {
            let dh = h.delta(baseline.values.get(k).unwrap_or(&empty));
            if dh.count > 0 {
                d.values.insert(k.clone(), dh);
            }
        }
        for (k, h) in &self.spans {
            let dh = h.delta(baseline.spans.get(k).unwrap_or(&empty));
            if dh.count > 0 {
                d.spans.insert(k.clone(), dh);
            }
        }
        for (k, &node) in &self.trace {
            let base = baseline.trace.get(k).copied().unwrap_or_default();
            let dn = TraceNode {
                count: node.count.saturating_sub(base.count),
                total_ns: node.total_ns.saturating_sub(base.total_ns),
            };
            if dn.count > 0 {
                d.trace.insert(k.clone(), dn);
            }
        }
        d
    }

    /// Renders the report as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::from("== metrics ==\n");
        if self.is_empty() {
            out.push_str("(nothing recorded; is the registry enabled?)\n");
            return out;
        }
        let name_w = self
            .spans
            .keys()
            .chain(self.values.keys())
            .chain(self.counters.keys())
            .chain(self.gauges.keys())
            .map(|k| k.len())
            .chain(self.trace.keys().map(|k| display_depth_len(k)))
            .max()
            .unwrap_or(4)
            .max(4);

        if !self.spans.is_empty() {
            out.push_str(&format!(
                "spans (wall time)\n{:<name_w$}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                "name", "count", "mean", "p50", "p90", "max"
            ));
            for (name, h) in &self.spans {
                out.push_str(&format!(
                    "{name:<name_w$}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                    h.count,
                    fmt_ns(h.mean()),
                    fmt_ns(h.quantile(0.5) as f64),
                    fmt_ns(h.quantile(0.9) as f64),
                    fmt_ns(h.max as f64),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("counters\n{:<name_w$}  {:>12}\n", "name", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<name_w$}  {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("gauges\n{:<name_w$}  {:>12}\n", "name", "value"));
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<name_w$}  {v:>12}\n"));
            }
        }
        if !self.values.is_empty() {
            out.push_str(&format!(
                "value histograms\n{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}\n",
                "name", "count", "mean", "p50", "max"
            ));
            for (name, h) in &self.values {
                out.push_str(&format!(
                    "{name:<name_w$}  {:>8}  {:>12.1}  {:>12}  {:>12}\n",
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.max,
                ));
            }
        }
        if !self.trace.is_empty() {
            out.push_str(&format!(
                "trace tree\n{:<name_w$}  {:>8}  {:>10}\n",
                "path", "count", "total"
            ));
            for (path, node) in &self.trace {
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                let indented = format!("{}{leaf}", "  ".repeat(depth));
                out.push_str(&format!(
                    "{indented:<name_w$}  {:>8}  {:>10}\n",
                    node.count,
                    fmt_ns(node.total_ns as f64),
                ));
            }
        }
        out
    }

    /// Serializes the report as a self-contained JSON document (no
    /// external serializer needed).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object(None);

        w.open_object(Some("counters"));
        for (k, v) in &self.counters {
            w.u64_field(k, *v);
        }
        w.close_object();

        w.open_object(Some("gauges"));
        for (k, v) in &self.gauges {
            w.i64_field(k, *v);
        }
        w.close_object();

        w.open_object(Some("spans"));
        for (k, h) in &self.spans {
            histogram_json(&mut w, k, h, "ns");
        }
        w.close_object();

        w.open_object(Some("values"));
        for (k, h) in &self.values {
            histogram_json(&mut w, k, h, "");
        }
        w.close_object();

        w.open_object(Some("trace"));
        for (k, node) in &self.trace {
            w.open_object(Some(k));
            w.u64_field("count", node.count);
            w.u64_field("total_ns", node.total_ns);
            w.close_object();
        }
        w.close_object();

        w.close_object();
        w.finish()
    }
}

/// Width of a trace path rendered with two-space indentation.
fn display_depth_len(path: &str) -> usize {
    let depth = path.matches('/').count();
    let leaf = path.rsplit('/').next().unwrap_or(path);
    2 * depth + leaf.len()
}

fn histogram_json(w: &mut JsonWriter, key: &str, h: &HistogramSnapshot, unit: &str) {
    let f = |base: &str| {
        if unit.is_empty() {
            base.to_string()
        } else {
            format!("{base}_{unit}")
        }
    };
    w.open_object(Some(key));
    w.u64_field("count", h.count);
    w.u64_field(&f("sum"), h.sum);
    w.u64_field(&f("min"), h.min);
    w.u64_field(&f("max"), h.max);
    w.f64_field(&f("mean"), h.mean());
    w.u64_field(&f("p50"), h.quantile(0.5));
    w.u64_field(&f("p90"), h.quantile(0.9));
    w.u64_field(&f("p99"), h.quantile(0.99));
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(b, &n)| format!("[{}, {n}]", bucket_upper_bound(b)))
        .collect();
    w.raw_field("buckets", &format!("[{}]", buckets.join(", ")));
    w.close_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample_report() -> MetricsReport {
        let mut r = MetricsReport::default();
        r.counters.insert("catapult.walk.candidates".into(), 120);
        r.gauges.insert("tattoo.map.in_flight".into(), 0);
        let h = Histogram::new();
        for v in [1_000_000u64, 2_000_000, 4_000_000] {
            h.record(v);
        }
        r.spans.insert("catapult.mine".into(), h.snapshot());
        r.trace.insert(
            "catapult.run".into(),
            TraceNode {
                count: 1,
                total_ns: 9_000_000,
            },
        );
        r.trace.insert(
            "catapult.run/catapult.mine".into(),
            TraceNode {
                count: 3,
                total_ns: 7_000_000,
            },
        );
        r
    }

    #[test]
    fn table_contains_all_sections() {
        let t = sample_report().render_table();
        assert!(t.contains("spans (wall time)"));
        assert!(t.contains("catapult.mine"));
        assert!(t.contains("counters"));
        assert!(t.contains("catapult.walk.candidates"));
        assert!(t.contains("trace tree"));
        // nested path renders indented under its parent leaf name
        assert!(t.contains("\n  catapult.mine"), "indented child:\n{t}");
    }

    #[test]
    fn empty_report_renders_hint() {
        let t = MetricsReport::default().render_table();
        assert!(t.contains("nothing recorded"));
    }

    #[test]
    fn json_is_structured_and_balanced() {
        let j = sample_report().to_json();
        assert!(j.contains("\"counters\""));
        assert!(j.contains("\"catapult.walk.candidates\": 120"));
        assert!(j.contains("\"spans\""));
        assert!(j.contains("\"p50_ns\""));
        assert!(j.contains("\"trace\""));
        assert!(j.contains("\"total_ns\": 9000000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn delta_reports_only_what_changed() {
        let before = sample_report();
        let mut after = before.clone();
        *after.counters.get_mut("catapult.walk.candidates").unwrap() += 30;
        after.counters.insert("fault.injected".into(), 2);
        after.gauges.insert("tattoo.map.in_flight".into(), 4);
        let h = Histogram::new();
        for v in [1_000_000u64, 2_000_000, 4_000_000, 8_000_000] {
            h.record(v);
        }
        after.spans.insert("catapult.mine".into(), h.snapshot());
        after.trace.get_mut("catapult.run").unwrap().count += 1;
        after.trace.get_mut("catapult.run").unwrap().total_ns += 5_000_000;

        let d = after.delta(&before);
        assert_eq!(d.counters["catapult.walk.candidates"], 30);
        assert_eq!(d.counters["fault.injected"], 2);
        assert_eq!(d.gauges["tattoo.map.in_flight"], 4, "gauges keep level");
        assert_eq!(d.spans["catapult.mine"].count, 1, "one new span");
        assert_eq!(d.trace["catapult.run"].count, 1);
        assert_eq!(d.trace["catapult.run"].total_ns, 5_000_000);
        // the unchanged trace path is omitted entirely
        assert!(!d.trace.contains_key("catapult.run/catapult.mine"));
        // a no-op delta is empty
        assert!(before.delta(&before).is_empty());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1_500.0), "1.5us");
        assert_eq!(fmt_ns(2_500_000.0), "2.5ms");
        assert_eq!(fmt_ns(3_200_000_000.0), "3.20s");
    }
}
