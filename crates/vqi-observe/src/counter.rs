//! Monotonic counters and up/down gauges.
//!
//! Both are single atomics with relaxed ordering: readers only ever see
//! a snapshot, so no ordering stronger than the modification order of
//! the one cell is needed, and increments from `rayon` fan-out never
//! contend on anything but the cache line itself.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `by` to the counter.
    #[inline]
    pub fn add(&self, by: u64) {
        self.value.fetch_add(by, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (snapshot boundaries in tests and benches).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a signed value that can move both ways (in-flight work,
/// current cluster count, last observed distance).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), threads as u64 * per_thread);
    }
}
