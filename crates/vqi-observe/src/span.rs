//! Lightweight wall-time spans.
//!
//! [`span`](crate::span) returns a guard; when the guard drops — on
//! normal scope exit *or* during unwinding — the elapsed wall time is
//! recorded into the span's log-scale histogram (keyed by the span
//! name) and onto the trace tree (keyed by the `/`-joined path of
//! enclosing spans on this thread). With metrics disabled the guard is
//! a no-op `None` and entering costs one relaxed load.

use crate::registry::Registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Full paths of the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A live span; records on drop.
#[derive(Debug)]
#[must_use = "a span records when the guard drops; bind it with `let _span = ...`"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: String,
    path: String,
    start: Instant,
    /// Journal bookkeeping when the trace journal is recording.
    journal: Option<crate::journal::JournalSpan>,
}

impl SpanGuard {
    /// A disabled, no-op guard.
    pub(crate) fn noop() -> Self {
        SpanGuard { inner: None }
    }

    /// Opens a span on the global registry (the public entry point is
    /// [`crate::span`], which checks the enabled flag first).
    pub(crate) fn enter(name: &str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        let journal = crate::journal::begin_span(name);
        SpanGuard {
            inner: Some(SpanInner {
                name: name.to_string(),
                path,
                start: Instant::now(),
                journal,
            }),
        }
    }

    /// Wall time since the span opened (zero for a no-op guard).
    pub fn elapsed(&self) -> std::time::Duration {
        self.inner
            .as_ref()
            .map(|s| s.start.elapsed())
            .unwrap_or_default()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut inner) = self.inner.take() else {
            return;
        };
        let ns = inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(journal) = inner.journal.take() {
            crate::journal::end_span(journal, &inner.name);
        }
        let registry = Registry::global();
        registry.span_histogram(&inner.name).record(ns);
        registry.record_tree(&inner.path, ns);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // guards drop LIFO in well-formed code; scan from the end so
            // an out-of-order drop still removes the right entry
            if let Some(pos) = stack.iter().rposition(|p| p == &inner.path) {
                stack.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests toggle the global enabled flag; serialize them (shared
    /// with every other test that does).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        crate::test_lock()
    }

    #[test]
    fn span_records_histogram_and_tree() {
        let _l = lock();
        Registry::global().set_enabled(true);
        {
            let _outer = crate::span("spantest.outer");
            let _inner = crate::span("spantest.inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        Registry::global().set_enabled(false);
        let s = Registry::global().snapshot();
        assert_eq!(s.spans["spantest.outer"].count, 1);
        assert_eq!(s.spans["spantest.inner"].count, 1);
        assert!(s.spans["spantest.inner"].max >= 1_000_000, "slept >= 1ms");
        assert!(s.trace.contains_key("spantest.outer/spantest.inner"));
        assert!(
            s.trace["spantest.outer"].total_ns >= s.trace["spantest.outer/spantest.inner"].total_ns
        );
    }

    #[test]
    fn disabled_span_is_noop() {
        let _l = lock();
        Registry::global().set_enabled(false);
        {
            let g = crate::span("spantest.disabled");
            assert_eq!(g.elapsed(), std::time::Duration::ZERO);
        }
        let s = Registry::global().snapshot();
        assert!(!s.spans.contains_key("spantest.disabled"));
    }

    #[test]
    fn span_records_during_unwinding() {
        let _l = lock();
        Registry::global().set_enabled(true);
        let result = std::panic::catch_unwind(|| {
            let _g = crate::span("spantest.unwind");
            panic!("boom");
        });
        Registry::global().set_enabled(false);
        assert!(result.is_err());
        let s = Registry::global().snapshot();
        assert_eq!(s.spans["spantest.unwind"].count, 1);
        // the unwound span must not linger on the stack
        SPAN_STACK.with(|st| {
            assert!(st.borrow().iter().all(|p| !p.contains("spantest.unwind")));
        });
    }

    #[test]
    fn sibling_spans_share_a_parentless_path() {
        let _l = lock();
        Registry::global().set_enabled(true);
        {
            let _a = crate::span("spantest.sib");
        }
        {
            let _b = crate::span("spantest.sib");
        }
        Registry::global().set_enabled(false);
        let s = Registry::global().snapshot();
        assert_eq!(s.spans["spantest.sib"].count, 2);
        assert_eq!(s.trace["spantest.sib"].count, 2);
    }
}
