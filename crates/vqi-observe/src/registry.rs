//! The global metric registry.
//!
//! One process-wide [`Registry`] owns every named counter, gauge,
//! histogram, span histogram, and trace-tree node. Handles are `Arc`s,
//! so the maps are only touched on first registration (read-mostly
//! `RwLock`); the hot path of every instrument is a relaxed atomic on
//! the handle itself.

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use crate::report::{MetricsReport, TraceNode};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// Aggregated statistics of one trace-tree path.
#[derive(Debug, Default)]
pub struct TreeStat {
    /// Number of times the path was entered.
    pub count: AtomicU64,
    /// Total nanoseconds spent on the path (children included).
    pub total_ns: AtomicU64,
}

/// A named-metric registry. Usually accessed through [`Registry::global`].
#[derive(Debug, Default)]
pub struct Registry {
    enabled: AtomicBool,
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    /// User-value histograms (counts, sizes, scores scaled to integers).
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    /// Span wall-time histograms, keyed by span name, in nanoseconds.
    spans: RwLock<HashMap<String, Arc<Histogram>>>,
    /// Parent/child trace aggregates, keyed by `/`-joined span paths.
    tree: RwLock<HashMap<String, Arc<TreeStat>>>,
}

/// Takes a read guard, recovering from poisoning: the maps only ever
/// hold fully-inserted `Arc` handles, so a panic while a guard was
/// held (e.g. inside a `catch_unwind`-isolated pipeline stage) leaves
/// them structurally intact and safe to keep using. Without this, one
/// poisoned lock would cascade a metrics panic into every later run.
fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

fn lookup<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = read(map).get(name) {
        return Arc::clone(v);
    }
    let mut w = write(map);
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Registry {
    /// A fresh, disabled registry (tests; production code uses
    /// [`Registry::global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Whether recording is on. Every free-function instrument checks
    /// this first, so a disabled registry costs one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        lookup(&self.counters, name)
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        lookup(&self.gauges, name)
    }

    /// The value histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        lookup(&self.histograms, name)
    }

    /// The span-duration histogram registered under `name`.
    pub fn span_histogram(&self, name: &str) -> Arc<Histogram> {
        lookup(&self.spans, name)
    }

    /// Records one completed span occurrence on the trace tree.
    pub fn record_tree(&self, path: &str, ns: u64) {
        let stat = lookup(&self.tree, path);
        stat.count.fetch_add(1, Ordering::Relaxed);
        stat.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A point-in-time report of everything recorded so far.
    pub fn snapshot(&self) -> MetricsReport {
        let mut report = MetricsReport::default();
        for (k, v) in read(&self.counters).iter() {
            report.counters.insert(k.clone(), v.get());
        }
        for (k, v) in read(&self.gauges).iter() {
            report.gauges.insert(k.clone(), v.get());
        }
        for (k, v) in read(&self.histograms).iter() {
            if v.count() > 0 {
                report.values.insert(k.clone(), v.snapshot());
            }
        }
        for (k, v) in read(&self.spans).iter() {
            if v.count() > 0 {
                report.spans.insert(k.clone(), v.snapshot());
            }
        }
        for (k, v) in read(&self.tree).iter() {
            report.trace.insert(
                k.clone(),
                TraceNode {
                    count: v.count.load(Ordering::Relaxed),
                    total_ns: v.total_ns.load(Ordering::Relaxed),
                },
            );
        }
        report
    }

    /// Clears every registered metric (the names stay registered).
    pub fn reset(&self) {
        for v in read(&self.counters).values() {
            v.reset();
        }
        for v in read(&self.gauges).values() {
            v.reset();
        }
        for v in read(&self.histograms).values() {
            v.reset();
        }
        for v in read(&self.spans).values() {
            v.reset();
        }
        for v in read(&self.tree).values() {
            v.count.store(0, Ordering::Relaxed);
            v.total_ns.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        r.counter("a.b.c").add(2);
        r.counter("a.b.c").add(3);
        assert_eq!(r.counter("a.b.c").get(), 5);
        assert!(Arc::ptr_eq(&r.counter("a.b.c"), &r.counter("a.b.c")));
    }

    #[test]
    fn snapshot_collects_all_kinds() {
        let r = Registry::new();
        r.counter("sys.phase.count").inc();
        r.gauge("sys.phase.inflight").set(3);
        r.histogram("sys.phase.size").record(17);
        r.span_histogram("sys.phase").record(1_000);
        r.record_tree("sys.phase", 1_000);
        let s = r.snapshot();
        assert_eq!(s.counters["sys.phase.count"], 1);
        assert_eq!(s.gauges["sys.phase.inflight"], 3);
        assert_eq!(s.values["sys.phase.size"].count, 1);
        assert_eq!(s.spans["sys.phase"].count, 1);
        assert_eq!(s.trace["sys.phase"].total_ns, 1_000);
    }

    #[test]
    fn empty_histograms_are_omitted_from_snapshots() {
        let r = Registry::new();
        let _ = r.histogram("never.recorded");
        assert!(r.snapshot().values.is_empty());
    }

    #[test]
    fn reset_clears_values_keeps_names() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(9);
        r.histogram("h").record(4);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(r.snapshot().values.len(), 0);
    }

    #[test]
    fn enabled_flag_round_trips() {
        let r = Registry::new();
        assert!(!r.is_enabled());
        r.set_enabled(true);
        assert!(r.is_enabled());
        r.set_enabled(false);
        assert!(!r.is_enabled());
    }

    #[test]
    fn recording_survives_a_poisoned_lock() {
        let r = Arc::new(Registry::new());
        r.counter("poison.before").add(1);
        // poison every map by panicking while holding its write guard,
        // as a panicking instrumented stage under catch_unwind would
        let rc = Arc::clone(&r);
        let _ = std::thread::spawn(move || {
            let _c = rc.counters.write().unwrap();
            let _g = rc.gauges.write().unwrap();
            let _h = rc.histograms.write().unwrap();
            let _s = rc.spans.write().unwrap();
            let _t = rc.tree.write().unwrap();
            panic!("poison the registry");
        })
        .join();
        assert!(r.counters.is_poisoned(), "setup must actually poison");
        // every operation still works on the poisoned registry
        r.counter("poison.before").add(2);
        r.counter("poison.after").inc();
        r.gauge("poison.gauge").set(5);
        r.histogram("poison.hist").record(7);
        r.span_histogram("poison.span").record(1_000);
        r.record_tree("poison.span", 1_000);
        let s = r.snapshot();
        assert_eq!(s.counters["poison.before"], 3);
        assert_eq!(s.counters["poison.after"], 1);
        assert_eq!(s.gauges["poison.gauge"], 5);
        assert_eq!(s.values["poison.hist"].count, 1);
        assert_eq!(s.trace["poison.span"].total_ns, 1_000);
        r.reset();
        assert_eq!(r.counter("poison.before").get(), 0);
    }

    #[test]
    fn concurrent_registration_and_increment() {
        let r = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        r.counter(&format!("c.{}", i % 10)).inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = r.snapshot().counters.values().sum();
        assert_eq!(total, 8_000);
    }
}
