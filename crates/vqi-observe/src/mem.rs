//! Memory gauges (`mem.*`): per-structure byte accounting and process
//! RSS sampled from `/proc/self/status`.
//!
//! Two kinds of measurements, both landing in the global registry as
//! gauges so benches and `vqi serve` report them alongside everything
//! else:
//!
//! * [`record_struct_bytes`] — exact byte counts a storage structure
//!   reports about itself (e.g. `CsrGraph::heap_bytes()`), published as
//!   `mem.<name>.bytes`;
//! * [`sample_rss`] / [`record_rss`] — the kernel's view of the whole
//!   process (`VmRSS`, and `VmHWM` — the peak-RSS high-water mark),
//!   published as `mem.rss_kb` / `mem.peak_rss_kb`. This is the
//!   peak-memory ceiling the `exp_scale` bench reports for the
//!   100M-edge runs.
//!
//! On platforms without `/proc` (or inside restricted sandboxes) the
//! sampler returns `None` and records nothing — callers never need to
//! gate on the platform.

/// A point-in-time memory sample from `/proc/self/status`, in kibibytes
/// as the kernel reports them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssSample {
    /// Resident set size (`VmRSS`), kB.
    pub rss_kb: u64,
    /// Peak resident set size (`VmHWM`), kB.
    pub peak_rss_kb: u64,
}

/// Parses `VmRSS` / `VmHWM` out of one `/proc/self/status` image.
/// Split from the I/O so the parser is testable on a fixture.
fn parse_status(status: &str) -> Option<RssSample> {
    let mut rss = None;
    let mut peak = None;
    for line in status.lines() {
        let field = if line.starts_with("VmRSS:") {
            &mut rss
        } else if line.starts_with("VmHWM:") {
            &mut peak
        } else {
            continue;
        };
        // value lines look like "VmRSS:     123456 kB"
        let rest = line.split(':').nth(1)?;
        let kb = rest
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse::<u64>()
            .ok()?;
        *field = Some(kb);
    }
    Some(RssSample {
        rss_kb: rss?,
        peak_rss_kb: peak?,
    })
}

/// Reads the current process RSS and peak RSS from
/// `/proc/self/status`; `None` where the file is absent or unparsable.
pub fn sample_rss() -> Option<RssSample> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status(&status)
}

/// Samples the process RSS and publishes it as the `mem.rss_kb` and
/// `mem.peak_rss_kb` gauges. Returns the sample so callers can also
/// report it inline. A no-op (returning the sample's absence) off
/// Linux or while recording is disabled — gauges just stay unset.
pub fn record_rss() -> Option<RssSample> {
    let s = sample_rss()?;
    crate::gauge_set("mem.rss_kb", s.rss_kb as i64);
    crate::gauge_set("mem.peak_rss_kb", s.peak_rss_kb as i64);
    Some(s)
}

/// Publishes an exact per-structure byte count as the gauge
/// `mem.<name>.bytes` — the convention storage backends report under
/// (e.g. `mem.csr.bytes`, `mem.graph.bytes`, `mem.index.bytes`).
pub fn record_struct_bytes(name: &str, bytes: usize) {
    crate::gauge_set(&format!("mem.{name}.bytes"), bytes as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_status_fixture() {
        let fixture =
            "Name:\tvqi\nVmPeak:\t  999 kB\nVmHWM:\t   4200 kB\nVmRSS:\t   1234 kB\nThreads:\t1\n";
        assert_eq!(
            parse_status(fixture),
            Some(RssSample {
                rss_kb: 1234,
                peak_rss_kb: 4200
            })
        );
        assert_eq!(parse_status("Name:\tvqi\n"), None);
    }

    #[test]
    fn struct_bytes_land_on_the_gauge() {
        let _l = crate::test_lock();
        crate::set_enabled(true);
        record_struct_bytes("test_struct", 4096);
        let snap = crate::snapshot();
        crate::set_enabled(false);
        assert_eq!(snap.gauges["mem.test_struct.bytes"], 4096);
    }

    #[test]
    fn rss_sampling_is_safe_everywhere() {
        // on Linux this exercises the real /proc parse; elsewhere the
        // sampler must simply decline
        if let Some(s) = sample_rss() {
            assert!(s.rss_kb > 0);
            assert!(s.peak_rss_kb >= s.rss_kb);
        }
    }
}
